//! Cartesian process-grid geometry for domain decompositions.
//!
//! Workloads decompose their domains onto 2-D, 3-D or 4-D periodic
//! process grids. [`factor`] produces a balanced factorization of the
//! rank count (what `MPI_Dims_create` does); [`Grid`] maps ranks to
//! coordinates and resolves periodic neighbor offsets; [`offsets`]
//! enumerates the `{-1,0,1}^d` stencil classes (faces / edges / corners).

use core::fmt;

/// A periodic Cartesian process grid of arbitrary dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Grid {
    dims: Vec<usize>,
}

impl Grid {
    /// Build a grid with the given extents (all must be ≥ 1).
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "grid needs at least one dimension");
        assert!(dims.iter().all(|&d| d >= 1), "grid extents must be >= 1");
        Grid { dims }
    }

    /// Balanced grid for `n` ranks in `d` dimensions.
    pub fn balanced(n: usize, d: usize) -> Self {
        Grid::new(factor(n, d))
    }

    /// Grid extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total ranks.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True if the grid is a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Coordinates of `rank` (row-major, last dimension fastest).
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        debug_assert!(rank < self.len());
        let mut c = vec![0; self.ndims()];
        let mut rem = rank;
        for i in (0..self.ndims()).rev() {
            c[i] = rem % self.dims[i];
            rem /= self.dims[i];
        }
        c
    }

    /// Rank at `coords`.
    pub fn rank(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.ndims());
        let mut r = 0usize;
        for (i, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.dims[i]);
            r = r * self.dims[i] + c;
        }
        r
    }

    /// The rank at periodic offset `off` from `rank`.
    pub fn neighbor(&self, rank: usize, off: &[i64]) -> usize {
        debug_assert_eq!(off.len(), self.ndims());
        let mut c = self.coords(rank);
        for i in 0..self.ndims() {
            let d = self.dims[i] as i64;
            let v = (c[i] as i64 + off[i]).rem_euclid(d);
            c[i] = v as usize;
        }
        self.rank(&c)
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", s.join("x"))
    }
}

/// Balanced `d`-way factorization of `n` (minimizes the max/min extent
/// ratio, like `MPI_Dims_create`). Extents are non-increasing.
pub fn factor(n: usize, d: usize) -> Vec<usize> {
    assert!(n >= 1 && d >= 1);
    if d == 1 {
        return vec![n];
    }
    // Recursive best-balance search over divisors.
    fn best(n: usize, d: usize) -> Vec<usize> {
        if d == 1 {
            return vec![n];
        }
        let mut best_dims: Option<Vec<usize>> = None;
        let mut best_score = usize::MAX;
        // The leading extent is at least the d-th root of n.
        let mut a = 1usize;
        while a * a <= n {
            if n.is_multiple_of(a) {
                for cand in [a, n / a] {
                    let mut rest = best(n / cand, d - 1);
                    if rest[0] > cand {
                        continue; // enforce non-increasing order
                    }
                    let mut dims = vec![cand];
                    dims.append(&mut rest);
                    let score = dims[0] - dims[d - 1];
                    if score < best_score {
                        best_score = score;
                        best_dims = Some(dims);
                    }
                }
            }
            a += 1;
        }
        best_dims.unwrap_or_else(|| {
            let mut v = vec![1; d];
            v[0] = n;
            v
        })
    }
    best(n, d)
}

/// All stencil offsets in `{-1,0,1}^d` with between 1 and `max_order`
/// non-zero components. Order 1 = faces, 2 = edges, 3 = corners, …
pub fn offsets(d: usize, max_order: usize) -> Vec<Vec<i64>> {
    assert!(d >= 1 && max_order >= 1);
    let mut out = Vec::new();
    let total = 3usize.pow(d as u32);
    for code in 0..total {
        let mut off = Vec::with_capacity(d);
        let mut rem = code;
        let mut nz = 0usize;
        for _ in 0..d {
            let v = (rem % 3) as i64 - 1;
            rem /= 3;
            if v != 0 {
                nz += 1;
            }
            off.push(v);
        }
        if nz >= 1 && nz <= max_order {
            out.push(off);
        }
    }
    out
}

/// Number of non-zero components (the stencil "order" of an offset).
pub fn order(off: &[i64]) -> usize {
    off.iter().filter(|&&v| v != 0).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_balances() {
        assert_eq!(factor(8, 3), vec![2, 2, 2]);
        assert_eq!(factor(64, 3), vec![4, 4, 4]);
        assert_eq!(factor(16_384, 3), vec![32, 32, 16]);
        assert_eq!(factor(12, 2), vec![4, 3]);
        assert_eq!(factor(16_000, 3), vec![32, 25, 20]);
        assert_eq!(factor(7, 3), vec![7, 1, 1]);
        assert_eq!(factor(1, 4), vec![1, 1, 1, 1]);
        assert_eq!(factor(16, 4), vec![2, 2, 2, 2]);
    }

    #[test]
    fn factor_product_invariant() {
        for n in 1..200 {
            for d in 1..5 {
                let f = factor(n, d);
                assert_eq!(f.len(), d);
                assert_eq!(f.iter().product::<usize>(), n, "n={n} d={d}");
                assert!(f.windows(2).all(|w| w[0] >= w[1]), "{f:?}");
            }
        }
    }

    #[test]
    fn coords_roundtrip() {
        let g = Grid::balanced(24, 3);
        for r in 0..g.len() {
            assert_eq!(g.rank(&g.coords(r)), r);
        }
    }

    #[test]
    fn neighbors_are_periodic_and_symmetric() {
        let g = Grid::balanced(36, 2);
        let offs = offsets(2, 1);
        for r in 0..g.len() {
            for off in &offs {
                let n = g.neighbor(r, off);
                let back: Vec<i64> = off.iter().map(|v| -v).collect();
                assert_eq!(g.neighbor(n, &back), r);
            }
        }
    }

    #[test]
    fn offsets_counts() {
        // 3-D: 6 faces, 18 faces+edges, 26 all.
        assert_eq!(offsets(3, 1).len(), 6);
        assert_eq!(offsets(3, 2).len(), 18);
        assert_eq!(offsets(3, 3).len(), 26);
        // 2-D: 4 faces, 8 with corners. 4-D: 8 faces.
        assert_eq!(offsets(2, 1).len(), 4);
        assert_eq!(offsets(2, 2).len(), 8);
        assert_eq!(offsets(4, 1).len(), 8);
    }

    #[test]
    fn offsets_are_symmetric_sets() {
        for d in 1..5 {
            for k in 1..=d {
                let offs = offsets(d, k);
                for off in &offs {
                    let neg: Vec<i64> = off.iter().map(|v| -v).collect();
                    assert!(offs.contains(&neg), "{off:?} lacks its negative");
                }
            }
        }
    }

    #[test]
    fn order_counts_nonzeros() {
        assert_eq!(order(&[1, 0, -1]), 2);
        assert_eq!(order(&[0, 0, 0]), 0);
        assert_eq!(order(&[1, 1, 1]), 3);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Grid::new(vec![4, 3, 2])), "4x3x2");
    }

    #[test]
    fn degenerate_dims_wrap_to_self() {
        // A 1-wide dimension wraps a neighbor offset back onto the rank
        // itself; callers must skip self-messages.
        let g = Grid::new(vec![4, 1]);
        assert_eq!(g.neighbor(0, &[0, 1]), 0);
        assert_eq!(g.neighbor(0, &[1, 0]), g.rank(&[1, 0]));
    }
}
