//! Workload generation knobs.

use cesim_goal::collectives::{AllreduceAlgo, CollectiveCosts};

/// Configuration shared by every workload generator.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Override the app's default step/iteration count entirely.
    pub steps_override: Option<usize>,
    /// Scale the app's default step count (ignored when
    /// `steps_override` is set). Values < 1 shorten runs for quick
    /// experiments; the slowdown ratios the study reports converge with
    /// relatively few steps.
    pub steps_scale: f64,
    /// Scale all compute durations (models faster/slower nodes).
    pub compute_scale: f64,
    /// Per-step, per-rank multiplicative compute jitter amplitude
    /// (breaks artificial lockstep; the paper's traces contain natural
    /// imbalance).
    pub jitter: f64,
    /// Seed for jitter streams.
    pub seed: u64,
    /// Local reduction-operator cost model for expanded collectives.
    pub collective_costs: CollectiveCosts,
    /// Allreduce expansion algorithm (ablation knob).
    pub allreduce_algo: AllreduceAlgo,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            steps_override: None,
            steps_scale: 1.0,
            compute_scale: 1.0,
            jitter: 0.01,
            seed: 0xCE51,
            collective_costs: CollectiveCosts::default(),
            allreduce_algo: AllreduceAlgo::default(),
        }
    }
}

impl WorkloadConfig {
    /// Resolve the effective step count from an app default.
    pub fn effective_steps(&self, default_steps: usize) -> usize {
        if let Some(s) = self.steps_override {
            return s.max(1);
        }
        assert!(
            self.steps_scale.is_finite() && self.steps_scale > 0.0,
            "steps_scale must be positive"
        );
        ((default_steps as f64 * self.steps_scale).round() as usize).max(1)
    }

    /// Builder-style step override.
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps_override = Some(steps);
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_steps_resolution() {
        let d = WorkloadConfig::default();
        assert_eq!(d.effective_steps(100), 100);
        let half = WorkloadConfig {
            steps_scale: 0.5,
            ..d
        };
        assert_eq!(half.effective_steps(100), 50);
        assert_eq!(half.effective_steps(1), 1);
        let forced = d.with_steps(7);
        assert_eq!(forced.effective_steps(100), 7);
        assert_eq!(forced.with_steps(0).effective_steps(100), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let cfg = WorkloadConfig {
            steps_scale: 0.0,
            ..WorkloadConfig::default()
        };
        cfg.effective_steps(10);
    }

    #[test]
    fn builders() {
        let c = WorkloadConfig::default().with_seed(9).with_steps(3);
        assert_eq!(c.seed, 9);
        assert_eq!(c.steps_override, Some(3));
    }
}
