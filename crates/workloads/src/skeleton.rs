//! The generic bulk-synchronous workload skeleton.
//!
//! Every workload in the study is, structurally, a timestep/iteration loop:
//!
//! ```text
//! for step in 0..steps {
//!     compute();                   // local work, with per-rank jitter
//!     halo_exchange();             // neighbor sends/recvs (decomposition-specific)
//!     halo_exchange();             //   (optional reverse/force communication)
//!     if step % k == 0 { allreduce(); ... }   // global reductions
//! }
//! ```
//!
//! [`Skeleton`] captures the parameters that distinguish the nine
//! workloads — decomposition dimensionality, halo stencil classes and
//! message sizes, compute granularity, and collective cadence — and
//! expands them into a validated [`Schedule`].

#![allow(clippy::needless_range_loop)] // parallel per-rank arrays

use crate::config::WorkloadConfig;
use crate::geometry::{offsets, order, Grid};
use cesim_goal::builder::TagPool;
use cesim_goal::collectives::allreduce;
use cesim_goal::{OpId, Rank, Schedule, ScheduleBuilder, Tag};
use cesim_model::rng::Rng64;
use cesim_model::Span;

/// One halo stencil class: all offsets with `order` non-zero components
/// exchange `bytes` each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HaloClass {
    /// Stencil order: 1 = faces, 2 = edges, 3 = corners.
    pub order: usize,
    /// Message payload per neighbor of this class.
    pub bytes: u64,
}

/// Global-reduction cadence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollectivePlan {
    /// An occurrence every `every` steps (1 = every step).
    pub every: usize,
    /// Back-to-back allreduces per occurrence (e.g. CG does two dot
    /// products per iteration).
    pub per_occurrence: usize,
    /// Reduction payload.
    pub bytes: u64,
}

/// A workload's communication-skeleton parameters.
#[derive(Clone, Debug)]
pub struct Skeleton {
    /// Workload name.
    pub name: &'static str,
    /// Decomposition dimensionality (2, 3 or 4).
    pub dims: usize,
    /// Halo stencil classes (empty = no point-to-point communication).
    pub halo: Vec<HaloClass>,
    /// Whether each step performs a second (reverse) halo exchange, as
    /// molecular-dynamics force communication does.
    pub reverse_comm: bool,
    /// Perform the halo exchange only every `halo_every` steps (≥ 1).
    /// Models codes whose per-step neighbor communication is overlapped /
    /// non-synchronizing and whose real coupling point is a periodic
    /// operation (e.g. MD reneighboring every few steps); LogGOPSim traces
    /// capture the same effect through their recorded dependencies.
    pub halo_every: usize,
    /// Local compute per step (before jitter/scaling).
    pub compute_per_step: Span,
    /// Global reduction cadence, if any.
    pub collective: Option<CollectivePlan>,
    /// Default step count.
    pub default_steps: usize,
}

impl Skeleton {
    /// Expand into a schedule for `ranks` ranks.
    pub fn build(&self, ranks: usize, cfg: &WorkloadConfig) -> Schedule {
        assert!(ranks > 0, "need at least one rank");
        assert!((2..=4).contains(&self.dims), "unsupported dimensionality");
        let steps = cfg.effective_steps(self.default_steps);
        let grid = Grid::balanced(ranks, self.dims);
        let max_order = self.halo.iter().map(|h| h.order).max().unwrap_or(0);
        let offs = if max_order > 0 {
            offsets(self.dims, max_order)
        } else {
            Vec::new()
        };
        // Pre-resolve bytes per offset (None = class not exchanged).
        let bytes_of: Vec<Option<u64>> = offs
            .iter()
            .map(|o| {
                let k = order(o);
                self.halo.iter().find(|h| h.order == k).map(|h| h.bytes)
            })
            .collect();

        let mut b = ScheduleBuilder::new(ranks);
        let mut tags = TagPool::new();
        let mut jitter: Vec<Rng64> = (0..ranks)
            .map(|r| Rng64::substream(cfg.seed, r as u64))
            .collect();

        // Start node per rank.
        let mut cur: Vec<OpId> = (0..ranks).map(|r| b.join(Rank::from(r), &[])).collect();

        for step in 0..steps {
            // Compute phase.
            for r in 0..ranks {
                let dur = self
                    .compute_per_step
                    .mul_f64(cfg.compute_scale * jitter[r].jitter(cfg.jitter));
                cur[r] = b.calc(Rank::from(r), dur, &[cur[r]]);
            }
            // Halo phase(s). Tags: two per step (forward/reverse), far
            // below the collective tag base.
            if step % self.halo_every.max(1) == 0 {
                let phases = if self.reverse_comm { 2 } else { 1 };
                for phase in 0..phases {
                    let tag = Tag((step * 2 + phase) as u32);
                    halo_phase(&mut b, &grid, &offs, &bytes_of, tag, &mut cur);
                }
            }
            // Collective phase.
            if let Some(c) = self.collective {
                if step % c.every.max(1) == 0 {
                    for _ in 0..c.per_occurrence {
                        cur = allreduce(
                            &mut b,
                            &mut tags,
                            cfg.allreduce_algo,
                            c.bytes,
                            &cfg.collective_costs,
                            &cur,
                        );
                    }
                }
            }
        }
        b.build()
    }

    /// Nominal step count × compute per step: the serial-compute lower
    /// bound on the baseline runtime (useful for sizing experiments).
    pub fn nominal_compute(&self, cfg: &WorkloadConfig) -> Span {
        let steps = cfg.effective_steps(self.default_steps) as u64;
        self.compute_per_step.mul_f64(cfg.compute_scale) * steps
    }
}

/// One halo exchange: every rank sends to / receives from each stencil
/// neighbor, then joins. Offsets that wrap onto the rank itself (extent-1
/// dimensions) are skipped on both sides.
fn halo_phase(
    b: &mut ScheduleBuilder,
    grid: &Grid,
    offs: &[Vec<i64>],
    bytes_of: &[Option<u64>],
    tag: Tag,
    cur: &mut [OpId],
) {
    if offs.is_empty() {
        return;
    }
    let ranks = grid.len();
    for r in 0..ranks {
        let rank = Rank::from(r);
        let mut parts = Vec::with_capacity(offs.len() * 2 + 1);
        parts.push(cur[r]);
        for (o, bytes) in offs.iter().zip(bytes_of) {
            let Some(bytes) = *bytes else { continue };
            let nb = grid.neighbor(r, o);
            if nb == r {
                continue;
            }
            parts.push(b.send(rank, Rank::from(nb), bytes, tag, &[cur[r]]));
            parts.push(b.recv(rank, Some(Rank::from(nb)), bytes, tag, &[cur[r]]));
        }
        cur[r] = b.join(rank, &parts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Skeleton {
        Skeleton {
            name: "toy",
            dims: 3,
            halo: vec![
                HaloClass {
                    order: 1,
                    bytes: 1024,
                },
                HaloClass {
                    order: 2,
                    bytes: 128,
                },
            ],
            reverse_comm: false,
            halo_every: 1,
            compute_per_step: Span::from_ms(1),
            collective: Some(CollectivePlan {
                every: 1,
                per_occurrence: 2,
                bytes: 8,
            }),
            default_steps: 4,
        }
    }

    #[test]
    fn builds_and_validates() {
        let s = toy().build(27, &WorkloadConfig::default());
        s.validate().unwrap();
        assert_eq!(s.num_ranks(), 27);
    }

    #[test]
    fn halo_send_counts() {
        // 27 ranks = 3x3x3 periodic: every rank has 6 face + 12 edge
        // neighbors, all distinct, 4 steps.
        let s = toy().build(27, &WorkloadConfig::default());
        let st = s.stats();
        let halo_sends = 27 * (6 + 12) * 4;
        // Allreduce on 27 ranks: m = 16, rem = 11 → 16*4 + 2*11 = 86 sends,
        // twice per step.
        let coll_sends = 86 * 2 * 4;
        assert_eq!(st.sends, (halo_sends + coll_sends) as u64);
    }

    #[test]
    fn reverse_comm_doubles_halo() {
        let mut sk = toy();
        sk.collective = None;
        let fwd = sk.build(8, &WorkloadConfig::default()).stats().sends;
        sk.reverse_comm = true;
        let both = sk.build(8, &WorkloadConfig::default()).stats().sends;
        assert_eq!(both, fwd * 2);
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let s = toy().build(1, &WorkloadConfig::default());
        s.validate().unwrap();
        assert_eq!(s.stats().sends, 0);
        assert!(s.stats().calcs > 0);
    }

    #[test]
    fn two_ranks_skip_duplicate_wraps_consistently() {
        // 2x1x1 grid: every offset with a non-zero x component reaches
        // the other rank (the +x/-x wrap coincide); offsets confined to
        // the extent-1 dimensions wrap to self and are skipped. Order <= 2
        // offsets with x != 0: 2 faces + 8 edges = 10 per rank.
        let mut sk = toy();
        sk.collective = None;
        let s = sk.build(2, &WorkloadConfig::default().with_steps(1));
        s.validate().unwrap();
        assert_eq!(s.stats().sends, 20);
    }

    #[test]
    fn jitter_varies_compute_but_determinism_holds() {
        let cfg = WorkloadConfig::default();
        let a = toy().build(8, &cfg);
        let b = toy().build(8, &cfg);
        assert_eq!(a, b, "same seed must give identical schedules");
        let c = toy().build(8, &cfg.with_seed(1));
        assert_ne!(a, c, "different seed should perturb compute jitter");
    }

    #[test]
    fn nominal_compute_math() {
        let sk = toy();
        let cfg = WorkloadConfig::default();
        assert_eq!(sk.nominal_compute(&cfg), Span::from_ms(4));
        let cfg2 = WorkloadConfig {
            compute_scale: 2.0,
            ..cfg
        };
        assert_eq!(sk.nominal_compute(&cfg2), Span::from_ms(8));
    }

    #[test]
    fn collective_every_k() {
        let mut sk = toy();
        sk.halo.clear();
        sk.collective = Some(CollectivePlan {
            every: 3,
            per_occurrence: 1,
            bytes: 8,
        });
        sk.default_steps = 7;
        // Occurrences at steps 0, 3, 6 → 3 allreduces on 4 ranks = 3*4*2 sends.
        let s = sk.build(4, &WorkloadConfig::default());
        assert_eq!(s.stats().sends, 24);
    }
}
