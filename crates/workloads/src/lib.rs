//! # cesim-workloads
//!
//! Communication skeletons for the nine workloads of the paper's Table I:
//! LAMMPS (Lennard-Jones, SNAP and Crack potentials), LULESH, HPCG, CTH,
//! MILC, miniFE and SPARC.
//!
//! ## Substitution note (see DESIGN.md)
//!
//! The paper replays MPI traces collected on Mutrino (64–128 ranks) and
//! extrapolates them with LogGOPSim to 4k–16k ranks. The traces are not
//! available, so this crate generates each workload's *communication
//! skeleton* directly at the target scale: the decomposition geometry,
//! per-step halo exchanges, compute granularity and — critically — the
//! **collective frequency**, which the paper (§IV-C, citing Ferreira et
//! al. SC'14) identifies as the property that determines sensitivity to
//! CE noise. The skeletons are calibrated so that
//!
//! * LAMMPS-lj and LAMMPS-snap have long compute phases and rare
//!   collectives (the paper's insensitive pair),
//! * LULESH and LAMMPS-crack have fine-grained steps with per-step
//!   collectives (the paper's most sensitive pair),
//! * HPCG, miniFE, CTH, MILC and SPARC sit in between (CG-style solvers
//!   and timestep-controlled physics with ~1 s global sync intervals).
//!
//! Rank-count *extrapolation* is inherent: generators take the target rank
//! count and produce exact collective trees (like LogGOPSim's exact
//! collective extrapolation) and geometry-preserving point-to-point halos.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod config;
pub mod geometry;
pub mod skeleton;

pub use apps::AppId;
pub use config::WorkloadConfig;
pub use skeleton::Skeleton;

use cesim_goal::Schedule;

/// Build the communication skeleton of `app` for `ranks` ranks.
///
/// Panics if `ranks == 0`. Use [`natural_ranks`] to snap a node budget to
/// the workload's natural process count first (e.g. LULESH's
/// 125·2^k rule from the paper).
pub fn build(app: AppId, ranks: usize, cfg: &WorkloadConfig) -> Schedule {
    apps::spec(app).build(ranks, cfg)
}

/// The workload's natural rank count given a node budget, mirroring
/// Table II's note: LULESH runs on the nearest power-of-two multiple of
/// its 125-rank trace (e.g. 16,000 on a 16,384-node system); all other
/// workloads use the node count directly.
pub fn natural_ranks(app: AppId, target_nodes: usize) -> usize {
    match app {
        AppId::Lulesh => {
            if target_nodes < 125 {
                // Below the trace size, fall back to the budget itself.
                target_nodes.max(1)
            } else {
                let mut r = 125usize;
                while r * 2 <= target_nodes {
                    r *= 2;
                }
                r
            }
        }
        _ => target_nodes.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lulesh_natural_ranks_match_paper() {
        // Table II: 16,000 simulated LULESH processes on 16,384 nodes.
        assert_eq!(natural_ranks(AppId::Lulesh, 16_384), 16_000);
        assert_eq!(natural_ranks(AppId::Lulesh, 8_192), 8_000);
        assert_eq!(natural_ranks(AppId::Lulesh, 4_096), 4_000);
        assert_eq!(natural_ranks(AppId::Lulesh, 125), 125);
        assert_eq!(natural_ranks(AppId::Lulesh, 64), 64);
        assert_eq!(natural_ranks(AppId::Hpcg, 16_384), 16_384);
    }

    #[test]
    fn all_apps_build_and_validate_small() {
        let cfg = WorkloadConfig {
            steps_override: Some(3),
            ..WorkloadConfig::default()
        };
        for app in AppId::all() {
            let s = build(app, 8, &cfg);
            assert_eq!(s.num_ranks(), 8, "{app:?}");
            s.validate().unwrap_or_else(|e| panic!("{app:?}: {e}"));
            assert!(s.stats().sends > 0, "{app:?} has no communication");
        }
    }
}
