//! The nine workloads of Table I, as calibrated skeletons.
//!
//! Calibration targets (see crate docs and DESIGN.md): the property that
//! governs CE-noise sensitivity is how often the whole machine
//! synchronizes (collective cadence) relative to the per-event logging
//! cost. The paper's observed grouping:
//!
//! * **insensitive** (LAMMPS-lj, LAMMPS-snap): hundreds of milliseconds of
//!   compute per step, collectives only every ~20 steps → multi-second
//!   global-sync windows that absorb detours in parallel;
//! * **highly sensitive** (LULESH, LAMMPS-crack): ~8 ms steps with
//!   per-step reductions → every detour serializes into the critical path;
//! * **intermediate** (HPCG, miniFE, CTH, MILC, SPARC): ~0.4–0.8 s
//!   iterations with per-iteration reductions.

use crate::skeleton::{CollectivePlan, HaloClass, Skeleton};
use cesim_model::Span;
use core::fmt;

const KIB: u64 = 1024;

/// The workloads evaluated in the paper (Table I). LAMMPS appears three
/// times, once per potential, exactly as in the figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppId {
    /// LAMMPS with the Lennard-Jones pair potential.
    LammpsLj,
    /// LAMMPS with the SNAP machine-learned potential.
    LammpsSnap,
    /// LAMMPS 2-D crack-propagation problem.
    LammpsCrack,
    /// LLNL's Lagrangian shock-hydrodynamics proxy app.
    Lulesh,
    /// The High Performance Conjugate Gradients benchmark.
    Hpcg,
    /// Sandia's CTH shock-physics code (conical-charge input).
    Cth,
    /// MIMD Lattice Computation (lattice QCD).
    Milc,
    /// Sandia's unstructured implicit finite-element mini-app.
    MiniFe,
    /// Sandia's compressible CFD code (Generic Reentry Vehicle input).
    Sparc,
}

impl AppId {
    /// All nine workloads in the figures' display order.
    pub fn all() -> [AppId; 9] {
        [
            AppId::LammpsLj,
            AppId::LammpsSnap,
            AppId::LammpsCrack,
            AppId::Lulesh,
            AppId::Hpcg,
            AppId::Cth,
            AppId::Milc,
            AppId::MiniFe,
            AppId::Sparc,
        ]
    }

    /// Short display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            AppId::LammpsLj => "LAMMPS-lj",
            AppId::LammpsSnap => "LAMMPS-snap",
            AppId::LammpsCrack => "LAMMPS-crack",
            AppId::Lulesh => "LULESH",
            AppId::Hpcg => "HPCG",
            AppId::Cth => "CTH",
            AppId::Milc => "MILC",
            AppId::MiniFe => "miniFE",
            AppId::Sparc => "SPARC",
        }
    }

    /// Parse a figure-style name (case-insensitive).
    pub fn parse(s: &str) -> Option<AppId> {
        let l = s.to_ascii_lowercase();
        AppId::all()
            .into_iter()
            .find(|a| a.name().to_ascii_lowercase() == l)
    }

    /// Table I description.
    pub fn description(self) -> &'static str {
        match self {
            AppId::LammpsLj | AppId::LammpsSnap | AppId::LammpsCrack => {
                "A classical molecular dynamics simulator from Sandia National \
                 Laboratories. Experiments use the Lennard-Jones (lj), SNAP \
                 (snap) and Crack (crack) potentials."
            }
            AppId::Lulesh => {
                "A proxy application that approximates the hydrodynamics \
                 equations discretely by partitioning the spatial problem \
                 domain into volumetric elements defined by a mesh."
            }
            AppId::Hpcg => {
                "A benchmark that generates and solves a synthetic 3D sparse \
                 linear system using a local symmetric Gauss-Seidel \
                 preconditioned conjugate gradient method."
            }
            AppId::Cth => {
                "A shock physics code developed at Sandia National \
                 Laboratories; input describes the detonation of a conical \
                 explosive charge."
            }
            AppId::Milc => {
                "Numerical simulation for the study of quantum chromodynamics \
                 (QCD), the theory of the strong interactions of subatomic \
                 physics."
            }
            AppId::MiniFe => {
                "A proxy application that captures the key behaviors of \
                 unstructured implicit finite element codes."
            }
            AppId::Sparc => {
                "A next-generation compressible computational fluid dynamics \
                 (CFD) code developed by Sandia National Laboratories; input \
                 is the Generic Reentry Vehicle (GRV) problem."
            }
        }
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The calibrated skeleton for `app`.
pub fn spec(app: AppId) -> Skeleton {
    match app {
        // MD with cheap pairwise forces: big steps, rare global syncs
        // (thermo output every ~20 steps), forward + reverse ghost comm.
        AppId::LammpsLj => Skeleton {
            name: "LAMMPS-lj",
            dims: 3,
            halo: vec![HaloClass {
                order: 1,
                bytes: 256 * KIB,
            }],
            reverse_comm: true,
            halo_every: 10,
            compute_per_step: Span::from_ms(400),
            collective: Some(CollectivePlan {
                every: 20,
                per_occurrence: 1,
                bytes: 8,
            }),
            default_steps: 30,
        },
        // SNAP potential: far more expensive force kernel, smaller ghosts.
        AppId::LammpsSnap => Skeleton {
            name: "LAMMPS-snap",
            dims: 3,
            halo: vec![HaloClass {
                order: 1,
                bytes: 128 * KIB,
            }],
            reverse_comm: true,
            halo_every: 10,
            compute_per_step: Span::from_ms(800),
            collective: Some(CollectivePlan {
                every: 20,
                per_occurrence: 1,
                bytes: 8,
            }),
            default_steps: 16,
        },
        // Small 2-D problem extrapolated from a 64-rank trace: tiny steps
        // with a per-step reduction → the paper's most sensitive workload.
        AppId::LammpsCrack => Skeleton {
            name: "LAMMPS-crack",
            dims: 2,
            halo: vec![HaloClass {
                order: 1,
                bytes: 16 * KIB,
            }],
            reverse_comm: true,
            halo_every: 1,
            compute_per_step: Span::from_ms(12),
            collective: Some(CollectivePlan {
                every: 1,
                per_occurrence: 1,
                bytes: 8,
            }),
            default_steps: 150,
        },
        // Explicit shock hydro: 27-point stencil, two timestep-constraint
        // reductions (dtcourant/dthydro) every step.
        AppId::Lulesh => Skeleton {
            name: "LULESH",
            dims: 3,
            halo: vec![
                HaloClass {
                    order: 1,
                    bytes: 32 * KIB,
                },
                HaloClass {
                    order: 2,
                    bytes: 4 * KIB,
                },
                HaloClass {
                    order: 3,
                    bytes: 512,
                },
            ],
            reverse_comm: false,
            halo_every: 1,
            compute_per_step: Span::from_ms(20),
            collective: Some(CollectivePlan {
                every: 1,
                per_occurrence: 2,
                bytes: 8,
            }),
            default_steps: 120,
        },
        // CG with MG preconditioner: heavy local SpMV work per iteration,
        // two dot-product reductions per iteration.
        AppId::Hpcg => Skeleton {
            name: "HPCG",
            dims: 3,
            halo: vec![
                HaloClass {
                    order: 1,
                    bytes: 8 * KIB,
                },
                HaloClass {
                    order: 2,
                    bytes: KIB,
                },
                HaloClass {
                    order: 3,
                    bytes: 128,
                },
            ],
            reverse_comm: false,
            halo_every: 1,
            compute_per_step: Span::from_ms(500),
            collective: Some(CollectivePlan {
                every: 1,
                per_occurrence: 2,
                bytes: 8,
            }),
            default_steps: 25,
        },
        // Structured shock physics: large face exchanges, one global
        // timestep reduction per cycle.
        AppId::Cth => Skeleton {
            name: "CTH",
            dims: 3,
            halo: vec![HaloClass {
                order: 1,
                bytes: 512 * KIB,
            }],
            reverse_comm: false,
            halo_every: 1,
            compute_per_step: Span::from_ms(800),
            collective: Some(CollectivePlan {
                every: 1,
                per_occurrence: 1,
                bytes: 8,
            }),
            default_steps: 15,
        },
        // 4-D lattice QCD: 8-neighbor halo, CG inner products every
        // iteration.
        AppId::Milc => Skeleton {
            name: "MILC",
            dims: 4,
            halo: vec![HaloClass {
                order: 1,
                bytes: 32 * KIB,
            }],
            reverse_comm: false,
            halo_every: 1,
            compute_per_step: Span::from_ms(400),
            collective: Some(CollectivePlan {
                every: 1,
                per_occurrence: 2,
                bytes: 8,
            }),
            default_steps: 25,
        },
        // Unstructured implicit FE: CG solve, two reductions per iteration.
        AppId::MiniFe => Skeleton {
            name: "miniFE",
            dims: 3,
            halo: vec![HaloClass {
                order: 1,
                bytes: 16 * KIB,
            }],
            reverse_comm: false,
            halo_every: 1,
            compute_per_step: Span::from_ms(600),
            collective: Some(CollectivePlan {
                every: 1,
                per_occurrence: 2,
                bytes: 8,
            }),
            default_steps: 20,
        },
        // Compressible CFD: face+edge exchanges, residual reduction per
        // step.
        AppId::Sparc => Skeleton {
            name: "SPARC",
            dims: 3,
            halo: vec![
                HaloClass {
                    order: 1,
                    bytes: 64 * KIB,
                },
                HaloClass {
                    order: 2,
                    bytes: 8 * KIB,
                },
            ],
            reverse_comm: false,
            halo_every: 1,
            compute_per_step: Span::from_ms(700),
            collective: Some(CollectivePlan {
                every: 1,
                per_occurrence: 1,
                bytes: 8,
            }),
            default_steps: 18,
        },
    }
}

/// One row per workload describing its calibrated skeleton — the
/// transparent record of the trace substitution (DESIGN.md): columns are
/// name, decomposition, halo classes, reverse comm, halo cadence, compute
/// per step, collective cadence, default steps and the resulting global
/// sync window.
pub fn calibration_rows() -> Vec<Vec<String>> {
    AppId::all()
        .into_iter()
        .map(|app| {
            let s = spec(app);
            let halo: Vec<String> = s
                .halo
                .iter()
                .map(|h| format!("o{}:{}B", h.order, h.bytes))
                .collect();
            let coll = match s.collective {
                Some(c) => format!("{}x{}B every {}", c.per_occurrence, c.bytes, c.every),
                None => "-".into(),
            };
            vec![
                s.name.to_string(),
                format!("{}D", s.dims),
                halo.join(" "),
                if s.reverse_comm { "yes" } else { "no" }.to_string(),
                format!("every {}", s.halo_every),
                format!("{}", s.compute_per_step),
                coll,
                s.default_steps.to_string(),
                format!("{}", sync_window(app)),
            ]
        })
        .collect()
}

/// The mean interval between global synchronizations, a workload's key
/// noise-sensitivity characteristic: `compute_per_step × every`.
pub fn sync_window(app: AppId) -> Span {
    let s = spec(app);
    match s.collective {
        Some(c) => s.compute_per_step * c.every as u64,
        None => s.compute_per_step * s.default_steps as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadConfig;

    #[test]
    fn names_and_parse_roundtrip() {
        for app in AppId::all() {
            assert_eq!(AppId::parse(app.name()), Some(app));
            assert_eq!(AppId::parse(&app.name().to_uppercase()), Some(app));
            assert!(!app.description().is_empty());
        }
        assert_eq!(AppId::parse("nope"), None);
    }

    #[test]
    fn sensitivity_grouping_by_sync_window() {
        // The calibration property the figures depend on: insensitive
        // windows ≫ intermediate ≫ sensitive.
        let insensitive = [AppId::LammpsLj, AppId::LammpsSnap];
        let sensitive = [AppId::Lulesh, AppId::LammpsCrack];
        let mid = [
            AppId::Hpcg,
            AppId::Cth,
            AppId::Milc,
            AppId::MiniFe,
            AppId::Sparc,
        ];
        for a in insensitive {
            assert!(sync_window(a) >= Span::from_secs(8), "{a}");
        }
        for a in sensitive {
            assert!(sync_window(a) <= Span::from_ms(25), "{a}");
        }
        for a in mid {
            let w = sync_window(a);
            assert!(
                w >= Span::from_ms(300) && w <= Span::from_ms(1000),
                "{a}: {w}"
            );
        }
    }

    #[test]
    fn specs_build_at_modest_scale() {
        let cfg = WorkloadConfig::default().with_steps(2);
        for app in AppId::all() {
            let sk = spec(app);
            let s = sk.build(16, &cfg);
            s.validate().unwrap_or_else(|e| panic!("{app}: {e}"));
        }
    }

    #[test]
    fn milc_is_4d() {
        assert_eq!(spec(AppId::Milc).dims, 4);
        assert_eq!(spec(AppId::LammpsCrack).dims, 2);
    }

    #[test]
    fn reverse_comm_only_for_lammps() {
        for app in AppId::all() {
            let rc = spec(app).reverse_comm;
            let is_lammps = matches!(
                app,
                AppId::LammpsLj | AppId::LammpsSnap | AppId::LammpsCrack
            );
            assert_eq!(rc, is_lammps, "{app}");
        }
    }

    #[test]
    fn baseline_runtimes_are_seconds_scale() {
        // Nominal compute between 1 and 15 simulated seconds keeps
        // experiments tractable while leaving room for many CE windows.
        let cfg = WorkloadConfig::default();
        for app in AppId::all() {
            let n = spec(app).nominal_compute(&cfg);
            assert!(
                n >= Span::from_secs(1) && n <= Span::from_secs(15),
                "{app}: {n}"
            );
        }
    }
}
