//! A tiny blocking HTTP/1.1 client for the same subset the daemon
//! speaks: one request per connection, `Content-Length` bodies.
//!
//! Exists so the integration tests and the `serve_loadtest` example can
//! drive the daemon without external tooling; it is not a general HTTP
//! client.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers as `(lowercased-name, value)` pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl ClientResponse {
    /// First header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Send one request and read the full response. `timeout` bounds both
/// the connect and each read/write.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    request_with_headers(addr, method, path, body, timeout, &[])
}

/// [`request`] with extra request headers (e.g. a `traceparent` to join
/// an existing distributed trace).
pub fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
    headers: &[(&str, &str)],
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or("");
    let mut req = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in headers {
        req.push_str(&format!("{name}: {value}\r\n"));
    }
    req.push_str("\r\n");
    req.push_str(body);
    stream.write_all(req.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<ClientResponse> {
    request(addr, "GET", path, None, timeout)
}

/// `POST path` with a JSON body.
pub fn post(
    addr: SocketAddr,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    request(addr, "POST", path, Some(body), timeout)
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn parse_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response without header terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let body =
        String::from_utf8(raw[head_end + 4..].to_vec()).map_err(|_| bad("non-UTF-8 body"))?;
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_bytes() {
        let raw =
            b"HTTP/1.1 429 Too Many Requests\r\nretry-after: 1\r\ncontent-length: 2\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 429);
        assert_eq!(r.header("Retry-After"), Some("1"));
        assert_eq!(r.body, "{}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 banana\r\n\r\n").is_err());
    }
}
