//! Request counters and latency histograms, rendered in the Prometheus
//! text exposition format on `GET /metrics`. Latency buckets carry
//! OpenMetrics exemplars — the trace id of the latest observation that
//! landed in each bucket — so a suspicious bucket links straight to a
//! stored trace at `/v1/debug/traces/:id`.
//!
//! The hot-path cost is one short mutex acquisition per completed
//! request; the queue-depth gauge and shed/panic counters are atomics
//! because the accept thread updates them outside any request. Label
//! sets live in [`BTreeMap`]s so the rendered text is deterministic —
//! the integration tests diff whole scrape bodies.

use cesim_core::service::ServiceState;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Histogram bucket upper bounds, in seconds (a `+Inf` bucket is
/// implicit). Spans sub-millisecond cache hits to multi-second sweeps.
pub const LATENCY_BUCKETS: [f64; 10] =
    [0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1.0, 5.0];

/// An OpenMetrics exemplar: the most recent observation that landed in
/// a bucket, tagged with its request's trace id so a spike in a latency
/// bucket links directly to `/v1/debug/traces/:id`.
#[derive(Clone)]
struct Exemplar {
    trace_id: String,
    value_secs: f64,
}

#[derive(Default, Clone)]
struct Hist {
    buckets: [u64; LATENCY_BUCKETS.len()],
    /// One slot per bucket plus `+Inf`; an observation overwrites the
    /// exemplar of the lowest bucket it lands in (its canonical bucket).
    exemplars: [Option<Exemplar>; LATENCY_BUCKETS.len() + 1],
    count: u64,
    sum_us: u64,
}

#[derive(Default)]
struct Inner {
    /// `(endpoint, status)` → request count.
    requests: BTreeMap<(&'static str, u16), u64>,
    /// endpoint → latency histogram.
    latency: BTreeMap<&'static str, Hist>,
}

/// OpenMetrics exemplar suffix for a bucket line: ` # {trace_id="…"} v`,
/// or empty when the bucket has never seen a traced observation.
fn exemplar_suffix(e: &Option<Exemplar>) -> String {
    match e {
        Some(e) => format!(" # {{trace_id=\"{}\"}} {}", e.trace_id, e.value_secs),
        None => String::new(),
    }
}

/// All daemon-level metrics; one instance shared by every thread.
pub struct Metrics {
    inner: Mutex<Inner>,
    queue_depth: AtomicUsize,
    shed: AtomicU64,
    panics: AtomicU64,
    started: Instant,
    workers: AtomicUsize,
    busy_workers: AtomicUsize,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Metrics {
            inner: Mutex::new(Inner::default()),
            queue_depth: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            started: Instant::now(),
            workers: AtomicUsize::new(0),
            busy_workers: AtomicUsize::new(0),
        }
    }

    /// Record one completed request.
    pub fn observe(&self, endpoint: &'static str, status: u16, elapsed: Duration) {
        self.observe_traced(endpoint, status, elapsed, None);
    }

    /// [`Metrics::observe`], additionally pinning the observation's
    /// trace id as the exemplar of the bucket it lands in.
    pub fn observe_traced(
        &self,
        endpoint: &'static str,
        status: u16,
        elapsed: Duration,
        trace_id: Option<&str>,
    ) {
        let mut inner = self.inner.lock().expect("metrics lock");
        *inner.requests.entry((endpoint, status)).or_insert(0) += 1;
        let hist = inner.latency.entry(endpoint).or_default();
        let secs = elapsed.as_secs_f64();
        let mut slot = LATENCY_BUCKETS.len(); // +Inf unless a bound fits
        for (i, bound) in LATENCY_BUCKETS.iter().enumerate() {
            if secs <= *bound {
                hist.buckets[i] += 1;
                slot = slot.min(i);
            }
        }
        hist.count += 1;
        hist.sum_us += elapsed.as_micros() as u64;
        if let Some(trace_id) = trace_id {
            hist.exemplars[slot] = Some(Exemplar {
                trace_id: trace_id.to_string(),
                value_secs: secs,
            });
        }
    }

    /// Record a connection shed with 429 because the queue was full.
    pub fn shed(&self) {
        self.shed.fetch_add(1, Relaxed);
    }

    /// Requests shed so far.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Relaxed)
    }

    /// Record a handler panic caught by the worker isolation boundary.
    pub fn panicked(&self) {
        self.panics.fetch_add(1, Relaxed);
    }

    /// Panics caught so far.
    pub fn panic_count(&self) -> u64 {
        self.panics.load(Relaxed)
    }

    /// Publish the current accept-queue depth.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Relaxed);
    }

    /// Publish the configured worker count (once, at startup).
    pub fn set_workers(&self, n: usize) {
        self.workers.store(n, Relaxed);
    }

    /// A worker picked up a connection.
    pub fn worker_busy(&self) {
        self.busy_workers.fetch_add(1, Relaxed);
    }

    /// A worker finished its connection.
    pub fn worker_idle(&self) {
        self.busy_workers.fetch_sub(1, Relaxed);
    }

    /// Render the Prometheus text exposition, folding in the cache
    /// counters owned by the simulation state.
    pub fn render(&self, state: &ServiceState) -> String {
        let inner = self.inner.lock().expect("metrics lock");
        let mut out = String::with_capacity(2048);

        out.push_str("# HELP cesim_requests_total Requests completed, by endpoint and status.\n");
        out.push_str("# TYPE cesim_requests_total counter\n");
        for ((endpoint, status), count) in &inner.requests {
            out.push_str(&format!(
                "cesim_requests_total{{endpoint=\"{endpoint}\",code=\"{status}\"}} {count}\n"
            ));
        }

        out.push_str("# HELP cesim_request_duration_seconds Request latency, by endpoint.\n");
        out.push_str("# TYPE cesim_request_duration_seconds histogram\n");
        for (endpoint, hist) in &inner.latency {
            for (i, bound) in LATENCY_BUCKETS.iter().enumerate() {
                out.push_str(&format!(
                    "cesim_request_duration_seconds_bucket{{endpoint=\"{endpoint}\",le=\"{bound}\"}} {}{}\n",
                    hist.buckets[i],
                    exemplar_suffix(&hist.exemplars[i])
                ));
            }
            out.push_str(&format!(
                "cesim_request_duration_seconds_bucket{{endpoint=\"{endpoint}\",le=\"+Inf\"}} {}{}\n",
                hist.count,
                exemplar_suffix(&hist.exemplars[LATENCY_BUCKETS.len()])
            ));
            out.push_str(&format!(
                "cesim_request_duration_seconds_sum{{endpoint=\"{endpoint}\"}} {}\n",
                hist.sum_us as f64 / 1e6
            ));
            out.push_str(&format!(
                "cesim_request_duration_seconds_count{{endpoint=\"{endpoint}\"}} {}\n",
                hist.count
            ));
        }
        drop(inner);

        out.push_str("# HELP cesim_queue_depth Connections waiting for a worker.\n");
        out.push_str("# TYPE cesim_queue_depth gauge\n");
        out.push_str(&format!(
            "cesim_queue_depth {}\n",
            self.queue_depth.load(Relaxed)
        ));

        out.push_str(
            "# HELP cesim_shed_total Connections answered 429 because the queue was full.\n",
        );
        out.push_str("# TYPE cesim_shed_total counter\n");
        out.push_str(&format!("cesim_shed_total {}\n", self.shed.load(Relaxed)));

        out.push_str("# HELP cesim_worker_panics_total Handler panics caught and answered 500.\n");
        out.push_str("# TYPE cesim_worker_panics_total counter\n");
        out.push_str(&format!(
            "cesim_worker_panics_total {}\n",
            self.panics.load(Relaxed)
        ));

        for (name, help, value) in [
            (
                "cesim_schedule_cache_hits_total",
                "Compiled-schedule cache hits.",
                state.schedules.hits(),
            ),
            (
                "cesim_schedule_cache_misses_total",
                "Compiled-schedule cache misses (compilations).",
                state.schedules.misses(),
            ),
            (
                "cesim_response_cache_hits_total",
                "Full-response cache hits.",
                state.responses.hits(),
            ),
            (
                "cesim_response_cache_misses_total",
                "Full-response cache misses.",
                state.responses.misses(),
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }

        out.push_str("# HELP cesim_build_info Build metadata; value is always 1.\n");
        out.push_str("# TYPE cesim_build_info gauge\n");
        out.push_str(&format!(
            "cesim_build_info{{version=\"{}\"}} 1\n",
            env!("CARGO_PKG_VERSION")
        ));

        out.push_str("# HELP cesim_uptime_seconds Seconds since the daemon started.\n");
        out.push_str("# TYPE cesim_uptime_seconds gauge\n");
        out.push_str(&format!(
            "cesim_uptime_seconds {:.3}\n",
            self.started.elapsed().as_secs_f64()
        ));

        out.push_str("# HELP cesim_workers Configured request-worker threads.\n");
        out.push_str("# TYPE cesim_workers gauge\n");
        out.push_str(&format!("cesim_workers {}\n", self.workers.load(Relaxed)));

        out.push_str("# HELP cesim_workers_busy Workers currently handling a connection.\n");
        out.push_str("# TYPE cesim_workers_busy gauge\n");
        out.push_str(&format!(
            "cesim_workers_busy {}\n",
            self.busy_workers.load(Relaxed)
        ));

        // Live shard-engine counters: process-wide, so in-flight sharded
        // simulations are visible between scrapes of the request metrics.
        let g = cesim_core::engine::shard_globals();
        out.push_str("# HELP cesim_shard_runs_active Sharded simulations currently in flight.\n");
        out.push_str("# TYPE cesim_shard_runs_active gauge\n");
        out.push_str(&format!("cesim_shard_runs_active {}\n", g.runs_active));
        for (name, help, value) in [
            (
                "cesim_shard_runs_total",
                "Sharded simulations driven since startup.",
                g.runs_total,
            ),
            (
                "cesim_shard_windows_total",
                "Lookahead windows advanced by the shard engine.",
                g.windows,
            ),
            (
                "cesim_shard_events_total",
                "Events processed by the shard engine.",
                g.events,
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        out.push_str(
            "# HELP cesim_shard_sim_seconds_total Simulated seconds advanced by the shard engine.\n",
        );
        out.push_str("# TYPE cesim_shard_sim_seconds_total counter\n");
        out.push_str(&format!(
            "cesim_shard_sim_seconds_total {:.6}\n",
            g.sim_ps_advanced as f64 / 1e12
        ));

        // Span-profiler phase histograms (cesim_phase_seconds).
        cesim_core::obs::telemetry::render_prometheus(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_all_families() {
        let m = Metrics::new();
        let state = ServiceState::new(2, 2);
        m.observe("/v1/simulate", 200, Duration::from_millis(3));
        m.observe("/v1/simulate", 200, Duration::from_millis(700));
        m.observe("/healthz", 200, Duration::from_micros(50));
        m.observe("/v1/simulate", 400, Duration::from_micros(80));
        m.shed();
        m.panicked();
        m.set_queue_depth(5);
        let text = m.render(&state);
        assert!(text.contains("cesim_requests_total{endpoint=\"/v1/simulate\",code=\"200\"} 2"));
        assert!(text.contains("cesim_requests_total{endpoint=\"/v1/simulate\",code=\"400\"} 1"));
        assert!(text.contains("cesim_requests_total{endpoint=\"/healthz\",code=\"200\"} 1"));
        // 3 ms lands in the 5 ms bucket but not the 2.5 ms one; the
        // 700 ms request only lands in 1 s and above.
        assert!(text.contains(
            "cesim_request_duration_seconds_bucket{endpoint=\"/v1/simulate\",le=\"0.0025\"} 1"
        ));
        assert!(text.contains(
            "cesim_request_duration_seconds_bucket{endpoint=\"/v1/simulate\",le=\"0.005\"} 2"
        ));
        assert!(text.contains(
            "cesim_request_duration_seconds_bucket{endpoint=\"/v1/simulate\",le=\"0.5\"} 2"
        ));
        assert!(text.contains(
            "cesim_request_duration_seconds_bucket{endpoint=\"/v1/simulate\",le=\"+Inf\"} 3"
        ));
        assert!(text.contains("cesim_request_duration_seconds_count{endpoint=\"/v1/simulate\"} 3"));
        assert!(text.contains("cesim_queue_depth 5"));
        assert!(text.contains("cesim_shed_total 1"));
        assert!(text.contains("cesim_worker_panics_total 1"));
        assert!(text.contains("cesim_schedule_cache_hits_total 0"));
        assert!(text.contains("cesim_response_cache_misses_total 0"));
    }

    #[test]
    fn traced_observations_render_bucket_exemplars() {
        let m = Metrics::new();
        let state = ServiceState::new(1, 1);
        m.observe_traced(
            "/v1/sweep",
            200,
            Duration::from_millis(3),
            Some("0af7651916cd43dd8448eb211c80319c"),
        );
        // Beyond the last bound: the exemplar lands on +Inf.
        m.observe_traced(
            "/v1/sweep",
            200,
            Duration::from_secs(6),
            Some("ffffffffffffffffffffffffffffffff"),
        );
        let text = m.render(&state);
        assert!(text.contains(
            "cesim_request_duration_seconds_bucket{endpoint=\"/v1/sweep\",le=\"0.005\"} 1 \
             # {trace_id=\"0af7651916cd43dd8448eb211c80319c\"} 0.003"
        ));
        assert!(text.contains(
            "cesim_request_duration_seconds_bucket{endpoint=\"/v1/sweep\",le=\"+Inf\"} 2 \
             # {trace_id=\"ffffffffffffffffffffffffffffffff\"} 6"
        ));
        // Untraced observations must not touch exemplars: only the
        // canonical bucket of the traced one carries a suffix.
        m.observe("/v1/sweep", 200, Duration::from_millis(3));
        let text = m.render(&state);
        assert!(text.contains(
            "cesim_request_duration_seconds_bucket{endpoint=\"/v1/sweep\",le=\"0.0025\"} 0\n"
        ));
        assert!(text.contains(
            "cesim_request_duration_seconds_bucket{endpoint=\"/v1/sweep\",le=\"0.005\"} 2 #"
        ));
    }

    #[test]
    fn render_is_deterministic() {
        let m = Metrics::new();
        let state = ServiceState::new(1, 1);
        m.observe("/v1/sweep", 200, Duration::from_millis(1));
        m.observe("/healthz", 200, Duration::from_millis(1));
        // Uptime is the one wall-clock-dependent sample; everything else
        // must render byte-identically.
        fn strip_uptime(s: &str) -> String {
            s.lines()
                .filter(|l| !l.starts_with("cesim_uptime_seconds "))
                .collect::<Vec<_>>()
                .join("\n")
        }
        assert_eq!(
            strip_uptime(&m.render(&state)),
            strip_uptime(&m.render(&state))
        );
    }

    #[test]
    fn render_includes_runtime_and_shard_families() {
        let m = Metrics::new();
        m.set_workers(7);
        m.worker_busy();
        let state = ServiceState::new(1, 1);
        let text = m.render(&state);
        assert!(text.contains(&format!(
            "cesim_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        )));
        assert!(text.contains("cesim_uptime_seconds "));
        assert!(text.contains("cesim_workers 7"));
        assert!(text.contains("cesim_workers_busy 1"));
        assert!(text.contains("cesim_shard_runs_active "));
        assert!(text.contains("cesim_shard_windows_total "));
        assert!(text.contains("cesim_shard_events_total "));
        assert!(text.contains("cesim_shard_sim_seconds_total "));
        m.worker_idle();
        assert!(m.render(&state).contains("cesim_workers_busy 0"));
    }
}
