//! Minimal HTTP/1.1 message framing over blocking [`TcpStream`]s.
//!
//! This is deliberately a subset: one request per connection
//! (`Connection: close` on every response), `Content-Length` bodies
//! only (no chunked transfer), and a bounded header block. That subset
//! is exactly what the daemon's clients (curl, the in-crate client, CI
//! smoke tests) speak, and keeping the framing this small makes the
//! failure modes enumerable: every malformed input maps to a
//! [`HttpError`] and from there to a 4xx, never to a hung worker.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum size of the request line + headers block.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// A parsed request head plus its body.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased by the client ("GET", "POST", …).
    pub method: String,
    /// Request target path (query strings are not used by this API).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Raw W3C `traceparent` header value, if the client sent one.
    /// Validation happens at trace creation — a malformed value falls
    /// back to fresh ids, never to a 4xx.
    pub traceparent: Option<String>,
}

/// Why a request could not be read. Each variant maps onto one HTTP
/// status so the caller can respond precisely.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line or headers → 400.
    Malformed(String),
    /// Declared body exceeds the configured limit → 413.
    TooLarge {
        /// The request's `Content-Length`.
        declared: usize,
        /// The configured body-size limit.
        limit: usize,
    },
    /// Connection closed or timed out mid-request → 408.
    Truncated,
    /// Socket-level failure (reset, timeout before any byte) — no
    /// response is possible.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds limit of {limit}")
            }
            HttpError::Truncated => write!(f, "connection closed mid-request"),
            HttpError::Io(k) => write!(f, "socket error: {k:?}"),
        }
    }
}

/// Read one request from `stream`, honoring the stream's read timeout
/// and capping the body at `max_body_bytes`.
pub fn read_request(stream: &mut TcpStream, max_body_bytes: usize) -> Result<Request, HttpError> {
    let (head, mut leftover) = read_head(stream)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut content_length = 0usize;
    let mut traceparent = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without colon: {line:?}")))?;
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {value:?}")))?;
        } else if name.trim().eq_ignore_ascii_case("traceparent") {
            traceparent = Some(value.trim().to_string());
        }
    }
    if content_length > max_body_bytes {
        return Err(HttpError::TooLarge {
            declared: content_length,
            limit: max_body_bytes,
        });
    }

    let mut body = std::mem::take(&mut leftover);
    if body.len() > content_length {
        return Err(HttpError::Malformed(
            "body longer than Content-Length".into(),
        ));
    }
    while body.len() < content_length {
        let mut buf = [0u8; 4096];
        let want = (content_length - body.len()).min(buf.len());
        match stream.read(&mut buf[..want]) {
            Ok(0) => return Err(HttpError::Truncated),
            Ok(n) => body.extend_from_slice(&buf[..n]),
            Err(e) if is_timeout(&e) => return Err(HttpError::Truncated),
            Err(e) => return Err(HttpError::Io(e.kind())),
        }
    }
    Ok(Request {
        method,
        path,
        body,
        traceparent,
    })
}

/// Read up to the end of the header block (`\r\n\r\n`), returning the
/// head text and any body bytes read past it.
fn read_head(stream: &mut TcpStream) -> Result<(String, Vec<u8>), HttpError> {
    let mut buf = Vec::with_capacity(512);
    loop {
        if let Some(end) = find_head_end(&buf) {
            let head = String::from_utf8(buf[..end].to_vec())
                .map_err(|_| HttpError::Malformed("non-UTF-8 header block".into()))?;
            return Ok((head, buf[end + 4..].to_vec()));
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed(format!(
                "header block exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Err(HttpError::Io(std::io::ErrorKind::UnexpectedEof))
                } else {
                    Err(HttpError::Truncated)
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(HttpError::Truncated),
            Err(e) => return Err(HttpError::Io(e.kind())),
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// An outgoing response, rendered by [`write_response`].
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value) — e.g. `Retry-After` on 429.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON error body `{"error": msg}`.
    pub fn error(status: u16, msg: &str) -> Self {
        let mut body = String::from("{\"error\":");
        cesim_json::write_escaped(msg, &mut body);
        body.push('}');
        Response::json(status, body)
    }
}

/// The standard reason phrase for the status codes this daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize `resp` onto `stream`. Every response carries
/// `Connection: close`; errors are returned (not panicked) so a dead
/// client can never take a worker down.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut out = String::with_capacity(resp.body.len() + 128);
    out.push_str(&format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    ));
    for (name, value) in &resp.extra_headers {
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    out.push_str("\r\n");
    out.push_str(&resp.body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    /// Run `read_request` against raw bytes pushed through a real socket
    /// pair, mirroring production framing exactly.
    fn parse_bytes(bytes: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload = bytes.to_vec();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&payload).unwrap();
            // Close the write half so truncated requests hit EOF.
            s.shutdown(std::net::Shutdown::Write).unwrap();
            s
        });
        let (mut conn, _) = listener.accept().unwrap();
        let r = read_request(&mut conn, max_body);
        drop(writer.join().unwrap());
        r
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_bytes(
            b"POST /v1/simulate HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/simulate");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_bytes(b"GET /healthz HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert_eq!(req.traceparent, None);
    }

    #[test]
    fn captures_traceparent_header_case_insensitively() {
        let req = parse_bytes(
            b"GET /healthz HTTP/1.1\r\nTraceParent: 00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01\r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(
            req.traceparent.as_deref(),
            Some("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
        );
        // Garbage values are captured verbatim — rejection happens at
        // trace creation, where they fall back to fresh ids.
        let junk = parse_bytes(b"GET / HTTP/1.1\r\ntraceparent: nope\r\n\r\n", 1024).unwrap();
        assert_eq!(junk.traceparent.as_deref(), Some("nope"));
    }

    #[test]
    fn rejects_oversized_body_by_declared_length() {
        let err =
            parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n", 1024).unwrap_err();
        assert!(matches!(
            err,
            HttpError::TooLarge {
                declared: 99999,
                ..
            }
        ));
    }

    #[test]
    fn rejects_truncated_body() {
        let err =
            parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 1024).unwrap_err();
        assert_eq!(err, HttpError::Truncated);
    }

    #[test]
    fn rejects_garbage() {
        for bytes in [
            &b"NOT-HTTP\r\n\r\n"[..],
            &b"GET /x SPDY/9\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n"[..],
        ] {
            assert!(
                matches!(parse_bytes(bytes, 1024), Err(HttpError::Malformed(_))),
                "{bytes:?} must be malformed"
            );
        }
    }

    #[test]
    fn response_wire_format() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut conn, _) = listener.accept().unwrap();
        let mut resp = Response::json(429, "{\"error\":\"queue full\"}");
        resp.extra_headers.push(("retry-after", "1".into()));
        write_response(&mut conn, &resp).unwrap();
        drop(conn);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("content-length: 22\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }

    #[test]
    fn error_body_escapes_message() {
        let r = Response::error(400, "bad \"field\"");
        assert_eq!(r.body, "{\"error\":\"bad \\\"field\\\"\"}");
    }
}
