//! # cesim-serve
//!
//! Simulation-as-a-service: a dependency-free HTTP/1.1 daemon over
//! `std::net` that exposes the experiment layer of `cesim-core` as a
//! JSON API. No async runtime and no HTTP crates — a bounded
//! worker-thread pool over blocking sockets is simple, predictable
//! under load, and all this workload needs (requests are
//! CPU-dominated simulations, not I/O fan-out).
//!
//! ## Endpoints
//!
//! * `POST /v1/simulate` — one experiment cell; body mapped by
//!   [`cesim_core::service::SimulateRequest`].
//! * `POST /v1/sweep` — a figure-style grid ("fig3" … "fig7") run on
//!   the ambient rayon pool; body mapped by
//!   [`cesim_core::service::SweepRequest`].
//! * `POST /v1/fleet` — a fleet scenario (heterogeneous cluster, job
//!   mix, mitigation policy) run against the daemon's shared schedule
//!   cache; body mapped by [`cesim_fleet::FleetRequest`].
//! * `GET /healthz` — liveness.
//! * `GET /metrics` — Prometheus text: per-endpoint request counters
//!   and latency histograms, queue depth, shed/panic counters, the
//!   schedule-/response-cache hit counters, build/uptime/worker
//!   gauges, live shard-engine counters, and span-profiler phase
//!   histograms (validated in-repo by [`promcheck`]).
//! * `GET /v1/debug/flightrec` — JSON dump of the in-memory flight
//!   recorder (recent spans, window advances, sheds, panics, cache
//!   evictions). The same dump goes to stderr on `SIGUSR1` and on a
//!   worker panic.
//! * `GET /v1/debug/traces` — summaries of the tail-sampled request
//!   traces, and `GET /v1/debug/traces/:id` the full span tree of one
//!   trace (`/:id/chrome` renders it as a Chrome `trace_event` file).
//!   Every request gets a trace id — fresh, or adopted from an incoming
//!   W3C `traceparent` header — echoed back as a `traceparent` response
//!   header, stamped into access-log lines and flight-recorder events,
//!   and attached to `/metrics` latency buckets as OpenMetrics
//!   exemplars. See `cesim_core::obs::tracectx`.
//!
//! ## Operational properties
//!
//! * **Backpressure, not collapse.** Accepted connections enter a
//!   bounded queue; when it is full the accept thread answers `429`
//!   with `Retry-After` immediately instead of letting latency grow
//!   without bound.
//! * **Panic isolation.** Each request handler runs under
//!   [`std::panic::catch_unwind`]; a panicking request is answered
//!   `500` and the worker lives on.
//! * **Deterministic bodies.** Simulation responses are pure functions
//!   of the request (see `cesim_core::service`), so concurrent
//!   identical requests produce byte-identical bodies and the
//!   full-response cache is sound.
//! * **Graceful shutdown.** On SIGTERM/SIGINT (or
//!   [`Server::shutdown`]) the daemon stops accepting, drains queued
//!   and in-flight requests, and joins every worker.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod metrics;
pub mod promcheck;
pub mod signal;

use cesim_core::obs::telemetry::{self, FlightKind};
use cesim_core::obs::{chrome, logging, tracectx};
use cesim_core::service::{
    handle_simulate, handle_sweep, ServiceError, ServiceState, SimulateRequest, SweepRequest,
};
use cesim_fleet::{handle_fleet, FleetRequest};
use cesim_json::JsonValue;
use http::{HttpError, Response};
use metrics::Metrics;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Daemon configuration; every knob has a CLI flag on `cesim serve`.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:8080"`. Port `0` picks an
    /// ephemeral port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker before new
    /// arrivals are shed with `429`.
    pub queue_depth: usize,
    /// Compiled-schedule LRU capacity (`0` disables).
    pub schedule_cache_entries: usize,
    /// Full-response LRU capacity (`0` disables).
    pub response_cache_entries: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Maximum request body size.
    pub max_body_bytes: usize,
    /// Expose `/v1/test/sleep` and `/v1/test/panic` (integration tests
    /// only — never enabled by the CLI).
    pub enable_test_endpoints: bool,
    /// Emit one structured access-log line per request to stderr
    /// (`--log-requests` on the CLI).
    pub log_requests: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".into(),
            workers: 4,
            queue_depth: 64,
            schedule_cache_entries: 64,
            response_cache_entries: 256,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_body_bytes: 1 << 20,
            enable_test_endpoints: false,
            log_requests: false,
        }
    }
}

/// State shared by the accept thread and every worker.
struct Shared {
    cfg: ServeConfig,
    state: ServiceState,
    metrics: Metrics,
    traces: tracectx::TraceStore,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
}

/// A running daemon: an accept thread plus `workers` request threads.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving in background threads.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        // The daemon is long-lived and observability is its contract:
        // spans, phase histograms, and the flight recorder are always on.
        telemetry::set_enabled(true);
        telemetry::install_engine_hook();
        telemetry::install_panic_hook();
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            state: ServiceState::new(cfg.schedule_cache_entries, cfg.response_cache_entries),
            metrics: Metrics::new(),
            traces: tracectx::TraceStore::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        shared.metrics.set_workers(workers);
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The actual bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain queued and in-flight requests, and join
    /// every thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept thread is blocked in accept(2); a throwaway
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Workers drain whatever is queued, then observe the flag.
        self.shared.queue_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Blocking CLI entry point: bind, serve until SIGTERM/SIGINT, then
/// shut down gracefully.
pub fn run(cfg: ServeConfig) -> std::io::Result<()> {
    signal::install();
    let workers = cfg.workers.max(1).to_string();
    let server = Server::bind(cfg)?;
    logging::info(
        "serve",
        &[
            ("msg", &format!("listening on {}", server.addr())),
            ("workers", &workers),
        ],
    );
    while !signal::triggered() {
        if signal::usr1_taken() {
            // Operator asked for a flight-recorder dump (kill -USR1).
            telemetry::flight_record(FlightKind::Signal, "SIGUSR1", 0, 0);
            eprintln!("cesim-flightrec: {}", telemetry::flight_dump_json());
        }
        thread::sleep(Duration::from_millis(100));
    }
    logging::info("serve", &[("msg", "draining and shutting down")]);
    server.shutdown();
    Ok(())
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let mut stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // A connection without socket timeouts can park a worker forever
        // on a stalled peer — refuse it rather than risk that.
        if let Err(e) = stream
            .set_read_timeout(Some(shared.cfg.read_timeout))
            .and_then(|()| stream.set_write_timeout(Some(shared.cfg.write_timeout)))
        {
            logging::warn(
                "serve",
                &[(
                    "msg",
                    &format!("dropping connection (cannot set socket timeouts: {e})"),
                )],
            );
            drop(stream);
            continue;
        }
        let mut q = shared.queue.lock().expect("accept queue lock");
        if q.len() >= shared.cfg.queue_depth {
            let depth = q.len();
            drop(q);
            shared.metrics.shed();
            telemetry::flight_record(FlightKind::Shed, "queue_full", depth as u64, 0);
            // Shed requests never reach a worker, so a minimal root-only
            // trace keeps them visible in the tail-sampled store.
            shared.traces.offer(tracectx::shed_trace());
            let mut resp = Response::error(429, "queue full; retry later");
            resp.extra_headers.push(("retry-after", "1".into()));
            let _ = http::write_response(&mut stream, &resp);
        } else {
            q.push_back(stream);
            shared.metrics.set_queue_depth(q.len());
            drop(q);
            shared.queue_cv.notify_one();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().expect("worker queue lock");
            loop {
                if let Some(s) = q.pop_front() {
                    shared.metrics.set_queue_depth(q.len());
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.queue_cv.wait(q).expect("worker queue wait");
            }
        };
        let Some(mut stream) = stream else { return };
        shared.metrics.worker_busy();
        handle_connection(shared, &mut stream);
        shared.metrics.worker_idle();
    }
}

/// Stable endpoint label for metrics (bounds label cardinality: an
/// attacker probing random paths lands in `"other"`).
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/v1/simulate" => "/v1/simulate",
        "/v1/sweep" => "/v1/sweep",
        "/v1/fleet" => "/v1/fleet",
        "/v1/debug/flightrec" => "/v1/debug/flightrec",
        "/v1/test/sleep" => "/v1/test/sleep",
        "/v1/test/panic" => "/v1/test/panic",
        // One label for the whole trace-lookup family: the id segment
        // would otherwise mint a label per trace.
        p if p.starts_with("/v1/debug/traces") => "/v1/debug/traces",
        _ => "other",
    }
}

thread_local! {
    /// Whether the current request was answered from the full-response
    /// cache (`None` for endpoints that never consult it). Written by
    /// [`handle_api`], consumed by the access log in
    /// [`handle_connection`].
    static CACHE_OUTCOME: std::cell::Cell<Option<bool>> = const { std::cell::Cell::new(None) };
}

/// One structured access-log line (stable logfmt/JSON via the global
/// [`logging`] format, greppable and field-splittable; enabled by
/// [`ServeConfig::log_requests`]). Carries the request's trace id so
/// access lines join up with `/v1/debug/traces/:id`.
fn access_log_line(
    method: &str,
    path: &str,
    status: u16,
    us: u64,
    cache: Option<bool>,
    trace_id: &str,
) -> String {
    let cache = match cache {
        Some(true) => "hit",
        Some(false) => "miss",
        None => "-",
    };
    logging::render_line(
        logging::format(),
        logging::Level::Info,
        "access",
        &[
            ("method", method),
            ("path", path),
            ("status", &status.to_string()),
            ("us", &us.to_string()),
            ("cache", cache),
        ],
        Some(trace_id),
    )
}

fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    let start = Instant::now();
    let req = match http::read_request(stream, shared.cfg.max_body_bytes) {
        Ok(req) => req,
        Err(err) => {
            let resp = match err {
                HttpError::Malformed(ref m) => Response::error(400, m),
                HttpError::TooLarge { declared, limit } => Response::error(
                    413,
                    &format!("body of {declared} bytes exceeds limit of {limit}"),
                ),
                HttpError::Truncated => Response::error(408, "request truncated"),
                // Nothing readable arrived; no response is possible.
                HttpError::Io(_) => return,
            };
            let _ = http::write_response(stream, &resp);
            shared
                .metrics
                .observe("other", resp.status, start.elapsed());
            return;
        }
    };
    let endpoint = endpoint_label(&req.path);
    CACHE_OUTCOME.with(|c| c.set(None));
    // Every request is traced: fresh ids, or the trace adopted from a
    // well-formed `traceparent` header (malformed values fall back to
    // fresh ids — never an error). The context is installed for the
    // duration of the handler so every telemetry span taken anywhere
    // under route() lands in this request's span tree.
    let adopted = req
        .traceparent
        .as_deref()
        .and_then(tracectx::parse_traceparent);
    let ctx = tracectx::TraceCtx::new_root(format!("{} {}", req.method, endpoint), adopted);
    let trace_hex = ctx.trace_id().to_string();
    let trace_guard = ctx.install();
    // Panic isolation boundary: a panicking handler (a bug, or the
    // test-only panic endpoint) becomes a 500 and the worker survives.
    let mut resp = match catch_unwind(AssertUnwindSafe(|| route(shared, &req))) {
        Ok(resp) => resp,
        Err(_) => {
            shared.metrics.panicked();
            telemetry::flight_record(FlightKind::Panic, endpoint, 0, 0);
            Response::error(500, "request handler panicked")
        }
    };
    drop(trace_guard);
    resp.extra_headers.push(("traceparent", ctx.traceparent()));
    // Finish before the response write so the root duration measures
    // request handling, not the peer's read speed; the trace is
    // retrievable at /v1/debug/traces/:id the moment the client sees
    // the response.
    shared.traces.offer(ctx.finish(resp.status, false));
    let _ = http::write_response(stream, &resp);
    let elapsed = start.elapsed();
    if shared.cfg.log_requests {
        let cache = CACHE_OUTCOME.with(std::cell::Cell::get);
        eprintln!(
            "{}",
            access_log_line(
                &req.method,
                endpoint,
                resp.status,
                elapsed.as_micros() as u64,
                cache,
                &trace_hex,
            )
        );
    }
    shared
        .metrics
        .observe_traced(endpoint, resp.status, elapsed, Some(&trace_hex));
}

fn route(shared: &Shared, req: &http::Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}"),
        ("GET", "/metrics") => Response::text(200, shared.metrics.render(&shared.state)),
        ("GET", "/v1/debug/flightrec") => Response::json(200, telemetry::flight_dump_json()),
        ("GET", "/v1/debug/traces") => {
            Response::json(200, tracectx::summary_json(&shared.traces.summaries()))
        }
        ("GET", p) if p.starts_with("/v1/debug/traces/") => trace_lookup(shared, p),
        ("POST", "/v1/simulate") => handle_api(shared, "/v1/simulate", &req.body, |v| {
            SimulateRequest::from_json(v).and_then(|r| handle_simulate(&shared.state, &r))
        }),
        ("POST", "/v1/sweep") => handle_api(shared, "/v1/sweep", &req.body, |v| {
            SweepRequest::from_json(v).and_then(|r| handle_sweep(&r))
        }),
        ("POST", "/v1/fleet") => handle_api(shared, "/v1/fleet", &req.body, |v| {
            FleetRequest::from_json(v).and_then(|r| handle_fleet(&shared.state, &r))
        }),
        ("POST", "/v1/test/sleep") if shared.cfg.enable_test_endpoints => test_sleep(&req.body),
        ("POST", "/v1/test/panic") if shared.cfg.enable_test_endpoints => {
            panic!("test endpoint requested a panic")
        }
        (_, "/healthz" | "/metrics" | "/v1/debug/flightrec") => {
            Response::error(405, "method not allowed")
        }
        (_, "/v1/simulate" | "/v1/sweep" | "/v1/fleet") => {
            Response::error(405, "method not allowed")
        }
        (_, p) if p.starts_with("/v1/debug/traces") => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such endpoint"),
    }
}

/// `GET /v1/debug/traces/:id` and `…/:id/chrome`: look a sampled trace
/// up by its 32-hex-digit id and render the span tree as JSON, or as a
/// Chrome `trace_event` document (load in `chrome://tracing` /
/// Perfetto) for the `/chrome` form.
fn trace_lookup(shared: &Shared, path: &str) -> Response {
    let rest = &path["/v1/debug/traces/".len()..];
    let (id_part, as_chrome) = match rest.strip_suffix("/chrome") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    let Some(id) = tracectx::TraceId::parse_hex(id_part) else {
        return Response::error(400, "trace id must be 32 hex digits");
    };
    let Some(trace) = shared.traces.get(id) else {
        return Response::error(404, "no such trace (never sampled, or evicted)");
    };
    if as_chrome {
        Response::json(200, chrome::export_request_trace(&trace))
    } else {
        Response::json(200, tracectx::trace_json(&trace))
    }
}

/// Shared plumbing for the two simulation endpoints: canonicalize the
/// body, consult the full-response cache, dispatch on a miss, and cache
/// the rendered body. Cache keys are `"<path> <canonical-json>"`, so
/// field order and whitespace never cause spurious misses and the two
/// endpoints can never alias.
fn handle_api(
    shared: &Shared,
    path: &str,
    body: &[u8],
    dispatch: impl FnOnce(&JsonValue) -> Result<JsonValue, ServiceError>,
) -> Response {
    let value = {
        let _s = telemetry::Span::enter("parse");
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => return Response::error(400, "body must be UTF-8 JSON"),
        };
        match JsonValue::parse(text) {
            Ok(v) => v,
            Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
        }
    };
    let hit = {
        let _s = telemetry::Span::enter("cache_lookup");
        let key = format!("{path} {}", value.to_json());
        match shared.state.responses.get(&key) {
            Some(body) => Ok(body),
            None => Err(key),
        }
    };
    let key = match hit {
        Ok(body) => {
            CACHE_OUTCOME.with(|c| c.set(Some(true)));
            return Response::json(200, body.as_str());
        }
        Err(key) => key,
    };
    CACHE_OUTCOME.with(|c| c.set(Some(false)));
    // The dispatch span makes the root's direct children a sequential
    // chain (parse → cache_lookup → dispatch → serialize): compile/run
    // and per-cell spans nest under it, and the chain covers nearly the
    // whole request wall time in the stored trace.
    let dispatched = {
        let _s = telemetry::Span::enter("dispatch");
        dispatch(&value)
    };
    match dispatched {
        Ok(json) => {
            let _s = telemetry::Span::enter("serialize");
            let rendered = Arc::new(json.to_json());
            shared.state.responses.put(key, Arc::clone(&rendered));
            Response::json(200, rendered.as_str())
        }
        Err(ServiceError::BadRequest(m)) => Response::error(400, &m),
        Err(ServiceError::Internal(m)) => Response::error(500, &m),
    }
}

/// Test-only: `{"ms": n}` → hold the worker for `n` milliseconds. Lets
/// integration tests create deterministic queue pressure and in-flight
/// requests without depending on simulation timing.
fn test_sleep(body: &[u8]) -> Response {
    let parsed = std::str::from_utf8(body)
        .ok()
        .and_then(|t| JsonValue::parse(t).ok())
        .and_then(|v| v.get("ms").and_then(JsonValue::as_u64));
    match parsed {
        Some(ms) if ms <= 10_000 => {
            thread::sleep(Duration::from_millis(ms));
            Response::json(200, format!("{{\"slept_ms\":{ms}}}"))
        }
        _ => Response::error(400, "body must be {\"ms\": 0..=10000}"),
    }
}

#[cfg(test)]
mod tests {
    use super::access_log_line;

    #[test]
    fn access_log_line_is_stable_and_greppable() {
        let t = "0af7651916cd43dd8448eb211c80319c";
        assert_eq!(
            access_log_line("POST", "/v1/simulate", 200, 532, Some(true), t),
            "level=info event=access method=POST path=/v1/simulate status=200 us=532 \
             cache=hit trace_id=0af7651916cd43dd8448eb211c80319c"
        );
        assert_eq!(
            access_log_line("POST", "/v1/sweep", 200, 88_000, Some(false), t),
            "level=info event=access method=POST path=/v1/sweep status=200 us=88000 \
             cache=miss trace_id=0af7651916cd43dd8448eb211c80319c"
        );
        assert_eq!(
            access_log_line("GET", "/healthz", 405, 12, None, t),
            "level=info event=access method=GET path=/healthz status=405 us=12 \
             cache=- trace_id=0af7651916cd43dd8448eb211c80319c"
        );
    }
}
