//! SIGINT/SIGTERM → shutdown flag, SIGUSR1 → flight-recorder dump
//! flag, without external crates.
//!
//! The daemon needs exactly two bits from the OS: "a termination
//! signal arrived" and "an operator asked for a flight-recorder dump".
//! `libc` is already linked by `std`, so a two-line `extern`
//! declaration of `signal(2)` is enough — the handlers only store to
//! `static AtomicBool`s (async-signal-safe) and the serve loop polls
//! the flags. This is the sole unsafe code in the crate.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALED: AtomicBool = AtomicBool::new(false);
static USR1: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    const SIGUSR1: i32 = 10;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    const SIGUSR1: i32 = 30;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::SIGNALED.store(true, Ordering::SeqCst);
    }

    extern "C" fn on_usr1(_signum: i32) {
        super::USR1.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal(2)` with handlers that only perform an
        // atomic store — async-signal-safe per POSIX.
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        let usr1 = on_usr1 as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
            signal(SIGUSR1, usr1);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install() {
        // No signal delivery on this platform; shutdown is test-driven.
    }
}

/// Install the SIGINT/SIGTERM/SIGUSR1 handlers. Idempotent.
pub fn install() {
    sys::install();
}

/// Whether a termination signal has arrived since [`install`].
pub fn triggered() -> bool {
    SIGNALED.load(Ordering::SeqCst)
}

/// Consume a pending SIGUSR1 (flight-recorder dump request): returns
/// `true` at most once per delivered signal.
pub fn usr1_taken() -> bool {
    USR1.swap(false, Ordering::SeqCst)
}

/// Reset the flags (test isolation only).
#[doc(hidden)]
pub fn reset() {
    SIGNALED.store(false, Ordering::SeqCst);
    USR1.store(false, Ordering::SeqCst);
}
