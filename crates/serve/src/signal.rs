//! SIGINT/SIGTERM → shutdown flag, without external crates.
//!
//! The daemon needs exactly one bit from the OS: "a termination signal
//! arrived". `libc` is already linked by `std`, so a two-line `extern`
//! declaration of `signal(2)` is enough — the handler only stores to a
//! `static AtomicU64` (async-signal-safe) and the serve loop polls the
//! flag. This is the sole unsafe code in the crate.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::SIGNALED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal(2)` with a handler that only performs an
        // atomic store — async-signal-safe per POSIX.
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install() {
        // No signal delivery on this platform; shutdown is test-driven.
    }
}

/// Install the SIGINT/SIGTERM handlers. Idempotent.
pub fn install() {
    sys::install();
}

/// Whether a termination signal has arrived since [`install`].
pub fn triggered() -> bool {
    SIGNALED.load(Ordering::SeqCst)
}

/// Reset the flag (test isolation only).
#[doc(hidden)]
pub fn reset() {
    SIGNALED.store(false, Ordering::SeqCst);
}
