//! In-repo validator for the Prometheus text exposition format.
//!
//! `GET /metrics` is consumed by machines; a malformed exposition fails
//! silently at scrape time, far from the code that broke it. This
//! module lets unit tests, integration tests, and CI (`cesim
//! metrics-check`) assert that a whole scrape body is well-formed:
//!
//! * every sample's metric family declares `# HELP` and `# TYPE`
//!   **before** its first sample, and declares them exactly once;
//! * metric and label names match the Prometheus grammar, label values
//!   only use the legal escapes (`\\`, `\"`, `\n`);
//! * every sample value parses as a float (`+Inf`/`-Inf`/`NaN` legal);
//! * no `(name, label-set)` appears twice;
//! * histograms are internally consistent: `_bucket` counts are
//!   monotonically non-decreasing in `le` order, the `+Inf` bucket
//!   equals `_count`, and `_sum`/`_count` are present for every series;
//! * OpenMetrics exemplars (` # {trace_id="…"} value`) appear only on
//!   histogram `_bucket` samples, with a well-formed non-empty label
//!   set and exactly one float value.
//!
//! The checks intentionally cover only what this daemon emits (no
//! `# EOF`, no timestamps on samples or exemplars) — a sample with a
//! timestamp is rejected, because none of our renderers produce one.
//! Likewise ` # ` inside a label value would be misread as an exemplar
//! separator; our label values (endpoints, versions) never contain it.

use std::collections::{BTreeMap, HashSet};

/// Summary of a validated exposition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PromStats {
    /// Metric families declared with `# TYPE`.
    pub families: usize,
    /// Total samples (including `_bucket`/`_sum`/`_count`).
    pub samples: usize,
    /// Families of type `histogram`.
    pub histograms: usize,
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse `{a="x",b="y"}` (already stripped of braces) into sorted
/// `(name, value)` pairs, enforcing the escape rules.
fn parse_labels(body: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    loop {
        rest = rest.trim_start_matches(',');
        if rest.is_empty() {
            break;
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let name = &rest[..eq];
        if !valid_label_name(name) {
            return Err(format!("line {line_no}: bad label name {name:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("line {line_no}: label value must be quoted"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, e @ ('\\' | '"' | 'n'))) => {
                        value.push(if e == 'n' { '\n' } else { e });
                    }
                    other => {
                        return Err(format!(
                            "line {line_no}: illegal escape \\{}",
                            other.map(|(_, c)| c).unwrap_or(' ')
                        ))
                    }
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        labels.push((name.to_string(), value));
        rest = &rest[end + 1..];
        if !rest.is_empty() && !rest.starts_with(',') {
            return Err(format!("line {line_no}: expected ',' between labels"));
        }
    }
    labels.sort();
    Ok(labels)
}

fn parse_value(s: &str, line_no: usize) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s
            .parse::<f64>()
            .map_err(|_| format!("line {line_no}: bad sample value {s:?}")),
    }
}

/// Family base name for a sample: histograms emit `_bucket`/`_sum`/
/// `_count` under their declared family name.
fn base_name<'a>(sample: &'a str, histograms: &HashSet<String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = sample.strip_suffix(suffix) {
            if histograms.contains(stem) {
                return stem;
            }
        }
    }
    sample
}

/// One parsed histogram series (a label set minus `le`).
#[derive(Default)]
struct HistSeries {
    /// `(le, cumulative count)` in appearance order.
    buckets: Vec<(f64, f64)>,
    sum: Option<f64>,
    count: Option<f64>,
}

/// Validate a full text exposition. Returns summary counts on success,
/// the first problem found (with its line number) otherwise.
pub fn validate_prometheus(text: &str) -> Result<PromStats, String> {
    let mut helped: HashSet<String> = HashSet::new();
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut histograms: HashSet<String> = HashSet::new();
    let mut seen_sample_of: HashSet<String> = HashSet::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    let mut hist_series: BTreeMap<(String, String), HistSeries> = BTreeMap::new();
    let mut samples = 0usize;

    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (kind, rest) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {line_no}: bare comment marker"))?;
            match kind {
                "HELP" => {
                    let name = rest.split_whitespace().next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return Err(format!("line {line_no}: bad metric name in HELP"));
                    }
                    if !helped.insert(name.to_string()) {
                        return Err(format!("line {line_no}: duplicate HELP for {name}"));
                    }
                    if seen_sample_of.contains(name) {
                        return Err(format!("line {line_no}: HELP for {name} after its samples"));
                    }
                }
                "TYPE" => {
                    let mut parts = rest.split_whitespace();
                    let name = parts.next().unwrap_or("");
                    let ty = parts.next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return Err(format!("line {line_no}: bad metric name in TYPE"));
                    }
                    if !matches!(
                        ty,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {line_no}: unknown type {ty:?}"));
                    }
                    if !helped.contains(name) {
                        return Err(format!(
                            "line {line_no}: TYPE for {name} without HELP first"
                        ));
                    }
                    if typed.insert(name.to_string(), ty.to_string()).is_some() {
                        return Err(format!("line {line_no}: duplicate TYPE for {name}"));
                    }
                    if seen_sample_of.contains(name) {
                        return Err(format!("line {line_no}: TYPE for {name} after its samples"));
                    }
                    if ty == "histogram" {
                        histograms.insert(name.to_string());
                    }
                }
                _ => return Err(format!("line {line_no}: unknown comment {kind:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {line_no}: comment must start with \"# \""));
        }

        // Sample line: name[{labels}] value [ # {labels} exemplar-value]
        let (line, exemplar) = match line.split_once(" # ") {
            Some((main, ex)) => (main, Some(ex)),
            None => (line, None),
        };
        let (series, value_part) = match line.find('{') {
            Some(brace) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {line_no}: unmatched '{{'"))?;
                (
                    (&line[..brace], &line[brace + 1..close]),
                    line[close + 1..].trim(),
                )
            }
            None => {
                let sp = line
                    .find(' ')
                    .ok_or_else(|| format!("line {line_no}: sample without value"))?;
                ((&line[..sp], ""), line[sp + 1..].trim())
            }
        };
        let (name, label_body) = series;
        if !valid_metric_name(name) {
            return Err(format!("line {line_no}: bad metric name {name:?}"));
        }
        if value_part.split_whitespace().count() != 1 {
            return Err(format!(
                "line {line_no}: expected exactly one value (timestamps are not emitted here)"
            ));
        }
        let value = parse_value(value_part, line_no)?;
        let labels = parse_labels(label_body, line_no)?;

        let base = base_name(name, &histograms);
        if !helped.contains(base) || !typed.contains_key(base) {
            return Err(format!(
                "line {line_no}: sample {name} without prior HELP+TYPE for {base}"
            ));
        }
        seen_sample_of.insert(base.to_string());
        samples += 1;

        if let Some(ex) = exemplar {
            if !(name.ends_with("_bucket") && histograms.contains(base)) {
                return Err(format!(
                    "line {line_no}: exemplar on non-bucket sample {name}"
                ));
            }
            let ex = ex.trim();
            let body = ex
                .strip_prefix('{')
                .ok_or_else(|| format!("line {line_no}: exemplar must start with a label set"))?;
            let close = body
                .find('}')
                .ok_or_else(|| format!("line {line_no}: unterminated exemplar label set"))?;
            if parse_labels(&body[..close], line_no)?.is_empty() {
                return Err(format!("line {line_no}: exemplar label set is empty"));
            }
            let ex_value = body[close + 1..].trim();
            if ex_value.split_whitespace().count() != 1 {
                return Err(format!(
                    "line {line_no}: exemplar must carry exactly one value \
                     (exemplar timestamps are not emitted here)"
                ));
            }
            parse_value(ex_value, line_no)?;
        }

        let series_key = format!("{name}{{{}}}", {
            let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
            parts.join(",")
        });
        if !seen_series.insert(series_key.clone()) {
            return Err(format!("line {line_no}: duplicate series {series_key}"));
        }

        if histograms.contains(base) {
            let non_le: Vec<String> = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v:?}"))
                .collect();
            let series = hist_series
                .entry((base.to_string(), non_le.join(",")))
                .or_default();
            if name.ends_with("_bucket") {
                let le = labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| format!("line {line_no}: _bucket without le label"))?;
                series.buckets.push((parse_value(&le.1, line_no)?, value));
            } else if name.ends_with("_sum") {
                series.sum = Some(value);
            } else if name.ends_with("_count") {
                series.count = Some(value);
            } else {
                return Err(format!(
                    "line {line_no}: bare sample {name} for histogram {base}"
                ));
            }
        }
    }

    for ((family, labels), series) in &hist_series {
        let what = if labels.is_empty() {
            family.clone()
        } else {
            format!("{family}{{{labels}}}")
        };
        let count = series
            .count
            .ok_or_else(|| format!("histogram {what}: missing _count"))?;
        series
            .sum
            .ok_or_else(|| format!("histogram {what}: missing _sum"))?;
        if series.buckets.is_empty() {
            return Err(format!("histogram {what}: no _bucket samples"));
        }
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_n = 0.0f64;
        for &(le, n) in &series.buckets {
            if le <= prev_le {
                return Err(format!("histogram {what}: le buckets out of order"));
            }
            if n < prev_n {
                return Err(format!(
                    "histogram {what}: bucket counts not monotone at le={le}"
                ));
            }
            prev_le = le;
            prev_n = n;
        }
        let &(last_le, last_n) = series.buckets.last().expect("non-empty checked above");
        if last_le != f64::INFINITY {
            return Err(format!("histogram {what}: missing +Inf bucket"));
        }
        if last_n != count {
            return Err(format!(
                "histogram {what}: +Inf bucket {last_n} != _count {count}"
            ));
        }
    }

    Ok(PromStats {
        families: typed.len(),
        samples,
        histograms: histograms.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(text: &str) -> PromStats {
        validate_prometheus(text).expect("exposition must validate")
    }

    fn err(text: &str) -> String {
        validate_prometheus(text).expect_err("exposition must be rejected")
    }

    #[test]
    fn accepts_counters_gauges_and_histograms() {
        let text = "\
# HELP demo_total Things.\n\
# TYPE demo_total counter\n\
demo_total{kind=\"a\"} 3\n\
demo_total{kind=\"b\"} 0\n\
# HELP demo_gauge A gauge.\n\
# TYPE demo_gauge gauge\n\
demo_gauge 1.5\n\
# HELP demo_seconds Latency.\n\
# TYPE demo_seconds histogram\n\
demo_seconds_bucket{le=\"0.1\"} 1\n\
demo_seconds_bucket{le=\"1\"} 2\n\
demo_seconds_bucket{le=\"+Inf\"} 2\n\
demo_seconds_sum 0.7\n\
demo_seconds_count 2\n";
        let stats = ok(text);
        assert_eq!(stats.families, 3);
        assert_eq!(stats.histograms, 1);
        assert_eq!(stats.samples, 8);
    }

    #[test]
    fn rejects_sample_before_help_and_type() {
        assert!(err("loose_metric 1\n").contains("without prior HELP+TYPE"));
        let text = "# HELP m X.\nm 1\n";
        assert!(
            err(text).contains("without prior HELP+TYPE"),
            "HELP alone is not enough"
        );
    }

    #[test]
    fn rejects_malformed_names_values_and_escapes() {
        assert!(err("# HELP 9bad X.\n").contains("bad metric name"));
        let bad_value = "# HELP m X.\n# TYPE m gauge\nm pizza\n";
        assert!(err(bad_value).contains("bad sample value"));
        let bad_escape = "# HELP m X.\n# TYPE m counter\nm{l=\"a\\t\"} 1\n";
        assert!(err(bad_escape).contains("illegal escape"));
        let legal_escape = "# HELP m X.\n# TYPE m counter\nm{l=\"a\\n\\\"b\\\\\"} 1\n";
        ok(legal_escape);
    }

    #[test]
    fn rejects_duplicate_series() {
        let text = "# HELP m X.\n# TYPE m counter\nm{a=\"1\"} 1\nm{a=\"1\"} 2\n";
        assert!(err(text).contains("duplicate series"));
    }

    #[test]
    fn rejects_broken_histograms() {
        // Non-monotone buckets.
        let text = "\
# HELP h H.\n# TYPE h histogram\n\
h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(err(text).contains("not monotone"));
        // +Inf bucket disagrees with _count.
        let text = "\
# HELP h H.\n# TYPE h histogram\n\
h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n";
        assert!(err(text).contains("!= _count"));
        // Missing +Inf.
        let text = "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n";
        assert!(err(text).contains("missing +Inf"));
        // Missing _sum.
        let text = "# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n";
        assert!(err(text).contains("missing _sum"));
    }

    #[test]
    fn validates_bucket_exemplars() {
        let good = "\
# HELP h H.\n# TYPE h histogram\n\
h_bucket{le=\"0.1\"} 1 # {trace_id=\"0af765\"} 0.03\n\
h_bucket{le=\"+Inf\"} 1\nh_sum 0.03\nh_count 1\n";
        ok(good);
        let on_counter = "# HELP m X.\n# TYPE m counter\nm 1 # {trace_id=\"a\"} 1\n";
        assert!(err(on_counter).contains("non-bucket"));
        let with_ts = "\
# HELP h H.\n# TYPE h histogram\n\
h_bucket{le=\"+Inf\"} 1 # {trace_id=\"a\"} 0.03 1700000000\nh_sum 0.03\nh_count 1\n";
        assert!(err(with_ts).contains("exactly one value"));
        let empty_labels = "\
# HELP h H.\n# TYPE h histogram\n\
h_bucket{le=\"+Inf\"} 1 # {} 0.03\nh_sum 0.03\nh_count 1\n";
        assert!(err(empty_labels).contains("label set is empty"));
        let bad_labels = "\
# HELP h H.\n# TYPE h histogram\n\
h_bucket{le=\"+Inf\"} 1 # {trace_id=unquoted} 0.03\nh_sum 0.03\nh_count 1\n";
        assert!(err(bad_labels).contains("must be quoted"));
    }

    #[test]
    fn live_render_passes_validation() {
        use crate::metrics::Metrics;
        use cesim_core::service::ServiceState;
        use std::time::Duration;
        let m = Metrics::new();
        m.set_workers(2);
        let state = ServiceState::new(2, 2);
        m.observe("/v1/simulate", 200, Duration::from_millis(3));
        m.observe("/metrics", 200, Duration::from_micros(90));
        m.observe_traced(
            "/v1/sweep",
            200,
            Duration::from_millis(40),
            Some("0af7651916cd43dd8448eb211c80319c"),
        );
        m.shed();
        let text = m.render(&state);
        assert!(
            text.contains("# {trace_id="),
            "exemplar must render: {text}"
        );
        let stats = ok(&text);
        assert!(
            stats.families >= 10,
            "expected a rich exposition, got {stats:?}"
        );
        assert!(stats.histograms >= 1);
    }
}
