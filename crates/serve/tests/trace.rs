//! End-to-end tests of per-request distributed tracing: `traceparent`
//! adoption and echo, id uniqueness under concurrency, the tail-sampled
//! trace store behind `/v1/debug/traces`, span-tree wall-time coverage,
//! and byte-identical simulation bodies with tracing in the path.

use cesim_json::JsonValue;
use cesim_serve::client;
use cesim_serve::{ServeConfig, Server};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);

const SWEEP_BODY: &str = r#"{"figure":"fig4","apps":["LULESH"],"nodes":16,"steps_scale":0.05}"#;

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    }
}

/// The 32-hex trace id out of a `00-<trace>-<span>-01` response header.
fn trace_id_of(resp: &client::ClientResponse) -> String {
    let tp = resp
        .header("traceparent")
        .expect("every response carries a traceparent header");
    let mut parts = tp.split('-');
    assert_eq!(parts.next(), Some("00"), "version-00 traceparent: {tp}");
    let trace = parts.next().expect("trace-id field").to_string();
    assert_eq!(trace.len(), 32, "32-hex trace id: {tp}");
    let span = parts.next().expect("parent-id field");
    assert_eq!(span.len(), 16, "16-hex span id: {tp}");
    assert_eq!(parts.next(), Some("01"), "sampled flag: {tp}");
    trace
}

fn get_trace(addr: SocketAddr, id: &str) -> client::ClientResponse {
    client::get(addr, &format!("/v1/debug/traces/{id}"), TIMEOUT).unwrap()
}

#[test]
fn traceparent_roundtrips_and_trace_is_retrievable() {
    let server = Server::bind(test_config()).unwrap();
    let addr = server.addr();
    let sent = "0af7651916cd43dd8448eb211c80319c";
    let resp = client::request_with_headers(
        addr,
        "POST",
        "/v1/sweep",
        Some(SWEEP_BODY),
        TIMEOUT,
        &[("traceparent", &format!("00-{sent}-b7ad6b7169203331-01"))],
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(trace_id_of(&resp), sent, "adopted id must be echoed back");

    // The full span tree is retrievable by that id.
    let trace = get_trace(addr, sent);
    assert_eq!(trace.status, 200, "{}", trace.body);
    let v = JsonValue::parse(&trace.body).expect("trace JSON parses");
    assert_eq!(v.get("trace_id").and_then(JsonValue::as_str), Some(sent));
    assert_eq!(v.get("status").and_then(JsonValue::as_u64), Some(200));
    assert_eq!(
        v.get("remote_parent").and_then(JsonValue::as_str),
        Some("b7ad6b7169203331"),
        "adopted traces remember the caller's span"
    );
    let root = v.get("root").expect("root span");
    assert_eq!(
        root.get("name").and_then(JsonValue::as_str),
        Some("POST /v1/sweep")
    );
    let children = root
        .get("children")
        .and_then(JsonValue::as_array)
        .expect("root children");
    let names: Vec<&str> = children
        .iter()
        .filter_map(|c| c.get("name").and_then(JsonValue::as_str))
        .collect();
    for expected in ["parse", "cache_lookup", "dispatch", "serialize"] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }

    // The Chrome rendering of the same trace is well-formed JSON with
    // one slice per span.
    let chrome = client::get(addr, &format!("/v1/debug/traces/{sent}/chrome"), TIMEOUT).unwrap();
    assert_eq!(chrome.status, 200, "{}", chrome.body);
    let cv = JsonValue::parse(&chrome.body).expect("chrome JSON parses");
    let events = cv
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents");
    assert!(
        events.iter().any(|e| {
            e.get("ph").and_then(JsonValue::as_str) == Some("X")
                && e.get("name").and_then(JsonValue::as_str) == Some("dispatch")
        }),
        "{}",
        chrome.body
    );

    // The summary listing knows about the trace too.
    let summary = client::get(addr, "/v1/debug/traces", TIMEOUT).unwrap();
    assert_eq!(summary.status, 200);
    assert!(summary.body.contains(sent), "{}", summary.body);

    // Lookup edge cases: bad ids are 400, unknown ids 404, and the
    // collection only answers GET.
    assert_eq!(get_trace(addr, "not-hex").status, 400);
    assert_eq!(
        get_trace(addr, "ffffffffffffffffffffffffffffffff").status,
        404
    );
    assert_eq!(
        client::post(addr, "/v1/debug/traces", "{}", TIMEOUT)
            .unwrap()
            .status,
        405
    );
    server.shutdown();
}

#[test]
fn malformed_traceparent_falls_back_to_fresh_ids_without_erroring() {
    let server = Server::bind(test_config()).unwrap();
    let addr = server.addr();
    for bad in [
        "garbage",
        "00-00000000000000000000000000000000-b7ad6b7169203331-01",
        "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
        "00-short-b7ad6b7169203331-01",
    ] {
        let resp = client::request_with_headers(
            addr,
            "GET",
            "/healthz",
            None,
            TIMEOUT,
            &[("traceparent", bad)],
        )
        .unwrap();
        assert_eq!(resp.status, 200, "malformed traceparent must not 4xx");
        let fresh = trace_id_of(&resp);
        assert!(
            !bad.contains(&fresh),
            "malformed header {bad:?} must yield a fresh id, got {fresh}"
        );
    }
    server.shutdown();
}

#[test]
fn concurrent_requests_get_distinct_trace_ids() {
    let server = Server::bind(test_config()).unwrap();
    let addr = server.addr();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                (0..5)
                    .map(|_| trace_id_of(&client::get(addr, "/healthz", TIMEOUT).unwrap()))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut seen = std::collections::HashSet::new();
    for h in handles {
        for id in h.join().unwrap() {
            assert!(seen.insert(id.clone()), "duplicate trace id {id}");
        }
    }
    assert_eq!(seen.len(), 40);
    server.shutdown();
}

#[test]
fn span_tree_covers_request_wall_time() {
    let server = Server::bind(test_config()).unwrap();
    let addr = server.addr();
    let t0 = Instant::now();
    let resp = client::post(addr, "/v1/sweep", SWEEP_BODY, TIMEOUT).unwrap();
    let client_wall_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(resp.status, 200, "{}", resp.body);
    let id = trace_id_of(&resp);

    let trace = get_trace(addr, &id);
    assert_eq!(trace.status, 200, "{}", trace.body);
    let v = JsonValue::parse(&trace.body).expect("trace JSON parses");
    let root = v.get("root").expect("root span");
    let root_dur = root.get("dur_ns").and_then(JsonValue::as_u64).unwrap();

    // Union the root's direct children (the parse → cache_lookup →
    // dispatch → serialize chain) and compare against the wall time the
    // client actually measured.
    let mut ivals: Vec<(u64, u64)> = root
        .get("children")
        .and_then(JsonValue::as_array)
        .expect("root children")
        .iter()
        .map(|c| {
            let s = c.get("start_ns").and_then(JsonValue::as_u64).unwrap();
            let d = c.get("dur_ns").and_then(JsonValue::as_u64).unwrap();
            (s, s + d)
        })
        .collect();
    ivals.sort_unstable();
    let (mut covered, mut end) = (0u64, 0u64);
    for (s, e) in ivals {
        let s = s.max(end);
        if e > s {
            covered += e - s;
            end = e.max(end);
        }
    }
    let of_root = covered as f64 / root_dur as f64;
    let of_client = covered as f64 / client_wall_ns as f64;
    assert!(
        of_root >= 0.95,
        "span tree covers {:.1}% of the root ({covered} of {root_dur} ns)",
        of_root * 100.0
    );
    assert!(
        of_client >= 0.95,
        "span tree covers {:.1}% of client-measured wall time \
         ({covered} of {client_wall_ns} ns)",
        of_client * 100.0
    );
    server.shutdown();
}

#[test]
fn error_traces_survive_recency_churn() {
    let server = Server::bind(test_config()).unwrap();
    let addr = server.addr();
    let err = client::post(addr, "/v1/simulate", "{not json", TIMEOUT).unwrap();
    assert_eq!(err.status, 400);
    let err_id = trace_id_of(&err);

    // Churn the recency ring well past its capacity with healthy traffic.
    for _ in 0..300 {
        assert_eq!(client::get(addr, "/healthz", TIMEOUT).unwrap().status, 200);
    }

    let trace = get_trace(addr, &err_id);
    assert_eq!(trace.status, 200, "error trace must survive churn");
    let v = JsonValue::parse(&trace.body).expect("trace JSON parses");
    assert_eq!(v.get("status").and_then(JsonValue::as_u64), Some(400));
    server.shutdown();
}

#[test]
fn sweep_bodies_are_byte_identical_with_and_without_traceparent() {
    // Tracing must never perturb simulation results: the same sweep on
    // two fresh servers — one request traced from outside, one not —
    // returns byte-identical bodies.
    let server_a = Server::bind(test_config()).unwrap();
    let plain = client::post(server_a.addr(), "/v1/sweep", SWEEP_BODY, TIMEOUT).unwrap();
    assert_eq!(plain.status, 200, "{}", plain.body);
    server_a.shutdown();

    let server_b = Server::bind(test_config()).unwrap();
    let traced = client::request_with_headers(
        server_b.addr(),
        "POST",
        "/v1/sweep",
        Some(SWEEP_BODY),
        TIMEOUT,
        &[(
            "traceparent",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        )],
    )
    .unwrap();
    assert_eq!(traced.status, 200, "{}", traced.body);
    server_b.shutdown();

    assert_eq!(
        plain.body, traced.body,
        "tracing must not change simulation bytes"
    );
}
