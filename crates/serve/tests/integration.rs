//! End-to-end tests of the daemon over real sockets on an ephemeral
//! 127.0.0.1 port: determinism under concurrency, response-cache
//! behavior, queue-full shedding, malformed-input robustness, panic
//! isolation, and graceful shutdown.

use cesim_serve::client;
use cesim_serve::{ServeConfig, Server};
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        enable_test_endpoints: true,
        ..ServeConfig::default()
    }
}

fn scrape_counter(addr: SocketAddr, name: &str) -> u64 {
    let metrics = client::get(addr, "/metrics", TIMEOUT).unwrap();
    assert_eq!(metrics.status, 200);
    metrics
        .body
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from scrape"))
}

#[test]
fn healthz_and_unknown_routes() {
    let server = Server::bind(test_config()).unwrap();
    let addr = server.addr();
    let ok = client::get(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(ok.status, 200);
    assert_eq!(ok.body, "{\"status\":\"ok\"}");
    assert_eq!(client::get(addr, "/nope", TIMEOUT).unwrap().status, 404);
    assert_eq!(
        client::post(addr, "/healthz", "{}", TIMEOUT)
            .unwrap()
            .status,
        405
    );
    assert_eq!(
        client::get(addr, "/v1/simulate", TIMEOUT).unwrap().status,
        405
    );
    server.shutdown();
}

#[test]
fn concurrent_identical_requests_are_byte_identical_and_cached() {
    let server = Server::bind(test_config()).unwrap();
    let addr = server.addr();
    let body = r#"{"app":"miniFE","nodes":8,"mode":"fw","mtbce":"1s","reps":2,"steps":3}"#;

    // (a) 8 concurrent identical POSTs → byte-identical bodies.
    let bodies: Vec<String> = (0..8)
        .map(|_| {
            thread::spawn(move || {
                let r = client::post(addr, "/v1/simulate", body, TIMEOUT).unwrap();
                assert_eq!(r.status, 200, "{}", r.body);
                r.body
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    for b in &bodies[1..] {
        assert_eq!(b, &bodies[0], "concurrent identical requests must agree");
    }
    assert!(bodies[0].contains("\"app\":\"miniFE\""));
    assert!(bodies[0].contains("\"slowdown_pct\":"));

    // (b) a field-order permutation of the same request is a
    // response-cache hit (canonicalized key), per /metrics.
    let hits_before = scrape_counter(addr, "cesim_response_cache_hits_total");
    let permuted = r#"{"steps":3,"reps":2,"mtbce":"1s","mode":"fw","nodes":8,"app":"miniFE"}"#;
    let again = client::post(addr, "/v1/simulate", permuted, TIMEOUT).unwrap();
    assert_eq!(again.status, 200);
    assert_eq!(again.body, bodies[0], "cache replays the exact bytes");
    let hits_after = scrape_counter(addr, "cesim_response_cache_hits_total");
    assert!(
        hits_after > hits_before,
        "permuted request must hit the response cache ({hits_before} → {hits_after})"
    );
    // The schedule cache served the sequential follow-up without a
    // recompile. (Concurrent first arrivals may each have compiled —
    // the cache races benignly, compiling outside the lock — so the
    // miss count is bounded by the burst size, not exactly 1.)
    let misses = scrape_counter(addr, "cesim_schedule_cache_misses_total");
    assert!((1..=8).contains(&misses), "misses = {misses}");
    server.shutdown();
}

#[test]
fn sustains_32_concurrent_in_flight_requests() {
    let server = Server::bind(ServeConfig {
        workers: 32,
        queue_depth: 64,
        ..test_config()
    })
    .unwrap();
    let addr = server.addr();
    // 32 requests that each hold a worker for 300 ms. With 32 workers
    // they must all be in flight at once: total wall time far below the
    // 9.6 s serial bound.
    let start = Instant::now();
    let handles: Vec<_> = (0..32)
        .map(|_| {
            thread::spawn(move || {
                client::post(addr, "/v1/test/sleep", r#"{"ms":300}"#, TIMEOUT).unwrap()
            })
        })
        .collect();
    for h in handles {
        let r = h.join().unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{\"slept_ms\":300}");
    }
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "32 sleeps of 300ms took {elapsed:?}; not concurrent"
    );
    server.shutdown();
}

#[test]
fn queue_overflow_sheds_429_with_retry_after() {
    // One worker, queue depth one: occupy the worker, fill the queue,
    // then watch further arrivals bounce.
    let server = Server::bind(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..test_config()
    })
    .unwrap();
    let addr = server.addr();
    let hold = thread::spawn(move || {
        client::post(addr, "/v1/test/sleep", r#"{"ms":1500}"#, TIMEOUT).unwrap()
    });
    // Wait until the worker has picked up the hold request.
    thread::sleep(Duration::from_millis(300));
    let fill = thread::spawn(move || {
        client::post(addr, "/v1/test/sleep", r#"{"ms":10}"#, TIMEOUT).unwrap()
    });
    thread::sleep(Duration::from_millis(300));
    // Queue now holds `fill`; this one must be shed.
    let shed = client::post(addr, "/v1/test/sleep", r#"{"ms":10}"#, TIMEOUT).unwrap();
    assert_eq!(shed.status, 429);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(shed.body.contains("queue full"));
    // The held and queued requests still complete normally.
    assert_eq!(hold.join().unwrap().status, 200);
    assert_eq!(fill.join().unwrap().status, 200);
    let shed_total = scrape_counter(addr, "cesim_shed_total");
    assert!(shed_total >= 1, "shed counter must record the 429");
    server.shutdown();
}

#[test]
fn malformed_inputs_get_4xx_without_killing_workers() {
    let server = Server::bind(ServeConfig {
        workers: 1,
        max_body_bytes: 512,
        ..test_config()
    })
    .unwrap();
    let addr = server.addr();

    // Invalid JSON → 400.
    let r = client::post(addr, "/v1/simulate", "{not json", TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("invalid JSON"));
    // Valid JSON, bad request → 400 naming the field.
    let r = client::post(addr, "/v1/simulate", r#"{"app":"nope"}"#, TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("unknown app"));
    // Unknown field → 400 (strict mapping).
    let r = client::post(addr, "/v1/simulate", r#"{"app":"HPCG","bogus":1}"#, TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    // Oversized body → 413.
    let big = format!(r#"{{"app":"{}"}}"#, "x".repeat(600));
    let r = client::post(addr, "/v1/simulate", &big, TIMEOUT).unwrap();
    assert_eq!(r.status, 413);
    // Truncated request (Content-Length larger than what arrives):
    // the daemon answers 408 once its read times out, so use a server
    // with a short read timeout to keep the test fast.
    // Unknown method on a known path → 405.
    let r = client::request(addr, "BREW", "/v1/simulate", Some("{}"), TIMEOUT).unwrap();
    assert_eq!(r.status, 405);
    // A panicking handler → 500, worker survives.
    let r = client::post(addr, "/v1/test/panic", "{}", TIMEOUT).unwrap();
    assert_eq!(r.status, 500);
    assert!(r.body.contains("panicked"));
    // The single worker is still alive and serving.
    let ok = client::get(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(ok.status, 200);
    assert_eq!(scrape_counter(addr, "cesim_worker_panics_total"), 1);
    server.shutdown();
}

#[test]
fn truncated_request_times_out_as_408() {
    let server = Server::bind(ServeConfig {
        read_timeout: Duration::from_millis(300),
        ..test_config()
    })
    .unwrap();
    let addr = server.addr();
    // Open a raw socket, declare a body, send half of it, keep the
    // connection open: the server's read timeout must fire and answer
    // 408 instead of wedging the worker.
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(b"POST /v1/simulate HTTP/1.1\r\ncontent-length: 100\r\n\r\n{\"app\":")
        .unwrap();
    s.set_read_timeout(Some(TIMEOUT)).unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 408 "), "got: {text}");
    // Worker survived.
    assert_eq!(client::get(addr, "/healthz", TIMEOUT).unwrap().status, 200);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let server = Server::bind(ServeConfig {
        workers: 2,
        ..test_config()
    })
    .unwrap();
    let addr = server.addr();
    // Put a slow request in flight, then shut down while it runs.
    let in_flight = thread::spawn(move || {
        client::post(addr, "/v1/test/sleep", r#"{"ms":800}"#, TIMEOUT).unwrap()
    });
    thread::sleep(Duration::from_millis(200));
    let shutdown_started = Instant::now();
    server.shutdown();
    let drained_after = shutdown_started.elapsed();
    // The in-flight request completed with a real response...
    let r = in_flight.join().unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.body, "{\"slept_ms\":800}");
    // ...and shutdown blocked until it drained (~600ms remained).
    assert!(
        drained_after >= Duration::from_millis(400),
        "shutdown returned after {drained_after:?}, before the in-flight request finished"
    );
    // The listener is closed: new connections are refused or reset.
    assert!(
        client::get(addr, "/healthz", Duration::from_millis(500)).is_err(),
        "daemon must not accept connections after shutdown"
    );
}

#[test]
fn sweep_endpoint_is_deterministic() {
    let server = Server::bind(test_config()).unwrap();
    let addr = server.addr();
    let body = r#"{"figure":"fig4","apps":["LULESH"],"nodes":16,"steps_scale":0.05}"#;
    let a = client::post(addr, "/v1/sweep", body, TIMEOUT).unwrap();
    assert_eq!(a.status, 200, "{}", a.body);
    assert!(a.body.contains("\"figure\":\"fig4\""));
    assert!(a.body.contains("\"cells\":["));
    server.shutdown();

    // A fresh server process produces the same bytes (no wall-clock or
    // identity data in bodies; seeding is positional).
    let server2 = Server::bind(test_config()).unwrap();
    let b = client::post(server2.addr(), "/v1/sweep", body, TIMEOUT).unwrap();
    assert_eq!(b.status, 200);
    assert_eq!(a.body, b.body, "sweep bodies identical across servers");
    server2.shutdown();

    let server3 = Server::bind(test_config()).unwrap();
    let bad = client::post(server3.addr(), "/v1/sweep", r#"{"figure":"fig9"}"#, TIMEOUT).unwrap();
    assert_eq!(bad.status, 400);
    server3.shutdown();
}

#[test]
fn simulate_identical_across_servers_and_worker_counts() {
    // Byte-identity must hold across processes and thread counts, not
    // just within one warm cache.
    let body = r#"{"app":"LULESH","nodes":27,"mode":"sw","mtbce":"500ms","reps":2,"steps":4}"#;
    let mut seen: Option<String> = None;
    for workers in [1, 8] {
        let server = Server::bind(ServeConfig {
            workers,
            ..test_config()
        })
        .unwrap();
        let r = client::post(server.addr(), "/v1/simulate", body, TIMEOUT).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        if let Some(prev) = &seen {
            assert_eq!(&r.body, prev, "body differs at workers={workers}");
        }
        seen = Some(r.body);
        server.shutdown();
    }
}

#[test]
fn metrics_shape_covers_endpoints_and_caches() {
    let server = Server::bind(test_config()).unwrap();
    let addr = server.addr();
    let _ = client::get(addr, "/healthz", TIMEOUT).unwrap();
    let _ = client::post(
        addr,
        "/v1/simulate",
        r#"{"app":"HPCG","nodes":8,"reps":1,"steps":2}"#,
        TIMEOUT,
    )
    .unwrap();
    let scrape = client::get(addr, "/metrics", TIMEOUT).unwrap();
    assert_eq!(scrape.status, 200);
    for needle in [
        "cesim_requests_total{endpoint=\"/healthz\",code=\"200\"} 1",
        "cesim_requests_total{endpoint=\"/v1/simulate\",code=\"200\"} 1",
        "cesim_request_duration_seconds_bucket{endpoint=\"/v1/simulate\",le=\"+Inf\"} 1",
        "cesim_request_duration_seconds_count{endpoint=\"/v1/simulate\"} 1",
        "cesim_queue_depth",
        "cesim_shed_total 0",
        "cesim_worker_panics_total 0",
        "cesim_schedule_cache_misses_total 1",
        "cesim_response_cache_misses_total 1",
    ] {
        assert!(
            scrape.body.contains(needle),
            "missing {needle:?} in:\n{}",
            scrape.body
        );
    }
    server.shutdown();
}

#[test]
fn scrape_is_valid_prometheus_and_flightrec_dumps() {
    // The full observability loop over real sockets: a sharded simulate
    // populates phase spans and shard counters, the whole scrape body
    // passes the in-repo exposition validator, and the flight recorder
    // serves recent structured events as JSON.
    let server = Server::bind(test_config()).unwrap();
    let addr = server.addr();
    let resp = client::post(
        addr,
        "/v1/simulate",
        r#"{"app":"HPCG","nodes":8,"reps":1,"steps":2,"shards":2}"#,
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(resp.status, 200);

    let scrape = client::get(addr, "/metrics", TIMEOUT).unwrap();
    assert_eq!(scrape.status, 200);
    let stats = cesim_serve::promcheck::validate_prometheus(&scrape.body)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{}", scrape.body));
    assert!(
        stats.histograms >= 2,
        "latency + phase histograms: {stats:?}"
    );
    for needle in [
        "cesim_build_info{version=",
        "cesim_uptime_seconds ",
        "cesim_workers 4",
        "cesim_shard_runs_total",
        "cesim_phase_seconds_bucket{phase=\"parse\"",
        "cesim_phase_seconds_bucket{phase=\"run\"",
    ] {
        assert!(
            scrape.body.contains(needle),
            "missing {needle:?} in:\n{}",
            scrape.body
        );
    }

    let dump = client::get(addr, "/v1/debug/flightrec", TIMEOUT).unwrap();
    assert_eq!(dump.status, 200);
    let v = cesim_json::JsonValue::parse(&dump.body).expect("flightrec dump is valid JSON");
    assert!(
        v.get("total")
            .and_then(cesim_json::JsonValue::as_u64)
            .unwrap()
            > 0
    );
    let events = v
        .get("events")
        .and_then(cesim_json::JsonValue::as_array)
        .unwrap();
    assert!(!events.is_empty(), "flight ring must hold recent events");
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("kind").and_then(cesim_json::JsonValue::as_str))
        .collect();
    assert!(
        kinds.contains(&"span_begin") && kinds.contains(&"span_end"),
        "expected span events in flight dump, got kinds {kinds:?}"
    );
    assert_eq!(
        client::post(addr, "/v1/debug/flightrec", "{}", TIMEOUT)
            .unwrap()
            .status,
        405
    );
    server.shutdown();
}
