//! # cesim-noise
//!
//! Correctable-error (CE) noise injection and the simulated measurement
//! substrate of §IV-A of the paper.
//!
//! * [`ce`] — the heart of the study: [`ce::CeNoise`] models per-node CE
//!   arrivals as independent Poisson processes (exponential inter-arrival
//!   times with mean `MTBCE_node`) and stretches every CPU interval the
//!   engine executes by one detour of the logging mode's per-event cost.
//!   Scope can be all nodes (Figs. 4–7) or a single node (Fig. 3).
//! * [`selfish`] — a model of the `selfish` system-noise microbenchmark:
//!   it samples a node's activity and records every CPU *detour* longer
//!   than a threshold (the paper uses 150 ns), producing the bar-trace
//!   representation of Fig. 2.
//! * [`einj`] — the APEI EINJ error-injection workflow (configure via
//!   sysfs writes, then trigger), including the dry-run mode the paper
//!   uses to show that configuring injection is itself noise-free.
//! * [`signature`] — composes the above to regenerate the four noise
//!   signatures of Fig. 2: native, dry-run, software/CMCI and
//!   firmware/EMCA.
//! * [`trace`] — replays any recorded [`DetourTrace`] (e.g. a Fig. 2
//!   signature) as simulation noise, closing the measure→inject loop.
//! * [`bursty`] — a two-state Markov-modulated extension of the CE
//!   process (CE "avalanches"), plus noise-model composition.
//! * [`hetero`] — per-rank heterogeneous CE rates and detour costs, the
//!   substrate of the fleet engine (`cesim-fleet`): each rank carries the
//!   MTBCE and logging-mode cost of the cluster node it was placed on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bursty;
pub mod ce;
pub mod einj;
pub mod hetero;
pub mod selfish;
pub mod signature;
pub mod trace;

pub use bursty::{BurstSpec, BurstyCeNoise, ComposedNoise};
pub use ce::{CeNoise, Scope};
pub use hetero::{HeteroCeNoise, RankCeParams};
pub use selfish::{Detour, DetourTrace};
pub use signature::SignatureKind;
pub use trace::TraceNoise;
