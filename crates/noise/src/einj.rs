//! The APEI EINJ error-injection workflow (§III-A of the paper).
//!
//! On a real machine the operator writes the error type and target address
//! into virtual files under `/sys/kernel/debug/apei/einj` and then writes
//! to `error_inject` to trigger. The paper's "dry run" experiment performs
//! the configuration writes on the same cadence as real injections but
//! never triggers, demonstrating that the injection interface itself adds
//! no observable noise (Fig. 2b).
//!
//! [`EinjInterface`] reproduces that state machine: configuration steps
//! cost a sub-threshold sysfs write apiece; `trigger` validates the
//! configured state and records an injection.

use cesim_model::{Span, Time};
use std::error::Error;
use std::fmt;

/// Error types the EINJ table on the paper's test platform supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorType {
    /// A correctable DRAM error.
    MemoryCorrectable,
    /// An uncorrectable DRAM error (not used by the CE study, but part of
    /// the platform's supported set).
    MemoryUncorrectable,
}

/// A completed injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Injection {
    /// When the injection was triggered.
    pub at: Time,
    /// What was injected.
    pub error_type: ErrorType,
    /// Target physical address.
    pub address: u64,
}

/// Misuse of the injection interface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EinjError {
    /// `trigger` before `set_error_type`.
    NoErrorTypeConfigured,
    /// `trigger` before `set_address`.
    NoAddressConfigured,
}

impl fmt::Display for EinjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EinjError::NoErrorTypeConfigured => write!(f, "EINJ: no error type configured"),
            EinjError::NoAddressConfigured => write!(f, "EINJ: no target address configured"),
        }
    }
}

impl Error for EinjError {}

/// CPU cost of one sysfs write — below the 150 ns `selfish` threshold,
/// which is why the dry-run signature matches the native one.
pub const SYSFS_WRITE_COST: Span = Span::from_ns(120);

/// The EINJ sysfs state machine.
#[derive(Clone, Debug, Default)]
pub struct EinjInterface {
    error_type: Option<ErrorType>,
    address: Option<u64>,
    injections: Vec<Injection>,
    config_writes: u64,
}

impl EinjInterface {
    /// A fresh, unconfigured interface.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the error type file. Returns the CPU cost of the write.
    pub fn set_error_type(&mut self, t: ErrorType) -> Span {
        self.error_type = Some(t);
        self.config_writes += 1;
        SYSFS_WRITE_COST
    }

    /// Write the target-address file. Returns the CPU cost of the write.
    pub fn set_address(&mut self, addr: u64) -> Span {
        self.address = Some(addr);
        self.config_writes += 1;
        SYSFS_WRITE_COST
    }

    /// Trigger the configured injection at simulated time `at`.
    pub fn trigger(&mut self, at: Time) -> Result<Injection, EinjError> {
        let error_type = self.error_type.ok_or(EinjError::NoErrorTypeConfigured)?;
        let address = self.address.ok_or(EinjError::NoAddressConfigured)?;
        let inj = Injection {
            at,
            error_type,
            address,
        };
        self.injections.push(inj);
        Ok(inj)
    }

    /// All injections triggered so far.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// Number of sysfs configuration writes performed.
    pub fn config_writes(&self) -> u64 {
        self.config_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configure_then_trigger() {
        let mut e = EinjInterface::new();
        assert_eq!(
            e.set_error_type(ErrorType::MemoryCorrectable),
            SYSFS_WRITE_COST
        );
        assert_eq!(e.set_address(0xdead_beef), SYSFS_WRITE_COST);
        let inj = e.trigger(Time::from_ps(10)).unwrap();
        assert_eq!(inj.error_type, ErrorType::MemoryCorrectable);
        assert_eq!(inj.address, 0xdead_beef);
        assert_eq!(e.injections().len(), 1);
        assert_eq!(e.config_writes(), 2);
    }

    #[test]
    fn trigger_requires_configuration() {
        let mut e = EinjInterface::new();
        assert_eq!(
            e.trigger(Time::ZERO).unwrap_err(),
            EinjError::NoErrorTypeConfigured
        );
        e.set_error_type(ErrorType::MemoryUncorrectable);
        assert_eq!(
            e.trigger(Time::ZERO).unwrap_err(),
            EinjError::NoAddressConfigured
        );
        e.set_address(0x1000);
        assert!(e.trigger(Time::ZERO).is_ok());
    }

    #[test]
    fn dry_run_triggers_nothing() {
        let mut e = EinjInterface::new();
        for i in 0..30 {
            e.set_error_type(ErrorType::MemoryCorrectable);
            e.set_address(0x1000 + i);
        }
        assert_eq!(e.injections().len(), 0);
        assert_eq!(e.config_writes(), 60);
    }

    #[test]
    fn sysfs_cost_is_below_selfish_threshold() {
        assert!(SYSFS_WRITE_COST < Span::from_ns(150));
    }
}
