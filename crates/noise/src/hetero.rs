//! Per-rank heterogeneous CE noise.
//!
//! [`CeNoise`](crate::ce::CeNoise) models the paper's setting: one MTBCE
//! and one per-event cost shared by every rank. Field studies (the DDR4
//! field-fault study, arXiv 2408.15302) show real fleets are wildly
//! skewed — a small population of faulty DIMMs produces most of the CE
//! stream — and operators react by changing a *node's* logging mode, not
//! the whole machine's. [`HeteroCeNoise`] models that: every rank owns an
//! independent Poisson arrival process with its **own** mean inter-arrival
//! time and its **own** per-event detour cost (the logging mode of the
//! node the rank landed on).
//!
//! The stretch semantics are identical to [`CeNoise`](crate::ce::CeNoise)
//! — arrivals that fall while the rank is blocked are absorbed, arrivals
//! inside an active CPU interval steal one detour each, and detour time
//! itself accrues further arrivals (the feedback that makes high rates
//! with expensive logging collapse). The fleet engine additionally needs
//! *per-rank* event counts (to attribute observed CEs back to cluster
//! nodes for mitigation policies), which this model tracks.

use cesim_engine::NoiseModel;
use cesim_goal::Rank;
use cesim_model::rng::Rng64;
use cesim_model::{Span, Time};

/// One rank's CE process parameters: mean time between CEs on the node
/// hosting the rank, and the per-event detour of that node's logging
/// mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankCeParams {
    /// Mean time between correctable errors on this rank's node.
    pub mtbce: Span,
    /// CPU detour per correctable error (the node's logging-mode cost).
    pub detour: Span,
}

impl RankCeParams {
    /// Expected fraction of CPU time stolen by CE handling
    /// (`detour / mtbce`); at `>= 1.0` the rank cannot make forward
    /// progress.
    pub fn utilization(&self) -> f64 {
        self.detour.as_secs_f64() / self.mtbce.as_secs_f64()
    }
}

/// Poisson CE arrivals with per-rank rates and per-rank detour costs.
#[derive(Clone, Debug)]
pub struct HeteroCeNoise {
    params: Vec<RankCeParams>,
    /// Next pending CE arrival per rank (simulated time).
    next: Vec<Time>,
    rngs: Vec<Rng64>,
    per_rank: Vec<u64>,
    events: u64,
}

impl HeteroCeNoise {
    /// A CE process with one [`RankCeParams`] per rank, seeded
    /// deterministically from `seed` (each rank gets an independent
    /// substream, exactly like [`CeNoise`](crate::ce::CeNoise) — rank
    /// `r` of the same seed sees the same arrival stream regardless of
    /// the other ranks' parameters).
    pub fn new(params: Vec<RankCeParams>, seed: u64) -> Self {
        assert!(!params.is_empty(), "need at least one rank");
        let n = params.len();
        let mut rngs = Vec::with_capacity(n);
        let mut next = Vec::with_capacity(n);
        for (r, p) in params.iter().enumerate() {
            assert!(!p.mtbce.is_zero(), "rank {r}: MTBCE must be positive");
            let mut rng = Rng64::substream(seed, r as u64);
            let first = Time::ZERO + rng.exp_span(p.mtbce);
            rngs.push(rng);
            next.push(first);
        }
        HeteroCeNoise {
            params,
            next,
            rngs,
            per_rank: vec![0; n],
            events: 0,
        }
    }

    /// The per-rank parameters this model runs with.
    pub fn params(&self) -> &[RankCeParams] {
        &self.params
    }

    /// CE detours injected into each rank so far (indexed by rank).
    pub fn per_rank_events(&self) -> &[u64] {
        &self.per_rank
    }

    /// The largest per-rank utilization `detour / mtbce`. Drivers should
    /// treat configurations at or above ~0.95 as "no forward progress"
    /// rather than simulating them (see
    /// `cesim_core::experiment::DIVERGENCE_LIMIT`).
    pub fn max_utilization(&self) -> f64 {
        self.params
            .iter()
            .map(RankCeParams::utilization)
            .fold(0.0, f64::max)
    }

    /// Next arrival for rank `i` strictly after `from` (1 ps floor, as in
    /// [`CeNoise`](crate::ce::CeNoise)).
    #[inline]
    fn advance(&mut self, i: usize, from: Time) -> Time {
        let step = self.rngs[i]
            .exp_span(self.params[i].mtbce)
            .max(Span::from_ps(1));
        from + step
    }
}

impl NoiseModel for HeteroCeNoise {
    fn stretch(&mut self, rank: Rank, start: Time, work: Span) -> Time {
        if work.is_zero() {
            return start + work;
        }
        let i = rank.idx();
        let detour = self.params[i].detour;
        // Arrivals during blocked time were handled while the rank was
        // idle and steal nothing; advance the process past them.
        while self.next[i] < start {
            let a = self.next[i];
            self.next[i] = self.advance(i, a);
        }
        let mut t = start;
        let mut remaining = work;
        loop {
            let arrival = self.next[i];
            if arrival > t + remaining {
                break;
            }
            if arrival > t {
                remaining -= arrival - t;
                t = arrival;
            }
            t += detour;
            self.events += 1;
            self.per_rank[i] += 1;
            self.next[i] = self.advance(i, arrival);
        }
        t + remaining
    }

    fn events_injected(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ce::{CeNoise, Scope};

    fn uniform(n: usize, mtbce: Span, detour: Span) -> Vec<RankCeParams> {
        vec![RankCeParams { mtbce, detour }; n]
    }

    #[test]
    fn uniform_params_match_cenoise_exactly() {
        // With identical per-rank parameters the model must reproduce
        // CeNoise bit-for-bit: same substream seeding, same semantics.
        let mtbce = Span::from_ms(5);
        let detour = Span::from_us(775);
        let mut a = HeteroCeNoise::new(uniform(3, mtbce, detour), 42);
        let mut b = CeNoise::new(3, mtbce, detour, Scope::AllRanks, 42);
        for r in 0..3 {
            for step in 0..20u64 {
                let start = Time::from_ps(step * 7_000_000_000);
                let work = Span::from_us(300 + 17 * step);
                assert_eq!(
                    a.stretch(Rank(r), start, work),
                    b.stretch(Rank(r), start, work),
                    "rank {r} step {step}"
                );
            }
        }
        assert_eq!(a.events_injected(), b.events_injected());
        let sum: u64 = a.per_rank_events().iter().sum();
        assert_eq!(sum, a.events_injected());
    }

    #[test]
    fn hot_rank_sees_more_events() {
        let mut params = uniform(4, Span::from_ms(10), Span::from_us(100));
        params[2].mtbce = Span::from_us(200); // the faulty-DIMM node
        let mut n = HeteroCeNoise::new(params, 7);
        for r in 0..4 {
            n.stretch(Rank(r), Time::ZERO, Span::from_secs(1));
        }
        let ev = n.per_rank_events();
        assert!(ev[2] > 10 * ev[0].max(1), "hot rank must dominate: {ev:?}");
    }

    #[test]
    fn per_rank_detours_apply() {
        // Same arrival stream (same seed, same mtbce), different per-rank
        // detour: the expensive rank finishes later by (cost delta x events).
        let cheap = RankCeParams {
            mtbce: Span::from_ms(2),
            detour: Span::from_us(10),
        };
        let dear = RankCeParams {
            mtbce: Span::from_ms(2),
            detour: Span::from_ms(1),
        };
        let mut n = HeteroCeNoise::new(vec![cheap, dear], 9);
        let work = Span::from_secs(1);
        let end0 = n.stretch(Rank(0), Time::ZERO, work);
        let end1 = n.stretch(Rank(1), Time::ZERO, work);
        // Rank substreams are independent, so event counts differ; both
        // must at least pay their own per-event cost.
        let ev = n.per_rank_events().to_vec();
        assert_eq!(end0.since(Time::ZERO + work), cheap.detour * ev[0]);
        assert_eq!(end1.since(Time::ZERO + work), dear.detour * ev[1]);
        assert!(end1 > end0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut params = uniform(2, Span::from_ms(3), Span::from_us(50));
            params[1].detour = Span::from_us(500);
            let mut n = HeteroCeNoise::new(params, seed);
            let a = n.stretch(Rank(0), Time::ZERO, Span::from_secs(1));
            let b = n.stretch(Rank(1), Time::ZERO, Span::from_secs(1));
            (a, b, n.per_rank_events().to_vec())
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn utilization_math() {
        let p = RankCeParams {
            mtbce: Span::from_ms(2),
            detour: Span::from_ms(1),
        };
        assert!((p.utilization() - 0.5).abs() < 1e-12);
        let n = HeteroCeNoise::new(
            vec![
                p,
                RankCeParams {
                    mtbce: Span::from_ms(1),
                    detour: Span::from_us(900),
                },
            ],
            0,
        );
        assert!((n.max_utilization() - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "MTBCE must be positive")]
    fn zero_mtbce_rejected() {
        HeteroCeNoise::new(
            vec![RankCeParams {
                mtbce: Span::ZERO,
                detour: Span::from_us(1),
            }],
            0,
        );
    }
}
