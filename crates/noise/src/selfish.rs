//! A model of the `selfish` system-noise microbenchmark.
//!
//! `selfish` (Hoefler et al., SC'10) spins reading the CPU timestamp
//! counter; whenever two consecutive reads differ by more than a threshold
//! (the paper uses 150 ns), the gap is recorded as a *detour* — CPU time
//! stolen from the application by the OS, firmware, or error handling.
//!
//! Here a node's background activity is a set of [`NoiseSource`]s
//! (periodic ticks, Poisson daemons). Sampling them over a window yields a
//! [`DetourTrace`]: the bars of Fig. 2. Error-injection experiments add
//! their own detours on top (see [`crate::signature`]).

use cesim_model::rng::Rng64;
use cesim_model::{Span, Time};
use core::fmt;

/// One recorded detour: the CPU disappeared at `at` for `dur`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Detour {
    /// When the detour began.
    pub at: Time,
    /// How long the CPU was away.
    pub dur: Span,
}

/// A `selfish`-style trace: every detour above `threshold` observed during
/// `window`.
#[derive(Clone, Debug, PartialEq)]
pub struct DetourTrace {
    /// Observation window length.
    pub window: Span,
    /// Detection threshold (gaps below it are invisible to the probe).
    pub threshold: Span,
    /// Detours in time order.
    pub detours: Vec<Detour>,
}

impl DetourTrace {
    /// Create a trace, keeping only detours at or above `threshold` and
    /// inside `window`, sorted by time.
    pub fn new(window: Span, threshold: Span, mut detours: Vec<Detour>) -> Self {
        detours.retain(|d| d.dur >= threshold && d.at < Time::ZERO + window);
        detours.sort_by_key(|d| d.at);
        DetourTrace {
            window,
            threshold,
            detours,
        }
    }

    /// Number of recorded detours.
    pub fn count(&self) -> usize {
        self.detours.len()
    }

    /// Sum of all detour durations.
    pub fn total_noise(&self) -> Span {
        self.detours.iter().map(|d| d.dur).sum()
    }

    /// Fraction of the window stolen by detours.
    pub fn noise_fraction(&self) -> f64 {
        self.total_noise().as_secs_f64() / self.window.as_secs_f64()
    }

    /// The longest single detour.
    pub fn max_detour(&self) -> Span {
        self.detours
            .iter()
            .map(|d| d.dur)
            .max()
            .unwrap_or(Span::ZERO)
    }

    /// Count detours whose duration falls in `[lo, hi)`.
    pub fn count_in(&self, lo: Span, hi: Span) -> usize {
        self.detours
            .iter()
            .filter(|d| d.dur >= lo && d.dur < hi)
            .count()
    }

    /// Histogram over duration bucket edges (`edges` ascending; returns
    /// `edges.len() + 1` buckets, the last one open-ended).
    pub fn histogram(&self, edges: &[Span]) -> Vec<usize> {
        debug_assert!(edges.windows(2).all(|w| w[0] <= w[1]));
        let mut buckets = vec![0usize; edges.len() + 1];
        for d in &self.detours {
            let i = edges.partition_point(|&e| e <= d.dur);
            buckets[i] += 1;
        }
        buckets
    }

    /// Merge another trace's detours into this one (same window assumed).
    pub fn merge(&mut self, other: &DetourTrace) {
        self.detours.extend(other.detours.iter().copied());
        self.detours.retain(|d| d.dur >= self.threshold);
        self.detours.sort_by_key(|d| d.at);
    }
}

impl fmt::Display for DetourTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} detours over {} ({:.4}% noise, max {})",
            self.count(),
            self.window,
            self.noise_fraction() * 100.0,
            self.max_detour()
        )
    }
}

/// How a background noise source fires.
#[derive(Clone, Copy, Debug)]
pub enum SourceKind {
    /// Fires every `period` with a small uniform phase jitter.
    Periodic {
        /// Nominal interval between firings.
        period: Span,
        /// Uniform jitter amplitude as a fraction of the period.
        jitter_frac: f64,
    },
    /// Fires with exponential inter-arrival times.
    Poisson {
        /// Mean interval between firings.
        mean_interval: Span,
    },
}

/// One background noise source (timer tick, kernel daemon, …).
#[derive(Clone, Debug)]
pub struct NoiseSource {
    /// Label for reports.
    pub name: &'static str,
    /// Firing process.
    pub kind: SourceKind,
    /// Nominal detour duration per firing.
    pub dur: Span,
    /// Uniform jitter amplitude on the duration (fraction of `dur`).
    pub dur_jitter: f64,
}

impl NoiseSource {
    /// Generate this source's detours over `window`.
    pub fn sample(&self, window: Span, rng: &mut Rng64) -> Vec<Detour> {
        let mut out = Vec::new();
        let horizon = Time::ZERO + window;
        match self.kind {
            SourceKind::Periodic {
                period,
                jitter_frac,
            } => {
                assert!(!period.is_zero());
                let mut t = Time::ZERO + period;
                while t < horizon {
                    let jitter = period.mul_f64(rng.uniform_f64(0.0, jitter_frac));
                    let at = t + jitter;
                    if at < horizon {
                        out.push(Detour {
                            at,
                            dur: self.dur.mul_f64(rng.jitter(self.dur_jitter)),
                        });
                    }
                    t += period;
                }
            }
            SourceKind::Poisson { mean_interval } => {
                let mut t = Time::ZERO + rng.exp_span(mean_interval);
                while t < horizon {
                    out.push(Detour {
                        at: t,
                        dur: self.dur.mul_f64(rng.jitter(self.dur_jitter)),
                    });
                    t += rng.exp_span(mean_interval);
                }
            }
        }
        out
    }
}

/// The background activity of one node: a bundle of noise sources.
#[derive(Clone, Debug)]
pub struct NodeActivity {
    /// All sources contributing detours.
    pub sources: Vec<NoiseSource>,
}

impl NodeActivity {
    /// The Blake-like native profile used for Fig. 2a: a 1 kHz timer tick
    /// of a few microseconds plus sparse longer daemon activity.
    pub fn blake_native() -> Self {
        NodeActivity {
            sources: vec![
                NoiseSource {
                    name: "timer-tick",
                    kind: SourceKind::Periodic {
                        period: Span::from_ms(1),
                        jitter_frac: 0.02,
                    },
                    dur: Span::from_us(2),
                    dur_jitter: 0.5,
                },
                NoiseSource {
                    name: "scheduler",
                    kind: SourceKind::Periodic {
                        period: Span::from_ms(10),
                        jitter_frac: 0.05,
                    },
                    dur: Span::from_us(6),
                    dur_jitter: 0.4,
                },
                NoiseSource {
                    name: "kworker",
                    kind: SourceKind::Poisson {
                        mean_interval: Span::from_secs(2),
                    },
                    dur: Span::from_us(25),
                    dur_jitter: 0.6,
                },
            ],
        }
    }

    /// Sample all sources over `window` into a trace with the paper's
    /// 150 ns detection threshold.
    pub fn trace(&self, window: Span, seed: u64) -> DetourTrace {
        let threshold = Span::from_ns(150);
        let mut detours = Vec::new();
        for (i, s) in self.sources.iter().enumerate() {
            let mut rng = Rng64::substream(seed, i as u64);
            detours.extend(s.sample(window, &mut rng));
        }
        DetourTrace::new(window, threshold, detours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_filters_and_sorts() {
        let t = DetourTrace::new(
            Span::from_secs(1),
            Span::from_ns(150),
            vec![
                Detour {
                    at: Time::from_ps(500),
                    dur: Span::from_us(3),
                },
                Detour {
                    at: Time::from_ps(100),
                    dur: Span::from_ns(100),
                }, // below threshold
                Detour {
                    at: Time::from_ps(200),
                    dur: Span::from_us(1),
                },
                Detour {
                    at: Time::ZERO + Span::from_secs(2), // outside window
                    dur: Span::from_ms(1),
                },
            ],
        );
        assert_eq!(t.count(), 2);
        assert!(t.detours[0].at < t.detours[1].at);
        assert_eq!(t.total_noise(), Span::from_us(4));
        assert_eq!(t.max_detour(), Span::from_us(3));
    }

    #[test]
    fn histogram_buckets() {
        let t = DetourTrace::new(
            Span::from_secs(1),
            Span::ZERO,
            vec![
                Detour {
                    at: Time::ZERO,
                    dur: Span::from_ns(50),
                },
                Detour {
                    at: Time::ZERO,
                    dur: Span::from_us(5),
                },
                Detour {
                    at: Time::ZERO,
                    dur: Span::from_ms(5),
                },
            ],
        );
        let h = t.histogram(&[Span::from_us(1), Span::from_ms(1)]);
        assert_eq!(h, vec![1, 1, 1]);
        assert_eq!(t.count_in(Span::ZERO, Span::from_us(1)), 1);
    }

    #[test]
    fn periodic_source_count() {
        let s = NoiseSource {
            name: "tick",
            kind: SourceKind::Periodic {
                period: Span::from_ms(1),
                jitter_frac: 0.0,
            },
            dur: Span::from_us(2),
            dur_jitter: 0.0,
        };
        let mut rng = Rng64::new(1);
        let d = s.sample(Span::from_secs(1), &mut rng);
        // One firing per millisecond, first at t = 1 ms.
        assert_eq!(d.len(), 999);
        assert!(d.iter().all(|x| x.dur == Span::from_us(2)));
    }

    #[test]
    fn poisson_source_rate() {
        let s = NoiseSource {
            name: "daemon",
            kind: SourceKind::Poisson {
                mean_interval: Span::from_ms(10),
            },
            dur: Span::from_us(10),
            dur_jitter: 0.0,
        };
        let mut rng = Rng64::new(2);
        let d = s.sample(Span::from_secs(10), &mut rng);
        assert!((800..1200).contains(&d.len()), "{} firings", d.len());
    }

    #[test]
    fn native_profile_is_low_noise() {
        let t = NodeActivity::blake_native().trace(Span::from_secs(30), 7);
        // Mostly the 1 kHz tick.
        assert!(t.count() > 25_000, "count = {}", t.count());
        // Well under 1% total noise and no detour anywhere near CMCI cost.
        assert!(t.noise_fraction() < 0.01, "{}", t.noise_fraction());
        assert!(t.max_detour() < Span::from_us(100), "{}", t.max_detour());
    }

    #[test]
    fn merge_keeps_order_and_threshold() {
        let mut a = NodeActivity::blake_native().trace(Span::from_secs(1), 1);
        let before = a.count();
        let b = DetourTrace::new(
            Span::from_secs(1),
            Span::ZERO,
            vec![Detour {
                at: Time::from_ps(5),
                dur: Span::from_ms(7),
            }],
        );
        a.merge(&b);
        assert_eq!(a.count(), before + 1);
        assert_eq!(a.detours[0].at, Time::from_ps(5));
        assert!(a.detours.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn display_summary() {
        let t = NodeActivity::blake_native().trace(Span::from_secs(1), 3);
        let s = format!("{t}");
        assert!(s.contains("detours"));
    }
}
