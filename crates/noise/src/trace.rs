//! Replaying a measured detour trace as simulation noise.
//!
//! The paper's methodology is two-phase: *measure* per-event CE handling
//! costs with `selfish` on real hardware (§IV-A), then *inject* those
//! costs into the simulator. [`TraceNoise`] closes the loop inside this
//! repository: any [`DetourTrace`] — including the synthesized Fig. 2
//! signatures — can be replayed verbatim onto a simulated rank, instead
//! of going through the Poisson abstraction.
//!
//! Semantics match [`crate::CeNoise`]: detours that fall inside a busy
//! CPU interval stretch it; detours that fall while the rank is blocked
//! are absorbed by idle time.

use crate::selfish::DetourTrace;
use cesim_engine::NoiseModel;
use cesim_goal::Rank;
use cesim_model::{Span, Time};

/// Replays recorded detours onto one rank (or all ranks, each with its
/// own copy of the trace).
#[derive(Clone, Debug)]
pub struct TraceNoise {
    /// `(at, dur)` pairs sorted by time.
    detours: Vec<(Time, Span)>,
    /// Per-rank cursor into `detours`.
    cursor: Vec<usize>,
    /// `None` = apply to every rank; `Some(r)` = only rank `r`.
    target: Option<Rank>,
    injected: u64,
}

impl TraceNoise {
    /// Replay `trace` on every rank (each rank sees the same detour
    /// timeline — a worst-case "synchronized noise" configuration).
    pub fn all_ranks(nranks: usize, trace: &DetourTrace) -> Self {
        Self::build(nranks, trace, None)
    }

    /// Replay `trace` on a single rank (the Fig. 3 single-node scenario
    /// with measured rather than synthetic arrivals).
    pub fn single_rank(nranks: usize, rank: Rank, trace: &DetourTrace) -> Self {
        assert!(rank.idx() < nranks, "target rank out of range");
        Self::build(nranks, trace, Some(rank))
    }

    fn build(nranks: usize, trace: &DetourTrace, target: Option<Rank>) -> Self {
        assert!(nranks > 0);
        let mut detours: Vec<(Time, Span)> = trace.detours.iter().map(|d| (d.at, d.dur)).collect();
        detours.sort_by_key(|&(at, _)| at);
        TraceNoise {
            detours,
            cursor: vec![0; nranks],
            target,
            injected: 0,
        }
    }

    /// Detours remaining un-replayed for `rank` (diagnostics).
    pub fn remaining(&self, rank: Rank) -> usize {
        self.detours.len() - self.cursor[rank.idx()]
    }
}

impl NoiseModel for TraceNoise {
    fn stretch(&mut self, rank: Rank, start: Time, work: Span) -> Time {
        if self.target.is_some_and(|t| t != rank) || work.is_zero() {
            return start + work;
        }
        let i = rank.idx();
        let c = &mut self.cursor[i];
        // Absorb idle-time detours.
        while *c < self.detours.len() && self.detours[*c].0 < start {
            *c += 1;
        }
        let mut t = start;
        let mut remaining = work;
        while *c < self.detours.len() {
            let (at, dur) = self.detours[*c];
            if at > t + remaining {
                break;
            }
            if at > t {
                remaining -= at - t;
                t = at;
            }
            t += dur;
            *c += 1;
            self.injected += 1;
        }
        t + remaining
    }

    fn events_injected(&self) -> u64 {
        self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selfish::Detour;

    fn trace(pairs: &[(u64, u64)]) -> DetourTrace {
        DetourTrace::new(
            Span::from_secs(1_000),
            Span::ZERO,
            pairs
                .iter()
                .map(|&(at, dur)| Detour {
                    at: Time::from_ps(at),
                    dur: Span::from_ps(dur),
                })
                .collect(),
        )
    }

    #[test]
    fn detours_inside_intervals_apply() {
        let t = trace(&[(100, 10), (150, 20)]);
        let mut n = TraceNoise::all_ranks(1, &t);
        // Interval [50, 250): both detours hit.
        let end = n.stretch(Rank(0), Time::from_ps(50), Span::from_ps(200));
        assert_eq!(end, Time::from_ps(280));
        assert_eq!(n.events_injected(), 2);
        assert_eq!(n.remaining(Rank(0)), 0);
    }

    #[test]
    fn idle_detours_absorbed() {
        let t = trace(&[(100, 999)]);
        let mut n = TraceNoise::all_ranks(1, &t);
        // Interval starts at 200: the detour at 100 happened during idle.
        let end = n.stretch(Rank(0), Time::from_ps(200), Span::from_ps(50));
        assert_eq!(end, Time::from_ps(250));
        assert_eq!(n.events_injected(), 0);
        assert_eq!(n.remaining(Rank(0)), 0);
    }

    #[test]
    fn cascading_detours_during_handling() {
        // Second detour lands while the first is being handled: both apply
        // back-to-back.
        let t = trace(&[(10, 100), (50, 7)]);
        let mut n = TraceNoise::all_ranks(1, &t);
        // 10 ps work, +100 detour, +7 queued detour, 10 ps work left.
        let end = n.stretch(Rank(0), Time::ZERO, Span::from_ps(20));
        assert_eq!(end, Time::from_ps(127));
        assert_eq!(n.events_injected(), 2);
    }

    #[test]
    fn single_rank_targeting() {
        let t = trace(&[(0, 50)]);
        let mut n = TraceNoise::single_rank(3, Rank(1), &t);
        assert_eq!(
            n.stretch(Rank(0), Time::ZERO, Span::from_ps(10)),
            Time::from_ps(10)
        );
        assert_eq!(
            n.stretch(Rank(1), Time::ZERO, Span::from_ps(10)),
            Time::from_ps(60)
        );
        assert_eq!(n.remaining(Rank(2)), 1, "untouched rank keeps its cursor");
    }

    #[test]
    fn each_rank_has_its_own_cursor() {
        let t = trace(&[(5, 10)]);
        let mut n = TraceNoise::all_ranks(2, &t);
        let a = n.stretch(Rank(0), Time::ZERO, Span::from_ps(20));
        let b = n.stretch(Rank(1), Time::ZERO, Span::from_ps(20));
        assert_eq!(a, b);
        assert_eq!(n.events_injected(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_rejected() {
        TraceNoise::single_rank(2, Rank(5), &trace(&[]));
    }
}
