//! Bursty correctable-error arrivals.
//!
//! Field studies (Meza et al. DSN'15; Gottscho et al. — the paper's
//! closest related work — speak of CE "avalanches") show that correctable
//! errors are not memoryless: a failing component emits *bursts* of CEs
//! (a stuck bit being re-read, a failing row being rewalked) separated by
//! long quiet periods. [`BurstyCeNoise`] models this as a two-state
//! Markov-modulated Poisson process per node:
//!
//! * **quiet**: CEs at a low background rate;
//! * **burst**: CEs at a much higher rate, for an exponentially
//!   distributed duration.
//!
//! This is an extension beyond the paper's exponential-only §III-D model,
//! useful for studying whether its conclusions are robust to arrival
//! clustering (they are for mean-dominated metrics, but tail slowdowns
//! grow; see the `bursty` ablation bench).

use cesim_engine::NoiseModel;
use cesim_goal::Rank;
use cesim_model::rng::Rng64;
use cesim_model::{Span, Time};

/// Parameters of the two-state MMPP.
#[derive(Clone, Copy, Debug)]
pub struct BurstSpec {
    /// Mean time between CEs while quiet.
    pub quiet_mtbce: Span,
    /// Mean time between CEs while bursting (≪ `quiet_mtbce`).
    pub burst_mtbce: Span,
    /// Mean duration of a quiet period.
    pub mean_quiet: Span,
    /// Mean duration of a burst.
    pub mean_burst: Span,
}

impl BurstSpec {
    /// The long-run average CE rate (events/second) of the process.
    pub fn average_rate(&self) -> f64 {
        let q = self.mean_quiet.as_secs_f64();
        let b = self.mean_burst.as_secs_f64();
        let rq = 1.0 / self.quiet_mtbce.as_secs_f64();
        let rb = 1.0 / self.burst_mtbce.as_secs_f64();
        (q * rq + b * rb) / (q + b)
    }

    /// The equivalent memoryless MTBCE (for comparing against
    /// [`crate::CeNoise`] at matched average rates).
    pub fn equivalent_mtbce(&self) -> Span {
        Span::from_secs_f64(1.0 / self.average_rate())
    }

    fn validate(&self) {
        assert!(!self.quiet_mtbce.is_zero(), "quiet MTBCE must be positive");
        assert!(!self.burst_mtbce.is_zero(), "burst MTBCE must be positive");
        assert!(
            !self.mean_quiet.is_zero(),
            "quiet duration must be positive"
        );
        assert!(
            !self.mean_burst.is_zero(),
            "burst duration must be positive"
        );
    }
}

#[derive(Clone, Debug)]
struct RankPhase {
    /// Currently bursting?
    bursting: bool,
    /// When the current phase ends.
    phase_end: Time,
    /// Next CE arrival (always within or after the current phase as
    /// generated lazily).
    next_ce: Time,
    rng: Rng64,
}

/// Two-state bursty CE arrivals with a fixed per-event detour. Applies to
/// all ranks; idle-time arrivals are absorbed exactly as in
/// [`crate::CeNoise`].
#[derive(Clone, Debug)]
pub struct BurstyCeNoise {
    spec: BurstSpec,
    detour: Span,
    ranks: Vec<RankPhase>,
    events: u64,
}

impl BurstyCeNoise {
    /// Build for `nranks` ranks, deterministically seeded.
    pub fn new(nranks: usize, spec: BurstSpec, detour: Span, seed: u64) -> Self {
        spec.validate();
        assert!(nranks > 0);
        let mut ranks = Vec::with_capacity(nranks);
        for r in 0..nranks {
            let mut rng = Rng64::substream(seed ^ 0xB057, r as u64);
            let phase_end = Time::ZERO + rng.exp_span(spec.mean_quiet);
            let mut ph = RankPhase {
                bursting: false,
                phase_end,
                next_ce: Time::ZERO,
                rng,
            };
            ph.next_ce = Self::draw_next(&spec, &mut ph, Time::ZERO);
            ranks.push(ph);
        }
        BurstyCeNoise {
            spec,
            detour,
            ranks,
            events: 0,
        }
    }

    /// The configured spec.
    pub fn spec(&self) -> BurstSpec {
        self.spec
    }

    /// Draw the next arrival strictly after `from`, stepping through phase
    /// boundaries (the exponential's memorylessness makes re-drawing at a
    /// boundary exact).
    fn draw_next(spec: &BurstSpec, ph: &mut RankPhase, from: Time) -> Time {
        let mut t = from;
        loop {
            let mtbce = if ph.bursting {
                spec.burst_mtbce
            } else {
                spec.quiet_mtbce
            };
            let step = ph.rng.exp_span(mtbce).max(Span::from_ps(1));
            let candidate = t + step;
            if candidate <= ph.phase_end {
                return candidate;
            }
            // Cross into the next phase and re-draw from the boundary.
            t = ph.phase_end;
            ph.bursting = !ph.bursting;
            let dur = if ph.bursting {
                spec.mean_burst
            } else {
                spec.mean_quiet
            };
            ph.phase_end = t + ph.rng.exp_span(dur).max(Span::from_ps(1));
        }
    }
}

impl NoiseModel for BurstyCeNoise {
    fn stretch(&mut self, rank: Rank, start: Time, work: Span) -> Time {
        if work.is_zero() {
            return start + work;
        }
        let spec = self.spec;
        let ph = &mut self.ranks[rank.idx()];
        // Absorb idle-time arrivals.
        while ph.next_ce < start {
            let from = ph.next_ce;
            ph.next_ce = Self::draw_next(&spec, ph, from);
        }
        let mut t = start;
        let mut remaining = work;
        loop {
            let arrival = ph.next_ce;
            if arrival > t + remaining {
                break;
            }
            if arrival > t {
                remaining -= arrival - t;
                t = arrival;
            }
            t += self.detour;
            self.events += 1;
            ph.next_ce = Self::draw_next(&spec, ph, arrival);
        }
        t + remaining
    }

    fn events_injected(&self) -> u64 {
        self.events
    }
}

/// Apply two noise models in sequence: the interval is stretched by `A`,
/// and the resulting interval (work plus A's detours) is then subject to
/// `B`. Useful for layering CE detours on top of background OS noise.
#[derive(Clone, Debug)]
pub struct ComposedNoise<A, B> {
    /// First model.
    pub a: A,
    /// Second model (sees intervals already stretched by `a`).
    pub b: B,
}

impl<A: NoiseModel, B: NoiseModel> ComposedNoise<A, B> {
    /// Compose `a` then `b`.
    pub fn new(a: A, b: B) -> Self {
        ComposedNoise { a, b }
    }
}

impl<A: NoiseModel, B: NoiseModel> NoiseModel for ComposedNoise<A, B> {
    fn stretch(&mut self, rank: Rank, start: Time, work: Span) -> Time {
        let mid = self.a.stretch(rank, start, work);
        self.b.stretch(rank, start, mid.since(start))
    }

    fn events_injected(&self) -> u64 {
        self.a.events_injected() + self.b.events_injected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ce::{CeNoise, Scope};

    fn spec() -> BurstSpec {
        BurstSpec {
            quiet_mtbce: Span::from_secs(10),
            burst_mtbce: Span::from_ms(10),
            mean_quiet: Span::from_secs(5),
            mean_burst: Span::from_ms(500),
        }
    }

    #[test]
    fn average_rate_math() {
        let s = spec();
        // (5·0.1 + 0.5·100) / 5.5 = 50.5 / 5.5 ≈ 9.18 CEs/s.
        assert!((s.average_rate() - 50.5 / 5.5).abs() < 1e-9);
        let eq = s.equivalent_mtbce().as_secs_f64();
        assert!((eq - 5.5 / 50.5).abs() < 1e-9);
    }

    #[test]
    fn events_cluster_in_bursts() {
        let mut n = BurstyCeNoise::new(1, spec(), Span::from_us(1), 3);
        // Walk 60 s of continuous work in 10 ms slices and count events
        // per slice: bursty arrivals must produce slices with many events
        // AND long stretches with none.
        let mut t = Time::ZERO;
        let mut counts = Vec::new();
        let mut prev_events = 0;
        for _ in 0..6_000 {
            t = n.stretch(Rank(0), t, Span::from_ms(10));
            let e = n.events_injected();
            counts.push(e - prev_events);
            prev_events = e;
        }
        let total: u64 = counts.iter().sum();
        // Average rate ≈ 9.18/s over ~60 s → several hundred events.
        assert!((300..1200).contains(&total), "total = {total}");
        let empty = counts.iter().filter(|&&c| c == 0).count();
        let heavy = counts.iter().filter(|&&c| c >= 3).count();
        assert!(
            empty > 4_000,
            "quiet periods should dominate slices: {empty}"
        );
        assert!(heavy > 20, "bursts should concentrate events: {heavy}");
    }

    #[test]
    fn matched_rate_comparable_total_steal() {
        // Over a long window, bursty and memoryless processes at the same
        // average rate steal comparable total CPU time.
        let s = spec();
        let detour = Span::from_us(100);
        let work = Span::from_secs(200);
        let mut bursty = BurstyCeNoise::new(1, s, detour, 1);
        let e1 = bursty
            .stretch(Rank(0), Time::ZERO, work)
            .since(Time::ZERO + work);
        let mut smooth = CeNoise::new(1, s.equivalent_mtbce(), detour, Scope::AllRanks, 1);
        let e2 = smooth
            .stretch(Rank(0), Time::ZERO, work)
            .since(Time::ZERO + work);
        let ratio = e1.as_secs_f64() / e2.as_secs_f64();
        assert!((0.5..2.0).contains(&ratio), "stolen ratio = {ratio}");
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut n = BurstyCeNoise::new(2, spec(), Span::from_us(10), 9);
            let a = n.stretch(Rank(0), Time::ZERO, Span::from_secs(30));
            let b = n.stretch(Rank(1), Time::ZERO, Span::from_secs(30));
            (a, b, n.events_injected())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn composition_adds_both_models() {
        use cesim_engine::noise::ScriptedNoise;
        let a = ScriptedNoise::new(vec![(Rank(0), Time::ZERO, Span::from_us(5))]);
        let b = ScriptedNoise::new(vec![(Rank(0), Time::ZERO, Span::from_us(7))]);
        let mut c = ComposedNoise::new(a, b);
        let end = c.stretch(Rank(0), Time::ZERO, Span::from_us(10));
        assert_eq!(end, Time::ZERO + Span::from_us(22));
        assert_eq!(c.events_injected(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        BurstyCeNoise::new(
            1,
            BurstSpec {
                quiet_mtbce: Span::ZERO,
                ..spec()
            },
            Span::from_us(1),
            0,
        );
    }
}
