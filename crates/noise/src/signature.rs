//! Regeneration of the Fig. 2 noise signatures.
//!
//! Fig. 2 of the paper shows four `selfish` traces collected on Blake (a
//! 48-core-per-socket Skylake cluster) while injecting one correctable
//! error every 10 seconds via APEI EINJ:
//!
//! * **(a) Native** — background OS noise only.
//! * **(b) Dry run** — EINJ configured every 10 s but never triggered;
//!   indistinguishable from native because sysfs writes are below the
//!   150 ns detection threshold.
//! * **(c) Software cost (CMCI)** — every injection raises a Corrected
//!   Machine-Check Interrupt decoded by the OS: a ~775 µs detour per
//!   injection (the paper reports "approximately 700 µs" bars and uses
//!   775 µs in the simulation captions).
//! * **(d) Firmware cost (EMCA, threshold 10)** — every injection raises a
//!   ~7 ms SMI; every 10th, firmware additionally decodes and logs the
//!   error, a ~500 ms detour.
//!
//! The paper also notes an "all logging off" configuration whose signature
//! matches native/dry-run; [`SignatureKind::LoggingOff`] models it.

use crate::einj::{EinjInterface, ErrorType};
use crate::selfish::{Detour, DetourTrace, NodeActivity};
use cesim_model::rng::Rng64;
use cesim_model::{Span, Time};
use core::fmt;

/// Which Fig. 2 configuration to synthesize.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignatureKind {
    /// Fig. 2a: background noise only.
    Native,
    /// Fig. 2b: EINJ configured every `inject_period`, never triggered.
    DryRun,
    /// Hardware correction with all logging disabled (mentioned in the
    /// Fig. 2 caption: looks like native).
    LoggingOff,
    /// Fig. 2c: OS/CMCI decoding per injection.
    SoftwareCmci,
    /// Fig. 2d: firmware/EMCA decoding; `threshold` controls how many SMIs
    /// occur per full firmware decode (the paper sets 10).
    FirmwareEmca {
        /// Firmware logging threshold (decode every `threshold`-th error).
        threshold: u32,
    },
}

impl SignatureKind {
    /// The four panels of Fig. 2, in order.
    pub fn fig2_panels() -> [SignatureKind; 4] {
        [
            SignatureKind::Native,
            SignatureKind::DryRun,
            SignatureKind::SoftwareCmci,
            SignatureKind::FirmwareEmca { threshold: 10 },
        ]
    }

    /// Panel label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            SignatureKind::Native => "Native",
            SignatureKind::DryRun => "Dry Run",
            SignatureKind::LoggingOff => "All logging off",
            SignatureKind::SoftwareCmci => "Software (OS/CMCI)",
            SignatureKind::FirmwareEmca { .. } => "Firmware (EMCA)",
        }
    }
}

impl fmt::Display for SignatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-injection SMI stall under firmware-first reporting (~7 ms).
pub const SMI_COST: Span = Span::from_ms(7);
/// Full firmware decode+log cost at the logging threshold (~500 ms).
pub const FIRMWARE_DECODE_COST: Span = Span::from_ms(500);
/// OS/CMCI decode+log cost per error (~775 µs).
pub const CMCI_COST: Span = Span::from_us(775);

/// Configuration for a signature run.
#[derive(Clone, Copy, Debug)]
pub struct SignatureConfig {
    /// Observation window (the paper's figures span several minutes).
    pub window: Span,
    /// Error-injection cadence (the paper injects every 10 s).
    pub inject_period: Span,
    /// RNG seed for background noise and duration jitter.
    pub seed: u64,
}

impl Default for SignatureConfig {
    fn default() -> Self {
        SignatureConfig {
            window: Span::from_secs(300),
            inject_period: Span::from_secs(10),
            seed: 0xB1A4E,
        }
    }
}

/// Synthesize one `selfish` trace for the given configuration.
pub fn signature(kind: SignatureKind, cfg: &SignatureConfig) -> DetourTrace {
    let mut trace = NodeActivity::blake_native().trace(cfg.window, cfg.seed);
    let mut rng = Rng64::substream(cfg.seed, 0xE1);
    let mut einj = EinjInterface::new();
    let horizon = Time::ZERO + cfg.window;

    match kind {
        SignatureKind::Native => {}
        SignatureKind::DryRun | SignatureKind::LoggingOff => {
            // Configure (and for LoggingOff also trigger) on cadence; the
            // only CPU cost is sub-threshold sysfs writes / pure hardware
            // correction, so the trace is unchanged.
            let mut t = Time::ZERO + cfg.inject_period;
            while t < horizon {
                einj.set_error_type(ErrorType::MemoryCorrectable);
                einj.set_address(0x1000_0000);
                if kind == SignatureKind::LoggingOff {
                    einj.trigger(t).expect("configured");
                }
                t += cfg.inject_period;
            }
        }
        SignatureKind::SoftwareCmci => {
            let mut extra = Vec::new();
            let mut t = Time::ZERO + cfg.inject_period;
            while t < horizon {
                einj.set_error_type(ErrorType::MemoryCorrectable);
                einj.set_address(0x1000_0000);
                einj.trigger(t).expect("configured");
                extra.push(Detour {
                    at: t,
                    dur: CMCI_COST.mul_f64(rng.jitter(0.05)),
                });
                t += cfg.inject_period;
            }
            trace.merge(&DetourTrace::new(cfg.window, Span::ZERO, extra));
        }
        SignatureKind::FirmwareEmca { threshold } => {
            assert!(threshold > 0, "firmware threshold must be positive");
            let mut extra = Vec::new();
            let mut t = Time::ZERO + cfg.inject_period;
            let mut count = 0u32;
            while t < horizon {
                einj.set_error_type(ErrorType::MemoryCorrectable);
                einj.set_address(0x1000_0000);
                einj.trigger(t).expect("configured");
                count += 1;
                // Every error raises an SMI stall …
                extra.push(Detour {
                    at: t,
                    dur: SMI_COST.mul_f64(rng.jitter(0.1)),
                });
                // … and every `threshold`-th triggers the full decode.
                if count.is_multiple_of(threshold) {
                    extra.push(Detour {
                        at: t + SMI_COST,
                        dur: FIRMWARE_DECODE_COST.mul_f64(rng.jitter(0.05)),
                    });
                }
                t += cfg.inject_period;
            }
            trace.merge(&DetourTrace::new(cfg.window, Span::ZERO, extra));
        }
    }
    trace
}

/// Synthesize all four Fig. 2 panels.
pub fn fig2(cfg: &SignatureConfig) -> Vec<(SignatureKind, DetourTrace)> {
    SignatureKind::fig2_panels()
        .into_iter()
        .map(|k| (k, signature(k, cfg)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SignatureConfig {
        SignatureConfig {
            window: Span::from_secs(300),
            inject_period: Span::from_secs(10),
            seed: 42,
        }
    }

    #[test]
    fn dry_run_matches_native() {
        let c = cfg();
        let native = signature(SignatureKind::Native, &c);
        let dry = signature(SignatureKind::DryRun, &c);
        let off = signature(SignatureKind::LoggingOff, &c);
        // Identical background seed, no added detours: exactly equal.
        assert_eq!(native.detours, dry.detours);
        assert_eq!(native.detours, off.detours);
    }

    #[test]
    fn software_adds_one_bar_per_injection() {
        let c = cfg();
        let native = signature(SignatureKind::Native, &c);
        let sw = signature(SignatureKind::SoftwareCmci, &c);
        let added = sw.count() - native.count();
        // 300 s window, injection every 10 s starting at t = 10 s.
        assert_eq!(added, 29);
        // The tall bars are ~775 µs; everything else is far smaller.
        assert_eq!(sw.count_in(Span::from_us(700), Span::from_us(900)), 29);
        assert!(sw.max_detour() < Span::from_ms(1));
    }

    #[test]
    fn firmware_has_smi_and_decode_groups() {
        let c = cfg();
        let fw = signature(SignatureKind::FirmwareEmca { threshold: 10 }, &c);
        // 29 injections → 29 SMI bars (~7 ms) and 2 decodes (~500 ms, at
        // the 10th and 20th injections).
        assert_eq!(fw.count_in(Span::from_ms(6), Span::from_ms(9)), 29);
        assert_eq!(fw.count_in(Span::from_ms(400), Span::from_ms(600)), 2);
        assert!(fw.max_detour() >= Span::from_ms(400));
    }

    #[test]
    fn fig2_produces_four_panels() {
        let panels = fig2(&cfg());
        assert_eq!(panels.len(), 4);
        assert_eq!(panels[0].0, SignatureKind::Native);
        assert!(matches!(
            panels[3].0,
            SignatureKind::FirmwareEmca { threshold: 10 }
        ));
        // Noise fractions are ordered native ≈ dryrun < software < firmware,
        // and the *added* noise (over native) is >100x larger for firmware.
        let nf: Vec<f64> = panels.iter().map(|(_, t)| t.noise_fraction()).collect();
        assert!((nf[0] - nf[1]).abs() < 1e-9);
        assert!(nf[2] > nf[1]);
        assert!(nf[3] > nf[2]);
        let sw_added = nf[2] - nf[0];
        let fw_added = nf[3] - nf[0];
        // Amortized firmware cost per injection is 7 ms + 500 ms / 10 ≈
        // 57 ms vs 775 µs for software: ~70x; assert a safe 50x.
        assert!(fw_added > sw_added * 50.0, "sw {sw_added}, fw {fw_added}");
    }

    #[test]
    fn costs_match_paper() {
        assert_eq!(CMCI_COST, Span::from_us(775));
        assert_eq!(SMI_COST, Span::from_ms(7));
        assert_eq!(FIRMWARE_DECODE_COST, Span::from_ms(500));
        // Amortized firmware cost per error at threshold 10:
        // 7 ms + 500/10 ms = 57 ms — same order as the 133 ms/event the
        // captions use (which also folds in memory-configuration readout).
        let amortized = SMI_COST + FIRMWARE_DECODE_COST / 10;
        assert!(amortized >= Span::from_ms(50));
    }

    #[test]
    fn labels() {
        assert_eq!(SignatureKind::Native.label(), "Native");
        assert!(format!("{}", SignatureKind::SoftwareCmci).contains("CMCI"));
    }
}
