//! The correctable-error noise model.
//!
//! §III-D of the paper: *"Our extension programmatically injects detours
//! that represent correctable errors. The timing of each simulated
//! correctable error is determined statistically using random numbers
//! drawn from an exponential distribution [whose mean is] the mean time
//! between correctable errors. The duration of the detour is determined by
//! the amount of time required to recover from a correctable error."*
//!
//! Each simulated node owns an independent exponential arrival stream.
//! Because the model is driven by the engine's CPU intervals as simulated
//! time advances, time lost to detours itself accrues further CE arrivals
//! — the feedback that makes high rates with expensive logging collapse
//! (the paper's "unable to make any reasonable forward progress" regime).
//!
//! CE arrivals that fall between two CPU intervals (while the rank is
//! blocked on a message) are handled at the start of the next interval;
//! total stolen CPU time is preserved, which is the quantity the study
//! measures.

use cesim_engine::NoiseModel;
use cesim_goal::Rank;
use cesim_model::rng::Rng64;
use cesim_model::{Span, Time};

/// Which ranks receive CE detours.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Every rank experiences CEs at the same rate (Figs. 4–7).
    AllRanks,
    /// Only one rank experiences CEs (Fig. 3's single-process study).
    SingleRank(Rank),
}

/// Poisson CE arrivals with a fixed per-event detour.
#[derive(Clone, Debug)]
pub struct CeNoise {
    mtbce: Span,
    detour: Span,
    scope: Scope,
    /// Next pending CE arrival per rank (simulated time).
    next: Vec<Time>,
    rngs: Vec<Rng64>,
    events: u64,
}

impl CeNoise {
    /// A CE process for `nranks` ranks with mean inter-arrival `mtbce`,
    /// per-event cost `detour`, the given `scope`, seeded deterministically
    /// from `seed` (each rank gets an independent substream).
    pub fn new(nranks: usize, mtbce: Span, detour: Span, scope: Scope, seed: u64) -> Self {
        assert!(nranks > 0, "need at least one rank");
        assert!(!mtbce.is_zero(), "MTBCE must be positive");
        if let Scope::SingleRank(r) = scope {
            assert!(r.idx() < nranks, "scoped rank {r} out of range");
        }
        let mut rngs = Vec::with_capacity(nranks);
        let mut next = Vec::with_capacity(nranks);
        for r in 0..nranks {
            let mut rng = Rng64::substream(seed, r as u64);
            let first = Time::ZERO + rng.exp_span(mtbce);
            rngs.push(rng);
            next.push(first);
        }
        CeNoise {
            mtbce,
            detour,
            scope,
            next,
            rngs,
            events: 0,
        }
    }

    /// The configured mean time between CEs per node.
    pub fn mtbce(&self) -> Span {
        self.mtbce
    }

    /// The configured per-event detour.
    pub fn detour(&self) -> Span {
        self.detour
    }

    /// Expected fraction of CPU time stolen by CE handling on an affected
    /// rank (`detour / mtbce`). At `>= 1.0` the process cannot make
    /// forward progress; experiment drivers should treat such
    /// configurations as "no progress" rather than simulating them.
    pub fn utilization(&self) -> f64 {
        self.detour.as_secs_f64() / self.mtbce.as_secs_f64()
    }

    #[inline]
    fn targeted(&self, rank: Rank) -> bool {
        match self.scope {
            Scope::AllRanks => true,
            Scope::SingleRank(r) => r == rank,
        }
    }
}

impl NoiseModel for CeNoise {
    fn stretch(&mut self, rank: Rank, start: Time, work: Span) -> Time {
        if !self.targeted(rank) || work.is_zero() {
            return start + work;
        }
        let i = rank.idx();
        // CE arrivals that fell before this interval began occurred while
        // the rank was blocked (waiting on a message): the interrupt was
        // handled during idle time and stole no application CPU. Advance
        // the Poisson process past them without injecting detours — the
        // same semantics as LogGOPSim's noise injection, which only
        // stretches *active* intervals.
        while self.next[i] < start {
            let a = self.next[i];
            self.next[i] = self.advance(i, a);
        }
        let mut t = start;
        let mut remaining = work;
        loop {
            let arrival = self.next[i];
            if arrival > t + remaining {
                break;
            }
            if arrival > t {
                // Work progresses until the CE fires.
                remaining -= arrival - t;
                t = arrival;
            }
            // Handle the CE. Arrivals that land while a previous detour is
            // still being handled (arrival <= t) queue up and are processed
            // back-to-back: the CPU is busy, so they do steal time.
            t += self.detour;
            self.events += 1;
            self.next[i] = self.advance(i, arrival);
        }
        t + remaining
    }

    fn events_injected(&self) -> u64 {
        self.events
    }
}

impl CeNoise {
    /// Next arrival strictly after `from` (a 1 ps floor defends against a
    /// zero-rounded exponential sample stalling the process).
    #[inline]
    fn advance(&mut self, i: usize, from: Time) -> Time {
        let step = self.rngs[i].exp_span(self.mtbce).max(Span::from_ps(1));
        from + step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untargeted_rank_is_identity() {
        let mut n = CeNoise::new(
            4,
            Span::from_ms(1),
            Span::from_ms(100),
            Scope::SingleRank(Rank(2)),
            7,
        );
        let end = n.stretch(Rank(0), Time::ZERO, Span::from_secs(10));
        assert_eq!(end, Time::ZERO + Span::from_secs(10));
        assert_eq!(n.events_injected(), 0);
    }

    #[test]
    fn zero_work_is_identity() {
        let mut n = CeNoise::new(1, Span::from_ns(1), Span::from_ms(1), Scope::AllRanks, 7);
        let t = Time::from_ps(123);
        assert_eq!(n.stretch(Rank(0), t, Span::ZERO), t);
    }

    #[test]
    fn stolen_time_matches_rate() {
        // 10 s of work, MTBCE 10 ms, detour 775 µs:
        // expect ~1000 events and ~0.775 s of added time.
        let mtbce = Span::from_ms(10);
        let detour = Span::from_us(775);
        let mut n = CeNoise::new(1, mtbce, detour, Scope::AllRanks, 42);
        let work = Span::from_secs(10);
        let end = n.stretch(Rank(0), Time::ZERO, work);
        let added = end.since(Time::ZERO + work);
        let events = n.events_injected();
        // Events accrue over wall time (work + detours): expected count is
        // slightly above work/mtbce. Allow generous statistical slack.
        let expect_min = 900.0;
        let expect_max = 1_200.0;
        assert!(
            (expect_min..expect_max).contains(&(events as f64)),
            "events = {events}"
        );
        assert_eq!(added, detour * events);
    }

    #[test]
    fn feedback_accrues_more_events() {
        // With detour = 0.5 * mtbce, wall time doubles, so events per unit
        // of *work* are ~2x the raw rate.
        let mtbce = Span::from_ms(10);
        let detour = Span::from_ms(5);
        let mut n = CeNoise::new(1, mtbce, detour, Scope::AllRanks, 1);
        let work = Span::from_secs(20);
        let end = n.stretch(Rank(0), Time::ZERO, work);
        let wall = end.since(Time::ZERO).as_secs_f64();
        // wall ≈ work / (1 - ρ) = 20 / 0.5 = 40 s.
        assert!((35.0..45.0).contains(&wall), "wall = {wall}");
        assert!((n.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arrivals_in_idle_gaps_are_absorbed() {
        let mtbce = Span::from_ms(1);
        let detour = Span::from_us(10);
        let mut n = CeNoise::new(1, mtbce, detour, Scope::AllRanks, 3);
        // First interval: 5 ms of work starting at 0.
        let end1 = n.stretch(Rank(0), Time::ZERO, Span::from_ms(5));
        let e1 = n.events_injected();
        assert!(e1 >= 1);
        // Long idle gap, then another interval: the ~50 arrivals from the
        // gap were handled while the rank was blocked and steal nothing;
        // only arrivals inside the new interval inject detours.
        let start2 = end1 + Span::from_ms(50);
        let end2 = n.stretch(Rank(0), start2, Span::from_ms(5));
        let e2 = n.events_injected() - e1;
        assert!(e2 <= 15, "gap arrivals must not pile up: {e2}");
        assert_eq!(end2.since(start2), Span::from_ms(5) + detour * e2);
    }

    #[test]
    fn high_utilization_converges_with_idle_absorption() {
        // ρ = 0.665 (firmware at MTBCE 200 ms): an interval stretches by
        // ~1/(1-ρ) ≈ 3x and must terminate (regression test for the
        // deferred-arrival runaway).
        let mut n = CeNoise::new(
            1,
            Span::from_ms(200),
            Span::from_ms(133),
            Scope::AllRanks,
            2,
        );
        let work = Span::from_secs(10);
        let end = n.stretch(Rank(0), Time::ZERO, work);
        let wall = end.since(Time::ZERO).as_secs_f64();
        assert!((20.0..50.0).contains(&wall), "wall = {wall}");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut n = CeNoise::new(
                2,
                Span::from_ms(2),
                Span::from_us(100),
                Scope::AllRanks,
                seed,
            );
            let a = n.stretch(Rank(0), Time::ZERO, Span::from_secs(1));
            let b = n.stretch(Rank(1), Time::ZERO, Span::from_secs(1));
            (a, b, n.events_injected())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn ranks_have_independent_streams() {
        let mut n = CeNoise::new(2, Span::from_ms(1), Span::from_us(1), Scope::AllRanks, 5);
        let a = n.stretch(Rank(0), Time::ZERO, Span::from_secs(1));
        let b = n.stretch(Rank(1), Time::ZERO, Span::from_secs(1));
        assert_ne!(a, b, "identical streams would be a seeding bug");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scope_bounds_checked() {
        CeNoise::new(
            2,
            Span::from_ms(1),
            Span::ZERO,
            Scope::SingleRank(Rank(5)),
            0,
        );
    }

    #[test]
    fn stretch_never_shrinks() {
        let mut n = CeNoise::new(1, Span::from_us(50), Span::from_us(10), Scope::AllRanks, 11);
        let mut t = Time::ZERO;
        for _ in 0..100 {
            let w = Span::from_us(17);
            let end = n.stretch(Rank(0), t, w);
            assert!(end >= t + w);
            t = end;
        }
    }
}
