//! # cesim-trace
//!
//! The trace tool-chain substrate of the paper's methodology (§III-C):
//! LogGOPSim consumes **MPI execution traces** — per-rank logs of MPI
//! calls with enter/exit timestamps, collected by a PMPI profiling layer
//! (liballprof) — converts them into dependency schedules, and
//! **extrapolates** a `p`-rank trace to `k·p` ranks (exact for
//! collectives, pattern-preserving for point-to-point).
//!
//! The original traces of the paper are not public, so this crate
//! provides the full pipeline over the same kind of artifact:
//!
//! * [`event`] — the MPI call vocabulary (blocking and non-blocking
//!   point-to-point, waits, and the collectives the workloads use);
//! * [`format`] — a line-oriented text format with enter/exit
//!   timestamps, plus a writer;
//! * [`parse`] — the parser (with per-line diagnostics);
//! * [`convert`] — trace → [`cesim_goal::Schedule`]: compute intervals
//!   are reconstructed from timestamp gaps, non-blocking requests are
//!   tracked to their waits, collectives are expanded through
//!   `cesim-goal`'s algorithms;
//! * [`extrapolate`] — the `k·p` rank extrapolation;
//! * [`generate`] — emits traces *from* a simulation of any schedule,
//!   closing the loop for round-trip testing (and standing in for
//!   running instrumented applications, which this environment cannot).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod event;
pub mod extrapolate;
pub mod format;
pub mod generate;
pub mod parse;

pub use convert::{convert, ConvertError};
pub use event::{MpiCall, TraceEvent};
pub use extrapolate::extrapolate;
pub use format::{to_text, Trace, TraceSet};
pub use parse::{parse, ParseError};
