//! Trace → schedule conversion.
//!
//! Reproduces what LogGOPSim's `txt2bin`/schedgen stage does with a
//! liballprof trace:
//!
//! * the **gap** between consecutive MPI calls on a rank becomes a `calc`
//!   operation (the application's local computation — the only place the
//!   recorded timestamps are trusted);
//! * the time *inside* MPI calls is discarded — the LogGOPS model
//!   recomputes it from first principles;
//! * non-blocking requests connect their `Isend`/`Irecv` to the `Wait`
//!   that completes them;
//! * collectives (identical sequence on every rank, enforced by
//!   validation) are expanded into point-to-point algorithms via
//!   `cesim-goal`, phase-aligned across ranks.

#![allow(clippy::needless_range_loop)] // parallel per-rank arrays

use crate::event::{MpiCall, ReqId};
use crate::format::TraceSet;
use cesim_goal::builder::{ScheduleBuilder, TagPool};
use cesim_goal::collectives::{
    allreduce_recursive_doubling, barrier_dissemination, bcast_binomial, reduce_binomial,
    CollectiveCosts,
};
use cesim_goal::{OpId, Rank, Schedule, Tag};
use cesim_model::Time;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why conversion failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvertError {
    /// The trace set failed structural validation.
    Invalid(String),
    /// A user tag collides with the collective-expansion tag space.
    TagTooLarge {
        /// Offending rank.
        rank: usize,
        /// Offending tag.
        tag: u32,
    },
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::Invalid(m) => write!(f, "invalid trace: {m}"),
            ConvertError::TagTooLarge { rank, tag } => write!(
                f,
                "rank {rank}: tag {tag} collides with the collective tag space (>= 2^30)"
            ),
        }
    }
}

impl Error for ConvertError {}

/// Convert a validated trace set into a simulatable schedule.
pub fn convert(set: &TraceSet, costs: &CollectiveCosts) -> Result<Schedule, ConvertError> {
    set.validate().map_err(ConvertError::Invalid)?;
    let n = set.num_ranks();
    let mut b = ScheduleBuilder::new(n);
    let mut tags = TagPool::new();

    // Split every rank's event stream into segments separated by
    // collectives (the collective sequence is identical across ranks).
    // Conversion proceeds phase by phase so collective expansion can
    // append ops for all ranks while keeping dependencies backward.
    let num_collectives = set.ranks[0]
        .events
        .iter()
        .filter(|e| e.call.is_collective())
        .count();

    // Per-rank walk state.
    struct WalkState {
        /// Next event index to consume.
        idx: usize,
        /// End of the previous call (for compute-gap reconstruction).
        clock: Time,
        /// Current chain head.
        cur: OpId,
        /// Open non-blocking requests → their op.
        open: HashMap<ReqId, OpId>,
    }
    let mut walks: Vec<WalkState> = (0..n)
        .map(|r| WalkState {
            idx: 0,
            clock: Time::ZERO,
            cur: b.join(Rank::from(r), &[]),
            open: HashMap::new(),
        })
        .collect();

    // Convert one rank's events up to (not including) the next collective.
    // Returns the collective call at which it stopped, if any.
    fn advance(
        b: &mut ScheduleBuilder,
        set: &TraceSet,
        r: usize,
        w: &mut WalkState,
    ) -> Result<Option<MpiCall>, ConvertError> {
        let rank = Rank::from(r);
        let events = &set.ranks[r].events;
        while w.idx < events.len() {
            let ev = &events[w.idx];
            if ev.call.is_collective() {
                // Account the compute gap before the collective, then stop.
                let gap = ev.enter.saturating_since(w.clock);
                if !gap.is_zero() {
                    w.cur = b.calc(rank, gap, &[w.cur]);
                }
                w.clock = ev.exit;
                w.idx += 1;
                return Ok(Some(ev.call.clone()));
            }
            let gap = ev.enter.saturating_since(w.clock);
            if !gap.is_zero() {
                w.cur = b.calc(rank, gap, &[w.cur]);
            }
            w.clock = ev.exit;
            let check_tag = |tag: u32| -> Result<Tag, ConvertError> {
                if tag >= cesim_goal::op::COLLECTIVE_TAG_BASE {
                    Err(ConvertError::TagTooLarge { rank: r, tag })
                } else {
                    Ok(Tag(tag))
                }
            };
            match ev.call.clone() {
                MpiCall::Send { peer, bytes, tag } => {
                    w.cur = b.send(rank, Rank(peer), bytes, check_tag(tag)?, &[w.cur]);
                }
                MpiCall::Recv { peer, bytes, tag } => {
                    let src = (peer != u32::MAX).then_some(Rank(peer));
                    w.cur = b.recv(rank, src, bytes, check_tag(tag)?, &[w.cur]);
                }
                MpiCall::Isend {
                    peer,
                    bytes,
                    tag,
                    req,
                } => {
                    // Non-blocking: the program does not wait for the op;
                    // CPU serialization preserves call order.
                    let op = b.send(rank, Rank(peer), bytes, check_tag(tag)?, &[w.cur]);
                    w.open.insert(req, op);
                }
                MpiCall::Irecv {
                    peer,
                    bytes,
                    tag,
                    req,
                } => {
                    let src = (peer != u32::MAX).then_some(Rank(peer));
                    let op = b.recv(rank, src, bytes, check_tag(tag)?, &[w.cur]);
                    w.open.insert(req, op);
                }
                MpiCall::Wait { req } => {
                    let op = w.open.remove(&req).expect("validated: request open");
                    w.cur = b.join(rank, &[w.cur, op]);
                }
                MpiCall::Waitall { reqs } => {
                    let mut deps = vec![w.cur];
                    for req in reqs {
                        deps.push(w.open.remove(&req).expect("validated: request open"));
                    }
                    w.cur = b.join(rank, &deps);
                }
                c => unreachable!("collective {c:?} handled above"),
            }
            w.idx += 1;
        }
        Ok(None)
    }

    for _phase in 0..=num_collectives {
        let mut stop: Option<MpiCall> = None;
        for r in 0..n {
            let s = advance(&mut b, set, r, &mut walks[r])?;
            if r == 0 {
                stop = s;
            }
        }
        if let Some(coll) = stop {
            let entry: Vec<OpId> = walks.iter().map(|w| w.cur).collect();
            let exit = match coll {
                MpiCall::Allreduce { bytes } => {
                    allreduce_recursive_doubling(&mut b, &mut tags, bytes, costs, &entry)
                }
                MpiCall::Barrier => barrier_dissemination(&mut b, &mut tags, &entry),
                MpiCall::Bcast { root, bytes } => {
                    bcast_binomial(&mut b, &mut tags, Rank(root), bytes, &entry)
                }
                MpiCall::Reduce { root, bytes } => {
                    reduce_binomial(&mut b, &mut tags, Rank(root), bytes, costs, &entry)
                }
                other => unreachable!("{other:?} is not a collective"),
            };
            for (w, e) in walks.iter_mut().zip(exit) {
                w.cur = e;
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::format::Trace;
    use cesim_goal::OpKind;
    use cesim_model::Span;

    fn ev(enter: u64, exit: u64, call: MpiCall) -> TraceEvent {
        TraceEvent {
            enter: Time::from_ps(enter),
            exit: Time::from_ps(exit),
            call,
        }
    }

    #[test]
    fn compute_gaps_become_calcs() {
        let set = TraceSet {
            ranks: vec![
                Trace {
                    events: vec![
                        ev(
                            1_000,
                            1_100,
                            MpiCall::Send {
                                peer: 1,
                                bytes: 8,
                                tag: 0,
                            },
                        ),
                        ev(
                            5_000,
                            5_100,
                            MpiCall::Send {
                                peer: 1,
                                bytes: 8,
                                tag: 0,
                            },
                        ),
                    ],
                },
                Trace {
                    events: vec![
                        ev(
                            0,
                            100,
                            MpiCall::Recv {
                                peer: 0,
                                bytes: 8,
                                tag: 0,
                            },
                        ),
                        ev(
                            100,
                            200,
                            MpiCall::Recv {
                                peer: 0,
                                bytes: 8,
                                tag: 0,
                            },
                        ),
                    ],
                },
            ],
        };
        let s = convert(&set, &CollectiveCosts::default()).unwrap();
        s.validate().unwrap();
        // Rank 0: root join + calc(1000) + send + calc(3900) + send.
        let kinds: Vec<_> = s.ranks[0].ops.iter().map(|o| o.kind).collect();
        assert!(matches!(kinds[1], OpKind::Calc { dur } if dur == Span::from_ps(1_000)));
        assert!(kinds[2].is_send());
        assert!(matches!(kinds[3], OpKind::Calc { dur } if dur == Span::from_ps(3_900)));
        assert!(kinds[4].is_send());
    }

    #[test]
    fn nonblocking_requests_connect_to_waits() {
        let set = TraceSet {
            ranks: vec![
                Trace {
                    events: vec![
                        ev(
                            0,
                            10,
                            MpiCall::Irecv {
                                peer: 1,
                                bytes: 8,
                                tag: 0,
                                req: ReqId(0),
                            },
                        ),
                        ev(
                            10,
                            20,
                            MpiCall::Isend {
                                peer: 1,
                                bytes: 8,
                                tag: 1,
                                req: ReqId(1),
                            },
                        ),
                        ev(
                            1_000,
                            1_010,
                            MpiCall::Waitall {
                                reqs: vec![ReqId(0), ReqId(1)],
                            },
                        ),
                    ],
                },
                Trace {
                    events: vec![
                        ev(
                            0,
                            10,
                            MpiCall::Send {
                                peer: 0,
                                bytes: 8,
                                tag: 0,
                            },
                        ),
                        ev(
                            10,
                            20,
                            MpiCall::Recv {
                                peer: 0,
                                bytes: 8,
                                tag: 1,
                            },
                        ),
                    ],
                },
            ],
        };
        let s = convert(&set, &CollectiveCosts::default()).unwrap();
        s.validate().unwrap();
        // The waitall join must depend on both request ops.
        let r0 = &s.ranks[0].ops;
        let join = r0.last().unwrap();
        assert!(join.kind.is_calc());
        assert_eq!(join.deps.len(), 3); // chain head + two requests
    }

    #[test]
    fn collectives_are_phase_aligned_and_expanded() {
        let n = 5;
        let mk = |_r: usize| Trace {
            events: vec![
                ev(0, 10, MpiCall::Allreduce { bytes: 8 }),
                ev(2_000, 2_010, MpiCall::Barrier),
            ],
        };
        let set = TraceSet {
            ranks: (0..n).map(mk).collect(),
        };
        let s = convert(&set, &CollectiveCosts::default()).unwrap();
        s.validate().unwrap();
        // Expanded sends exist (no raw collective ops in the IR).
        assert!(s.stats().sends > 0);
        // And the schedule actually simulates to completion.
        // (engine is a dev-dependency of this crate)
        let r = cesim_engine::simulate(
            &s,
            &cesim_model::LogGopsParams::xc40(),
            &mut cesim_engine::NoNoise,
        )
        .unwrap();
        assert_eq!(r.ops_executed, s.total_ops() as u64);
    }

    #[test]
    fn mixed_p2p_and_collectives_simulate() {
        let set = TraceSet {
            ranks: vec![
                Trace {
                    events: vec![
                        ev(
                            100,
                            110,
                            MpiCall::Isend {
                                peer: 1,
                                bytes: 70_000,
                                tag: 5,
                                req: ReqId(0),
                            },
                        ),
                        ev(500, 510, MpiCall::Allreduce { bytes: 64 }),
                        ev(900, 910, MpiCall::Wait { req: ReqId(0) }),
                    ],
                },
                Trace {
                    events: vec![
                        ev(
                            0,
                            10,
                            MpiCall::Irecv {
                                peer: 0,
                                bytes: 70_000,
                                tag: 5,
                                req: ReqId(0),
                            },
                        ),
                        ev(400, 410, MpiCall::Allreduce { bytes: 64 }),
                        ev(800, 810, MpiCall::Wait { req: ReqId(0) }),
                    ],
                },
            ],
        };
        let s = convert(&set, &CollectiveCosts::default()).unwrap();
        s.validate().unwrap();
        let r = cesim_engine::simulate(
            &s,
            &cesim_model::LogGopsParams::xc40(),
            &mut cesim_engine::NoNoise,
        )
        .unwrap();
        // The 70 kB message crosses the rendezvous threshold.
        assert!(r.control_msgs >= 2);
    }

    #[test]
    fn big_tags_rejected() {
        let set = TraceSet {
            ranks: vec![
                Trace {
                    events: vec![ev(
                        0,
                        1,
                        MpiCall::Send {
                            peer: 1,
                            bytes: 8,
                            tag: 1 << 30,
                        },
                    )],
                },
                Trace {
                    events: vec![ev(
                        0,
                        1,
                        MpiCall::Recv {
                            peer: 0,
                            bytes: 8,
                            tag: 1 << 30,
                        },
                    )],
                },
            ],
        };
        assert!(matches!(
            convert(&set, &CollectiveCosts::default()),
            Err(ConvertError::TagTooLarge { .. })
        ));
    }

    #[test]
    fn invalid_traces_rejected() {
        let set = TraceSet { ranks: vec![] };
        assert!(matches!(
            convert(&set, &CollectiveCosts::default()),
            Err(ConvertError::Invalid(_))
        ));
    }
}
