//! Trace extrapolation — the paper's §III-C scaling mechanism.
//!
//! LogGOPSim "can also extrapolate traces; a trace collected by running
//! the application with `p` processes can be extrapolated to simulate the
//! performance of the application running with `k·p` processes. The
//! extrapolation produces exact communication patterns for MPI collective
//! operations and approximates point-to-point communications."
//!
//! Implementation: the extrapolated job consists of `k` copies of the
//! traced job.
//!
//! * **Point-to-point** traffic is replicated within each copy
//!   (`peer' = copy·p + peer`) — the pattern, message sizes, tags and
//!   timing of the original ranks are preserved exactly; inter-copy
//!   locality mirrors the weak-scaling assumption behind the paper's
//!   one-process-per-node runs.
//! * **Collectives** span *all* `k·p` ranks (their expansion in
//!   [`crate::convert`] is exact at any scale), with rooted collectives
//!   anchored at the original root in copy 0.
//!
//! Timestamps (and therefore reconstructed compute intervals) carry over
//! unchanged.

use crate::event::MpiCall;
use crate::format::{Trace, TraceSet};

/// Extrapolate a `p`-rank trace set to `k·p` ranks.
///
/// Panics if `k == 0`.
pub fn extrapolate(set: &TraceSet, k: usize) -> TraceSet {
    assert!(k > 0, "extrapolation factor must be at least 1");
    let p = set.num_ranks();
    let mut ranks = Vec::with_capacity(p * k);
    for copy in 0..k {
        let base = (copy * p) as u32;
        for trace in &set.ranks {
            let events = trace
                .events
                .iter()
                .map(|ev| {
                    let mut ev = ev.clone();
                    ev.call = match ev.call {
                        MpiCall::Send { peer, bytes, tag } => MpiCall::Send {
                            peer: peer + base,
                            bytes,
                            tag,
                        },
                        MpiCall::Recv { peer, bytes, tag } => MpiCall::Recv {
                            peer: if peer == u32::MAX { peer } else { peer + base },
                            bytes,
                            tag,
                        },
                        MpiCall::Isend {
                            peer,
                            bytes,
                            tag,
                            req,
                        } => MpiCall::Isend {
                            peer: peer + base,
                            bytes,
                            tag,
                            req,
                        },
                        MpiCall::Irecv {
                            peer,
                            bytes,
                            tag,
                            req,
                        } => MpiCall::Irecv {
                            peer: if peer == u32::MAX { peer } else { peer + base },
                            bytes,
                            tag,
                            req,
                        },
                        // Collectives become global; rooted ones keep the
                        // original root (in copy 0).
                        other => other,
                    };
                    ev
                })
                .collect();
            ranks.push(Trace { events });
        }
    }
    TraceSet { ranks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ReqId, TraceEvent};
    use cesim_goal::collectives::CollectiveCosts;
    use cesim_model::Time;

    fn ev(enter: u64, exit: u64, call: MpiCall) -> TraceEvent {
        TraceEvent {
            enter: Time::from_ps(enter),
            exit: Time::from_ps(exit),
            call,
        }
    }

    /// A 2-rank ping + allreduce trace.
    fn base() -> TraceSet {
        TraceSet {
            ranks: vec![
                Trace {
                    events: vec![
                        ev(
                            100,
                            110,
                            MpiCall::Isend {
                                peer: 1,
                                bytes: 64,
                                tag: 7,
                                req: ReqId(0),
                            },
                        ),
                        ev(200, 210, MpiCall::Wait { req: ReqId(0) }),
                        ev(1_000, 1_100, MpiCall::Allreduce { bytes: 8 }),
                    ],
                },
                Trace {
                    events: vec![
                        ev(
                            0,
                            10,
                            MpiCall::Recv {
                                peer: 0,
                                bytes: 64,
                                tag: 7,
                            },
                        ),
                        ev(900, 1_000, MpiCall::Allreduce { bytes: 8 }),
                    ],
                },
            ],
        }
    }

    #[test]
    fn identity_at_k1() {
        let t = base();
        assert_eq!(extrapolate(&t, 1), t);
    }

    #[test]
    fn p2p_stays_within_copies() {
        let t = extrapolate(&base(), 3);
        assert_eq!(t.num_ranks(), 6);
        t.validate().unwrap();
        // Copy 2's rank 0 (global rank 4) sends to global rank 5.
        match &t.ranks[4].events[0].call {
            MpiCall::Isend { peer, .. } => assert_eq!(*peer, 5),
            other => panic!("unexpected {other:?}"),
        }
        // Copy 2's rank 1 receives from global rank 4.
        match &t.ranks[5].events[0].call {
            MpiCall::Recv { peer, .. } => assert_eq!(*peer, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn collectives_become_global_and_exact() {
        let t = extrapolate(&base(), 4);
        let s = convert_ok(&t);
        // Allreduce over 8 ranks (power of two): exactly 8·log2(8) sends
        // for the collective, plus 4 point-to-point pings.
        assert_eq!(s.stats().sends, 8 * 3 + 4);
    }

    fn convert_ok(t: &TraceSet) -> cesim_goal::Schedule {
        let s = crate::convert::convert(t, &CollectiveCosts::default()).unwrap();
        s.validate().unwrap();
        s
    }

    #[test]
    fn extrapolated_traces_simulate() {
        for k in [1usize, 2, 5] {
            let t = extrapolate(&base(), k);
            let s = convert_ok(&t);
            let r = cesim_engine::simulate(
                &s,
                &cesim_model::LogGopsParams::xc40(),
                &mut cesim_engine::NoNoise,
            )
            .unwrap();
            assert_eq!(r.ops_executed, s.total_ops() as u64, "k = {k}");
        }
    }

    #[test]
    fn any_source_is_preserved() {
        let t = TraceSet {
            ranks: vec![
                Trace {
                    events: vec![ev(
                        0,
                        1,
                        MpiCall::Recv {
                            peer: u32::MAX,
                            bytes: 4,
                            tag: 0,
                        },
                    )],
                },
                Trace {
                    events: vec![ev(
                        0,
                        1,
                        MpiCall::Send {
                            peer: 0,
                            bytes: 4,
                            tag: 0,
                        },
                    )],
                },
            ],
        };
        let e = extrapolate(&t, 2);
        assert!(matches!(
            e.ranks[2].events[0].call,
            MpiCall::Recv { peer: u32::MAX, .. }
        ));
        e.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn k_zero_rejected() {
        extrapolate(&base(), 0);
    }
}
