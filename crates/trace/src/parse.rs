//! Parser for the trace text format.

use crate::event::{MpiCall, ReqId, TraceEvent};
use crate::format::{Trace, TraceSet};
use cesim_model::Time;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Parse `key=value` fields from the tail of an event line.
fn fields<'a>(toks: &'a [&'a str], ln: usize) -> Result<HashMap<&'a str, &'a str>, ParseError> {
    let mut map = HashMap::new();
    for t in toks {
        let Some((k, v)) = t.split_once('=') else {
            return err(ln, format!("expected key=value, got '{t}'"));
        };
        if map.insert(k, v).is_some() {
            return err(ln, format!("duplicate field '{k}'"));
        }
    }
    Ok(map)
}

fn get_num<T: std::str::FromStr>(
    map: &HashMap<&str, &str>,
    key: &str,
    ln: usize,
) -> Result<T, ParseError> {
    match map.get(key) {
        Some(v) => v.parse().map_err(|_| ParseError {
            line: ln,
            message: format!("bad {key} '{v}'"),
        }),
        None => err(ln, format!("missing field '{key}'")),
    }
}

fn get_peer(map: &HashMap<&str, &str>, ln: usize) -> Result<u32, ParseError> {
    match map.get("peer") {
        Some(&"any") => Ok(u32::MAX),
        Some(v) => v.parse().map_err(|_| ParseError {
            line: ln,
            message: format!("bad peer '{v}'"),
        }),
        None => err(ln, "missing field 'peer'"),
    }
}

/// Parse the text format into a [`TraceSet`] (structurally validated).
pub fn parse(text: &str) -> Result<TraceSet, ParseError> {
    let mut ranks: Option<Vec<Trace>> = None;
    let mut cur: Option<usize> = None;
    for (ln0, raw) in text.lines().enumerate() {
        let ln = ln0 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "ranks" => {
                if ranks.is_some() {
                    return err(ln, "duplicate 'ranks' header");
                }
                let n: usize = match toks.get(1).and_then(|t| t.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => return err(ln, "expected 'ranks <positive count>'"),
                };
                ranks = Some(vec![Trace::default(); n]);
            }
            "rank" => {
                let nr = match &ranks {
                    Some(r) => r.len(),
                    None => return err(ln, "'rank' before 'ranks' header"),
                };
                if cur.is_some() {
                    return err(ln, "nested rank block");
                }
                let r: usize = match toks.get(1).and_then(|t| t.parse().ok()) {
                    Some(r) if r < nr => r,
                    Some(r) => return err(ln, format!("rank {r} out of range")),
                    None => return err(ln, "expected 'rank <index> {'"),
                };
                if toks.get(2) != Some(&"{") {
                    return err(ln, "expected '{'");
                }
                cur = Some(r);
            }
            "}" => {
                if cur.take().is_none() {
                    return err(ln, "'}' without open rank block");
                }
            }
            _ => {
                let r = match cur {
                    Some(r) => r,
                    None => return err(ln, "event outside a rank block"),
                };
                if toks.len() < 3 {
                    return err(ln, "truncated event (need enter exit name ...)");
                }
                let enter: u64 = toks[0].parse().map_err(|_| ParseError {
                    line: ln,
                    message: format!("bad enter time '{}'", toks[0]),
                })?;
                let exit: u64 = toks[1].parse().map_err(|_| ParseError {
                    line: ln,
                    message: format!("bad exit time '{}'", toks[1]),
                })?;
                let map = fields(&toks[3..], ln)?;
                let call = match toks[2] {
                    "Send" => MpiCall::Send {
                        peer: get_peer(&map, ln)?,
                        bytes: get_num(&map, "bytes", ln)?,
                        tag: get_num(&map, "tag", ln)?,
                    },
                    "Recv" => MpiCall::Recv {
                        peer: get_peer(&map, ln)?,
                        bytes: get_num(&map, "bytes", ln)?,
                        tag: get_num(&map, "tag", ln)?,
                    },
                    "Isend" => MpiCall::Isend {
                        peer: get_peer(&map, ln)?,
                        bytes: get_num(&map, "bytes", ln)?,
                        tag: get_num(&map, "tag", ln)?,
                        req: ReqId(get_num(&map, "req", ln)?),
                    },
                    "Irecv" => MpiCall::Irecv {
                        peer: get_peer(&map, ln)?,
                        bytes: get_num(&map, "bytes", ln)?,
                        tag: get_num(&map, "tag", ln)?,
                        req: ReqId(get_num(&map, "req", ln)?),
                    },
                    "Wait" => MpiCall::Wait {
                        req: ReqId(get_num(&map, "req", ln)?),
                    },
                    "Waitall" => {
                        let list = map.get("reqs").ok_or(ParseError {
                            line: ln,
                            message: "missing field 'reqs'".into(),
                        })?;
                        let mut reqs = Vec::new();
                        for part in list.split(',') {
                            match part.parse::<u32>() {
                                Ok(v) => reqs.push(ReqId(v)),
                                Err(_) => return err(ln, format!("bad request '{part}'")),
                            }
                        }
                        MpiCall::Waitall { reqs }
                    }
                    "Allreduce" => MpiCall::Allreduce {
                        bytes: get_num(&map, "bytes", ln)?,
                    },
                    "Barrier" => MpiCall::Barrier,
                    "Bcast" => MpiCall::Bcast {
                        root: get_num(&map, "root", ln)?,
                        bytes: get_num(&map, "bytes", ln)?,
                    },
                    "Reduce" => MpiCall::Reduce {
                        root: get_num(&map, "root", ln)?,
                        bytes: get_num(&map, "bytes", ln)?,
                    },
                    other => return err(ln, format!("unknown MPI call '{other}'")),
                };
                ranks.as_mut().expect("inside a rank block")[r]
                    .events
                    .push(TraceEvent {
                        enter: Time::from_ps(enter),
                        exit: Time::from_ps(exit),
                        call,
                    });
            }
        }
    }
    if cur.is_some() {
        return err(text.lines().count(), "unterminated rank block");
    }
    let set = match ranks {
        Some(r) => TraceSet { ranks: r },
        None => return err(1, "missing 'ranks' header"),
    };
    set.validate().map_err(|m| ParseError {
        line: 0,
        message: m,
    })?;
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::to_text;

    const SAMPLE: &str = "\
# cesim-trace
ranks 2
rank 0 {
  0 100 Isend peer=1 bytes=64 tag=3 req=0
  100 150 Irecv peer=any bytes=64 tag=4 req=1
  5000 5200 Waitall reqs=0,1
  6000 7000 Allreduce bytes=8
}
rank 1 {
  10 200 Recv peer=0 bytes=64 tag=3
  300 400 Send peer=0 bytes=64 tag=4
  6000 7000 Allreduce bytes=8
}
";

    #[test]
    fn roundtrip() {
        let set = parse(SAMPLE).unwrap();
        assert_eq!(set.num_ranks(), 2);
        assert_eq!(set.total_events(), 7);
        let again = parse(&to_text(&set)).unwrap();
        assert_eq!(set, again);
    }

    #[test]
    fn error_positions() {
        let bad = "ranks 1\nrank 0 {\n  5 3 Barrier\n}\n";
        // exit < enter is caught by validation (line 0 marker).
        let e = parse(bad).unwrap_err();
        assert!(e.message.contains("exit before enter"), "{e}");
        let bad2 = "ranks 1\nrank 0 {\n  1 2 Send bytes=8 tag=0\n}\n";
        let e2 = parse(bad2).unwrap_err();
        assert_eq!(e2.line, 3);
        assert!(e2.message.contains("peer"), "{e2}");
    }

    #[test]
    fn rejects_unknown_call_and_fields() {
        let e = parse("ranks 1\nrank 0 {\n  1 2 Sendrecv peer=0\n}\n").unwrap_err();
        assert!(e.message.contains("unknown MPI call"));
        let e = parse("ranks 1\nrank 0 {\n  1 2 Barrier junk\n}\n").unwrap_err();
        assert!(e.message.contains("key=value"));
        let e = parse("ranks 1\nrank 0 {\n  1 2 Wait req=0 req=1\n}\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn rejects_structure_errors() {
        assert!(parse("").is_err());
        assert!(parse("ranks 0\n").is_err());
        assert!(parse("rank 0 {\n}\n").is_err());
        assert!(parse("ranks 1\nrank 0 {\n").is_err());
        assert!(parse("ranks 1\n}\n").is_err());
        assert!(parse("ranks 1\nrank 5 {\n}\n").is_err());
        assert!(parse("ranks 1\n1 2 Barrier\n").is_err());
    }

    #[test]
    fn any_source_parses() {
        let set = parse(
            "ranks 2\nrank 0 {\n  1 2 Recv peer=any bytes=4 tag=0\n}\nrank 1 {\n  1 2 Send peer=0 bytes=4 tag=0\n}\n",
        )
        .unwrap();
        assert!(matches!(
            set.ranks[0].events[0].call,
            MpiCall::Recv { peer: u32::MAX, .. }
        ));
    }
}
