//! The trace container and its text serialization.
//!
//! Format (timestamps in integer picoseconds):
//!
//! ```text
//! # cesim-trace
//! ranks 2
//! rank 0 {
//!   1000 2500 Send peer=1 bytes=64 tag=3
//!   4000 4100 Isend peer=1 bytes=8 tag=1 req=0
//!   4100 4200 Irecv peer=any bytes=8 tag=1 req=1
//!   9000 9500 Waitall reqs=0,1
//!   10000 12000 Allreduce bytes=8
//! }
//! rank 1 { ... }
//! ```

use crate::event::{MpiCall, ReqId, TraceEvent};
use cesim_model::Time;
use std::collections::HashSet;
use std::fmt::Write as _;

/// One rank's recorded call sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events in call order.
    pub events: Vec<TraceEvent>,
}

/// A whole job's traces (one per rank).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSet {
    /// Per-rank traces; index = rank.
    pub ranks: Vec<Trace>,
}

impl TraceSet {
    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Total recorded events.
    pub fn total_events(&self) -> usize {
        self.ranks.iter().map(|t| t.events.len()).sum()
    }

    /// Structural validation: monotone timestamps, peers in range, each
    /// request created exactly once and waited exactly once, and all
    /// ranks observing the same collective sequence.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_ranks();
        if n == 0 {
            return Err("trace set has no ranks".into());
        }
        for (r, trace) in self.ranks.iter().enumerate() {
            let mut clock = Time::ZERO;
            let mut open: HashSet<ReqId> = HashSet::new();
            let mut created: HashSet<ReqId> = HashSet::new();
            for (i, ev) in trace.events.iter().enumerate() {
                if ev.enter < clock {
                    return Err(format!(
                        "rank {r} event {i}: enter {} before previous exit {clock}",
                        ev.enter
                    ));
                }
                if ev.exit < ev.enter {
                    return Err(format!("rank {r} event {i}: exit before enter"));
                }
                clock = ev.exit;
                let check_peer = |peer: u32, what: &str| -> Result<(), String> {
                    if peer != u32::MAX && peer as usize >= n {
                        return Err(format!(
                            "rank {r} event {i}: {what} peer {peer} out of range"
                        ));
                    }
                    if peer as usize == r {
                        return Err(format!("rank {r} event {i}: self-{what}"));
                    }
                    Ok(())
                };
                match &ev.call {
                    MpiCall::Send { peer, .. } => check_peer(*peer, "send")?,
                    MpiCall::Recv { peer, .. } => {
                        if *peer != u32::MAX {
                            check_peer(*peer, "recv")?;
                        }
                    }
                    MpiCall::Isend { peer, req, .. } => {
                        check_peer(*peer, "send")?;
                        if !created.insert(*req) {
                            return Err(format!("rank {r} event {i}: request {req} reused"));
                        }
                        open.insert(*req);
                    }
                    MpiCall::Irecv { peer, req, .. } => {
                        if *peer != u32::MAX {
                            check_peer(*peer, "recv")?;
                        }
                        if !created.insert(*req) {
                            return Err(format!("rank {r} event {i}: request {req} reused"));
                        }
                        open.insert(*req);
                    }
                    MpiCall::Wait { req } => {
                        if !open.remove(req) {
                            return Err(format!(
                                "rank {r} event {i}: wait on unknown/completed {req}"
                            ));
                        }
                    }
                    MpiCall::Waitall { reqs } => {
                        for req in reqs {
                            if !open.remove(req) {
                                return Err(format!(
                                    "rank {r} event {i}: waitall on unknown/completed {req}"
                                ));
                            }
                        }
                    }
                    MpiCall::Bcast { root, .. } | MpiCall::Reduce { root, .. } => {
                        if *root as usize >= n {
                            return Err(format!("rank {r} event {i}: root {root} out of range"));
                        }
                    }
                    MpiCall::Allreduce { .. } | MpiCall::Barrier => {}
                }
            }
            if let Some(req) = open.iter().next() {
                return Err(format!("rank {r}: request {req} never waited"));
            }
        }
        // Collective sequences must agree across ranks.
        fn coll_seq(t: &Trace) -> Vec<&MpiCall> {
            t.events
                .iter()
                .filter(|e| e.call.is_collective())
                .map(|e| &e.call)
                .collect()
        }
        let first = coll_seq(&self.ranks[0]);
        for (r, t) in self.ranks.iter().enumerate().skip(1) {
            let seq = coll_seq(t);
            if seq != first {
                return Err(format!(
                    "rank {r}: collective sequence diverges from rank 0 ({} vs {} collectives)",
                    seq.len(),
                    first.len()
                ));
            }
        }
        Ok(())
    }
}

fn peer_str(peer: u32) -> String {
    if peer == u32::MAX {
        "any".into()
    } else {
        peer.to_string()
    }
}

/// Serialize a trace set to the text format.
pub fn to_text(set: &TraceSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# cesim-trace");
    let _ = writeln!(out, "ranks {}", set.num_ranks());
    for (r, trace) in set.ranks.iter().enumerate() {
        let _ = writeln!(out, "rank {r} {{");
        for ev in &trace.events {
            let _ = write!(
                out,
                "  {} {} {}",
                ev.enter.as_ps(),
                ev.exit.as_ps(),
                ev.call.name()
            );
            match &ev.call {
                MpiCall::Send { peer, bytes, tag } | MpiCall::Recv { peer, bytes, tag } => {
                    let _ = write!(out, " peer={} bytes={bytes} tag={tag}", peer_str(*peer));
                }
                MpiCall::Isend {
                    peer,
                    bytes,
                    tag,
                    req,
                }
                | MpiCall::Irecv {
                    peer,
                    bytes,
                    tag,
                    req,
                } => {
                    let _ = write!(
                        out,
                        " peer={} bytes={bytes} tag={tag} req={}",
                        peer_str(*peer),
                        req.0
                    );
                }
                MpiCall::Wait { req } => {
                    let _ = write!(out, " req={}", req.0);
                }
                MpiCall::Waitall { reqs } => {
                    let list: Vec<String> = reqs.iter().map(|r| r.0.to_string()).collect();
                    let _ = write!(out, " reqs={}", list.join(","));
                }
                MpiCall::Allreduce { bytes } => {
                    let _ = write!(out, " bytes={bytes}");
                }
                MpiCall::Barrier => {}
                MpiCall::Bcast { root, bytes } | MpiCall::Reduce { root, bytes } => {
                    let _ = write!(out, " root={root} bytes={bytes}");
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "}}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesim_model::Span;

    fn ev(enter: u64, exit: u64, call: MpiCall) -> TraceEvent {
        TraceEvent {
            enter: Time::from_ps(enter),
            exit: Time::from_ps(exit),
            call,
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        let set = TraceSet {
            ranks: vec![
                Trace {
                    events: vec![
                        ev(
                            0,
                            10,
                            MpiCall::Isend {
                                peer: 1,
                                bytes: 8,
                                tag: 0,
                                req: ReqId(0),
                            },
                        ),
                        ev(10, 20, MpiCall::Wait { req: ReqId(0) }),
                        ev(30, 40, MpiCall::Barrier),
                    ],
                },
                Trace {
                    events: vec![
                        ev(
                            5,
                            15,
                            MpiCall::Recv {
                                peer: 0,
                                bytes: 8,
                                tag: 0,
                            },
                        ),
                        ev(15, 25, MpiCall::Barrier),
                    ],
                },
            ],
        };
        set.validate().unwrap();
        assert_eq!(set.total_events(), 5);
    }

    #[test]
    fn validate_rejects_time_travel() {
        let set = TraceSet {
            ranks: vec![Trace {
                events: vec![ev(100, 200, MpiCall::Barrier), ev(50, 60, MpiCall::Barrier)],
            }],
        };
        let e = set.validate().unwrap_err();
        assert!(e.contains("before previous exit"), "{e}");
    }

    #[test]
    fn validate_rejects_dangling_request() {
        let set = TraceSet {
            ranks: vec![
                Trace {
                    events: vec![ev(
                        0,
                        1,
                        MpiCall::Irecv {
                            peer: 1,
                            bytes: 8,
                            tag: 0,
                            req: ReqId(7),
                        },
                    )],
                },
                Trace {
                    events: vec![ev(
                        0,
                        1,
                        MpiCall::Send {
                            peer: 0,
                            bytes: 8,
                            tag: 0,
                        },
                    )],
                },
            ],
        };
        let e = set.validate().unwrap_err();
        assert!(e.contains("never waited"), "{e}");
    }

    #[test]
    fn validate_rejects_request_reuse_and_unknown_wait() {
        let reuse = TraceSet {
            ranks: vec![
                Trace {
                    events: vec![
                        ev(
                            0,
                            1,
                            MpiCall::Isend {
                                peer: 1,
                                bytes: 8,
                                tag: 0,
                                req: ReqId(0),
                            },
                        ),
                        ev(
                            1,
                            2,
                            MpiCall::Isend {
                                peer: 1,
                                bytes: 8,
                                tag: 0,
                                req: ReqId(0),
                            },
                        ),
                    ],
                },
                Trace::default(),
            ],
        };
        assert!(reuse.validate().unwrap_err().contains("reused"));
        let unknown = TraceSet {
            ranks: vec![Trace {
                events: vec![ev(0, 1, MpiCall::Wait { req: ReqId(9) })],
            }],
        };
        assert!(unknown.validate().unwrap_err().contains("unknown"));
    }

    #[test]
    fn validate_rejects_collective_divergence() {
        let set = TraceSet {
            ranks: vec![
                Trace {
                    events: vec![ev(0, 1, MpiCall::Barrier)],
                },
                Trace {
                    events: vec![ev(0, 1, MpiCall::Allreduce { bytes: 8 })],
                },
            ],
        };
        let e = set.validate().unwrap_err();
        assert!(e.contains("collective sequence diverges"), "{e}");
    }

    #[test]
    fn validate_rejects_bad_peers() {
        let oob = TraceSet {
            ranks: vec![Trace {
                events: vec![ev(
                    0,
                    1,
                    MpiCall::Send {
                        peer: 9,
                        bytes: 8,
                        tag: 0,
                    },
                )],
            }],
        };
        assert!(oob.validate().unwrap_err().contains("out of range"));
        let selfsend = TraceSet {
            ranks: vec![Trace {
                events: vec![ev(
                    0,
                    1,
                    MpiCall::Send {
                        peer: 0,
                        bytes: 8,
                        tag: 0,
                    },
                )],
            }],
        };
        assert!(selfsend.validate().unwrap_err().contains("self-send"));
    }

    #[test]
    fn text_rendering_shape() {
        let set = TraceSet {
            ranks: vec![Trace {
                events: vec![
                    ev(
                        0,
                        10,
                        MpiCall::Irecv {
                            peer: u32::MAX,
                            bytes: 4,
                            tag: 9,
                            req: ReqId(1),
                        },
                    ),
                    ev(
                        10,
                        20,
                        MpiCall::Waitall {
                            reqs: vec![ReqId(1)],
                        },
                    ),
                    ev(
                        20 + Span::from_ns(1).as_ps(),
                        30 + Span::from_ns(1).as_ps(),
                        MpiCall::Bcast { root: 0, bytes: 16 },
                    ),
                ],
            }],
        };
        let text = to_text(&set);
        assert!(text.contains("peer=any"));
        assert!(text.contains("reqs=1"));
        assert!(text.contains("Bcast root=0 bytes=16"));
        assert!(text.starts_with("# cesim-trace\nranks 1\nrank 0 {\n"));
    }
}
