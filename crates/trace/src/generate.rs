//! Synthetic trace generation.
//!
//! Stands in for running PMPI-instrumented applications (which this
//! environment cannot do): emits the trace a bulk-synchronous halo/
//! collective application would produce, with realistic non-blocking
//! structure (`Irecv`+`Isend` posted per neighbor, one `Waitall`, then
//! the step's collectives). Used to exercise the parse → convert →
//! extrapolate → simulate pipeline end to end.

use crate::event::{MpiCall, ReqId, TraceEvent};
use crate::format::{Trace, TraceSet};
use cesim_model::rng::Rng64;
use cesim_model::{Span, Time};

/// Parameters of the generated application.
#[derive(Clone, Debug)]
pub struct GenSpec {
    /// Rank count (a ring decomposition: each rank talks to ±1).
    pub ranks: usize,
    /// Timesteps.
    pub steps: usize,
    /// Compute per step.
    pub compute: Span,
    /// Halo bytes per neighbor message.
    pub halo_bytes: u64,
    /// Allreduces per step (8-byte payloads).
    pub allreduces: usize,
    /// Per-rank compute jitter amplitude.
    pub jitter: f64,
    /// RNG seed for jitter.
    pub seed: u64,
}

impl Default for GenSpec {
    fn default() -> Self {
        GenSpec {
            ranks: 8,
            steps: 4,
            compute: Span::from_ms(5),
            halo_bytes: 4096,
            allreduces: 1,
            jitter: 0.02,
            seed: 0x7ACE,
        }
    }
}

/// Nominal wall time a recorded MPI call occupies in the trace (the
/// conversion discards it, but traces need plausible timestamps).
const CALL_COST: Span = Span::from_us(2);

/// Generate the trace set.
pub fn generate(spec: &GenSpec) -> TraceSet {
    assert!(spec.ranks >= 2, "the ring needs at least two ranks");
    let n = spec.ranks;
    let mut ranks = Vec::with_capacity(n);
    for r in 0..n {
        let mut rng = Rng64::substream(spec.seed, r as u64);
        let mut clock = Time::ZERO;
        let mut events = Vec::new();
        let left = ((r + n - 1) % n) as u32;
        let right = ((r + 1) % n) as u32;
        let push = |clock: &mut Time, dur: Span, call: MpiCall, events: &mut Vec<TraceEvent>| {
            let enter = *clock;
            let exit = enter + dur;
            *clock = exit;
            events.push(TraceEvent { enter, exit, call });
        };
        for step in 0..spec.steps {
            // Compute phase: advance the clock without recording a call.
            clock += spec.compute.mul_f64(rng.jitter(spec.jitter));
            let tag = step as u32;
            // Post receives first (good MPI practice), then sends.
            push(
                &mut clock,
                CALL_COST,
                MpiCall::Irecv {
                    peer: left,
                    bytes: spec.halo_bytes,
                    tag,
                    req: ReqId(4 * step as u32),
                },
                &mut events,
            );
            push(
                &mut clock,
                CALL_COST,
                MpiCall::Irecv {
                    peer: right,
                    bytes: spec.halo_bytes,
                    tag,
                    req: ReqId(4 * step as u32 + 1),
                },
                &mut events,
            );
            push(
                &mut clock,
                CALL_COST,
                MpiCall::Isend {
                    peer: right,
                    bytes: spec.halo_bytes,
                    tag,
                    req: ReqId(4 * step as u32 + 2),
                },
                &mut events,
            );
            push(
                &mut clock,
                CALL_COST,
                MpiCall::Isend {
                    peer: left,
                    bytes: spec.halo_bytes,
                    tag,
                    req: ReqId(4 * step as u32 + 3),
                },
                &mut events,
            );
            push(
                &mut clock,
                CALL_COST,
                MpiCall::Waitall {
                    reqs: (0..4).map(|i| ReqId(4 * step as u32 + i)).collect(),
                },
                &mut events,
            );
            for _ in 0..spec.allreduces {
                push(
                    &mut clock,
                    CALL_COST,
                    MpiCall::Allreduce { bytes: 8 },
                    &mut events,
                );
            }
        }
        ranks.push(Trace { events });
    }
    TraceSet { ranks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert;
    use crate::extrapolate::extrapolate;
    use crate::format::to_text;
    use crate::parse::parse;
    use cesim_goal::collectives::CollectiveCosts;

    #[test]
    fn generated_traces_validate() {
        let t = generate(&GenSpec::default());
        t.validate().unwrap();
        assert_eq!(t.num_ranks(), 8);
        // 4 steps x (4 nonblocking + waitall + allreduce) per rank.
        assert_eq!(t.total_events(), 8 * 4 * 6);
    }

    #[test]
    fn full_pipeline_text_roundtrip_and_simulation() {
        let t = generate(&GenSpec::default());
        let parsed = parse(&to_text(&t)).unwrap();
        assert_eq!(t, parsed);
        let sched = convert(&parsed, &CollectiveCosts::default()).unwrap();
        sched.validate().unwrap();
        let r = cesim_engine::simulate(
            &sched,
            &cesim_model::LogGopsParams::xc40(),
            &mut cesim_engine::NoNoise,
        )
        .unwrap();
        assert_eq!(r.ops_executed, sched.total_ops() as u64);
        // 4 steps x ~5 ms compute must dominate the baseline.
        assert!(r.finish > Time::ZERO + Span::from_ms(19));
    }

    #[test]
    fn extrapolated_pipeline_scales_collectives_exactly() {
        let spec = GenSpec {
            ranks: 4,
            steps: 2,
            ..GenSpec::default()
        };
        let t = generate(&spec);
        let t16 = extrapolate(&t, 4); // 16 ranks
        t16.validate().unwrap();
        let sched = convert(&t16, &CollectiveCosts::default()).unwrap();
        // Each of the 2 allreduces spans all 16 ranks: 16·log2(16) sends
        // each; halo traffic: 16 ranks × 2 sends × 2 steps.
        let coll_sends = 2 * 16 * 4;
        let halo_sends = 16 * 2 * 2;
        assert_eq!(sched.stats().sends, (coll_sends + halo_sends) as u64);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let a = generate(&GenSpec::default());
        let b = generate(&GenSpec::default());
        assert_eq!(a, b);
        let c = generate(&GenSpec {
            seed: 1,
            ..GenSpec::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_ring_rejected() {
        generate(&GenSpec {
            ranks: 1,
            ..GenSpec::default()
        });
    }
}
