//! The MPI call vocabulary recorded in traces.

use cesim_model::Time;
use core::fmt;

/// A non-blocking request handle, unique within one rank's trace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ReqId(pub u32);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// An MPI call, as a PMPI profiling layer would record it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MpiCall {
    /// Blocking standard-mode send.
    Send {
        /// Destination rank.
        peer: u32,
        /// Payload bytes.
        bytes: u64,
        /// Message tag.
        tag: u32,
    },
    /// Blocking receive (`peer == u32::MAX` encodes `MPI_ANY_SOURCE`).
    Recv {
        /// Source rank, or `u32::MAX` for any source.
        peer: u32,
        /// Payload bytes.
        bytes: u64,
        /// Message tag.
        tag: u32,
    },
    /// Non-blocking send.
    Isend {
        /// Destination rank.
        peer: u32,
        /// Payload bytes.
        bytes: u64,
        /// Message tag.
        tag: u32,
        /// Request handle completed by a later wait.
        req: ReqId,
    },
    /// Non-blocking receive.
    Irecv {
        /// Source rank, or `u32::MAX` for any source.
        peer: u32,
        /// Payload bytes.
        bytes: u64,
        /// Message tag.
        tag: u32,
        /// Request handle completed by a later wait.
        req: ReqId,
    },
    /// Wait for one request.
    Wait {
        /// The request being completed.
        req: ReqId,
    },
    /// Wait for a set of requests.
    Waitall {
        /// The requests being completed.
        reqs: Vec<ReqId>,
    },
    /// `MPI_Allreduce` over all ranks.
    Allreduce {
        /// Reduction payload bytes.
        bytes: u64,
    },
    /// `MPI_Barrier` over all ranks.
    Barrier,
    /// `MPI_Bcast` from `root`.
    Bcast {
        /// Broadcast root rank.
        root: u32,
        /// Payload bytes.
        bytes: u64,
    },
    /// `MPI_Reduce` to `root`.
    Reduce {
        /// Reduction root rank.
        root: u32,
        /// Payload bytes.
        bytes: u64,
    },
}

impl MpiCall {
    /// True for the collectives (which every rank must call in the same
    /// order).
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            MpiCall::Allreduce { .. }
                | MpiCall::Barrier
                | MpiCall::Bcast { .. }
                | MpiCall::Reduce { .. }
        )
    }

    /// Mnemonic used by the text format.
    pub fn name(&self) -> &'static str {
        match self {
            MpiCall::Send { .. } => "Send",
            MpiCall::Recv { .. } => "Recv",
            MpiCall::Isend { .. } => "Isend",
            MpiCall::Irecv { .. } => "Irecv",
            MpiCall::Wait { .. } => "Wait",
            MpiCall::Waitall { .. } => "Waitall",
            MpiCall::Allreduce { .. } => "Allreduce",
            MpiCall::Barrier => "Barrier",
            MpiCall::Bcast { .. } => "Bcast",
            MpiCall::Reduce { .. } => "Reduce",
        }
    }
}

/// One recorded call: the MPI operation plus its enter/exit timestamps.
/// The *gap* between one event's `exit` and the next event's `enter` is
/// the application's local computation, which conversion turns into
/// `calc` operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Time the rank entered the MPI call.
    pub enter: Time,
    /// Time the call returned.
    pub exit: Time,
    /// The call.
    pub call: MpiCall,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_predicate() {
        assert!(MpiCall::Barrier.is_collective());
        assert!(MpiCall::Allreduce { bytes: 8 }.is_collective());
        assert!(MpiCall::Bcast { root: 0, bytes: 4 }.is_collective());
        assert!(MpiCall::Reduce { root: 2, bytes: 4 }.is_collective());
        assert!(!MpiCall::Send {
            peer: 0,
            bytes: 8,
            tag: 0
        }
        .is_collective());
        assert!(!MpiCall::Wait { req: ReqId(0) }.is_collective());
    }

    #[test]
    fn names() {
        assert_eq!(MpiCall::Barrier.name(), "Barrier");
        assert_eq!(
            MpiCall::Irecv {
                peer: 1,
                bytes: 2,
                tag: 3,
                req: ReqId(4)
            }
            .name(),
            "Irecv"
        );
        assert_eq!(MpiCall::Waitall { reqs: vec![] }.name(), "Waitall");
    }
}
