//! The schedule container and aggregate statistics.

use crate::op::{Op, OpKind, Rank};
use cesim_model::Span;
use core::fmt;

/// The dependency DAG of a single rank.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RankSchedule {
    /// Operations in insertion order; dependencies refer to indices in this
    /// vector.
    pub ops: Vec<Op>,
}

impl RankSchedule {
    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the rank has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A complete program: one [`RankSchedule`] per rank.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Schedule {
    /// Per-rank DAGs; index = rank.
    pub ranks: Vec<RankSchedule>,
}

impl Schedule {
    /// Create an empty schedule with `n` ranks.
    pub fn with_ranks(n: usize) -> Self {
        Schedule {
            ranks: vec![RankSchedule::default(); n],
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// The operations of one rank.
    pub fn rank(&self, r: Rank) -> &RankSchedule {
        &self.ranks[r.idx()]
    }

    /// Total operation count over all ranks.
    pub fn total_ops(&self) -> usize {
        self.ranks.iter().map(|r| r.ops.len()).sum()
    }

    /// Flat-layout rank offsets: `offsets[r]..offsets[r + 1]` is rank
    /// `r`'s slice of the global op index space `0..total_ops()` used by
    /// compiled (struct-of-arrays) schedule representations. The flat
    /// index of `(rank, op)` is `offsets[rank] + op`.
    pub fn flat_offsets(&self) -> Vec<u32> {
        let mut offsets = Vec::with_capacity(self.ranks.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for r in &self.ranks {
            total = total
                .checked_add(u32::try_from(r.ops.len()).expect("rank op count exceeds u32"))
                .expect("total op count exceeds u32");
            offsets.push(total);
        }
        offsets
    }

    /// Iterate every op in flat order (rank-major, then op insertion
    /// order) — the exact order of the flat index space described by
    /// [`flat_offsets`](Schedule::flat_offsets).
    pub fn iter_flat(&self) -> impl Iterator<Item = (Rank, crate::op::OpId, &Op)> {
        self.ranks.iter().enumerate().flat_map(|(r, rank)| {
            rank.ops
                .iter()
                .enumerate()
                .map(move |(i, op)| (Rank(r as u32), crate::op::OpId(i as u32), op))
        })
    }

    /// Aggregate statistics (op mix, bytes, compute time).
    pub fn stats(&self) -> ScheduleStats {
        let mut s = ScheduleStats {
            ranks: self.num_ranks(),
            ..ScheduleStats::default()
        };
        for rank in &self.ranks {
            for op in &rank.ops {
                match op.kind {
                    OpKind::Calc { dur } => {
                        s.calcs += 1;
                        s.total_calc_time += dur;
                    }
                    OpKind::Send { bytes, .. } => {
                        s.sends += 1;
                        s.total_send_bytes += bytes;
                    }
                    OpKind::Recv { .. } => s.recvs += 1,
                }
                s.total_deps += op.deps.len() as u64;
            }
        }
        s
    }
}

/// Aggregate schedule statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Number of ranks.
    pub ranks: usize,
    /// Total `calc` operations.
    pub calcs: u64,
    /// Total `send` operations.
    pub sends: u64,
    /// Total `recv` operations.
    pub recvs: u64,
    /// Total dependency edges.
    pub total_deps: u64,
    /// Sum of all message payloads.
    pub total_send_bytes: u64,
    /// Sum of all compute durations (single-rank serial work).
    pub total_calc_time: Span,
}

impl ScheduleStats {
    /// Total operations of all kinds.
    pub fn total_ops(&self) -> u64 {
        self.calcs + self.sends + self.recvs
    }
}

impl fmt::Display for ScheduleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ranks, {} ops ({} calc / {} send / {} recv), {} dep edges, {} B sent, {} total compute",
            self.ranks,
            self.total_ops(),
            self.calcs,
            self.sends,
            self.recvs,
            self.total_deps,
            self.total_send_bytes,
            self.total_calc_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::op::Tag;

    #[test]
    fn empty_schedule() {
        let s = Schedule::with_ranks(4);
        assert_eq!(s.num_ranks(), 4);
        assert_eq!(s.total_ops(), 0);
        assert!(s.rank(Rank(0)).is_empty());
        assert_eq!(s.stats().total_ops(), 0);
    }

    #[test]
    fn flat_offsets_and_iteration_agree() {
        let mut b = ScheduleBuilder::new(3);
        b.calc(Rank(0), Span::from_us(1), &[]);
        b.send(Rank(0), Rank(1), 8, Tag(1), &[]);
        b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[]);
        // Rank 2 stays empty.
        let s = b.build();
        assert_eq!(s.flat_offsets(), vec![0, 2, 3, 3]);
        let flat: Vec<(u32, u32)> = s.iter_flat().map(|(r, i, _)| (r.0, i.0)).collect();
        assert_eq!(flat, vec![(0, 0), (0, 1), (1, 0)]);
        let off = s.flat_offsets();
        for (k, (r, i, op)) in s.iter_flat().enumerate() {
            assert_eq!(off[r.idx()] + i.0, k as u32);
            assert_eq!(&s.ranks[r.idx()].ops[i.idx()], op);
        }
    }

    #[test]
    fn stats_counts() {
        let mut b = ScheduleBuilder::new(2);
        let c = b.calc(Rank(0), Span::from_us(3), &[]);
        b.send(Rank(0), Rank(1), 100, Tag(1), &[c]);
        b.recv(Rank(1), Some(Rank(0)), 100, Tag(1), &[]);
        b.calc(Rank(1), Span::from_us(7), &[]);
        let s = b.build();
        let st = s.stats();
        assert_eq!(st.ranks, 2);
        assert_eq!(st.calcs, 2);
        assert_eq!(st.sends, 1);
        assert_eq!(st.recvs, 1);
        assert_eq!(st.total_send_bytes, 100);
        assert_eq!(st.total_calc_time, Span::from_us(10));
        assert_eq!(st.total_deps, 1);
        assert_eq!(st.total_ops(), 4);
        let text = format!("{st}");
        assert!(text.contains("2 ranks"));
        assert!(text.contains("4 ops"));
    }
}
