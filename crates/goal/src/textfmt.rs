//! GOAL-like text serialization.
//!
//! A small, line-oriented, human-readable format for dumping and loading
//! schedules (debugging, golden tests, interchange with external tools):
//!
//! ```text
//! # comment
//! ranks 2
//! rank 0 {
//!   0: calc 1000ps
//!   1: send 8B to 1 tag 5 deps 0
//!   2: recv 8B from any tag 5 deps 0
//! }
//! rank 1 {
//!   0: recv 8B from 0 tag 5
//!   1: send 8B to 0 tag 5 deps 0
//! }
//! ```
//!
//! Durations are always serialized in integer picoseconds so round-trips
//! are exact.

use crate::op::{Op, OpId, OpKind, Rank, Tag};
use crate::schedule::{RankSchedule, Schedule};
use cesim_model::Span;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// A parse failure, with the 1-based line number where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Serialize a schedule to the text format.
pub fn to_text(s: &Schedule) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# cesim-goal schedule");
    let _ = writeln!(out, "ranks {}", s.num_ranks());
    for (r, rank) in s.ranks.iter().enumerate() {
        let _ = writeln!(out, "rank {r} {{");
        for (i, op) in rank.ops.iter().enumerate() {
            let _ = write!(out, "  {i}: ");
            match op.kind {
                OpKind::Calc { dur } => {
                    let _ = write!(out, "calc {}ps", dur.as_ps());
                }
                OpKind::Send { dst, bytes, tag } => {
                    let _ = write!(out, "send {bytes}B to {} tag {}", dst.0, tag.0);
                }
                OpKind::Recv { src, bytes, tag } => match src {
                    Some(sr) => {
                        let _ = write!(out, "recv {bytes}B from {} tag {}", sr.0, tag.0);
                    }
                    None => {
                        let _ = write!(out, "recv {bytes}B from any tag {}", tag.0);
                    }
                },
            }
            if !op.deps.is_empty() {
                let deps: Vec<String> = op.deps.iter().map(|d| d.0.to_string()).collect();
                let _ = write!(out, " deps {}", deps.join(","));
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// Parse the text format back into a [`Schedule`].
pub fn from_text(text: &str) -> Result<Schedule, ParseError> {
    let mut ranks: Option<Vec<RankSchedule>> = None;
    let mut cur_rank: Option<usize> = None;

    for (ln0, raw) in text.lines().enumerate() {
        let ln = ln0 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "ranks" => {
                if ranks.is_some() {
                    return err(ln, "duplicate 'ranks' header");
                }
                let n: usize = match toks.get(1).and_then(|t| t.parse().ok()) {
                    Some(n) if n > 0 => n,
                    _ => return err(ln, "expected 'ranks <positive count>'"),
                };
                ranks = Some(vec![RankSchedule::default(); n]);
            }
            "rank" => {
                let ranks_ref = match &ranks {
                    Some(r) => r,
                    None => return err(ln, "'rank' before 'ranks' header"),
                };
                if cur_rank.is_some() {
                    return err(ln, "nested 'rank' block (missing '}')");
                }
                let r: usize = match toks.get(1).and_then(|t| t.parse().ok()) {
                    Some(r) => r,
                    None => return err(ln, "expected 'rank <index> {'"),
                };
                if r >= ranks_ref.len() {
                    return err(ln, format!("rank {r} out of range"));
                }
                if toks.get(2) != Some(&"{") {
                    return err(ln, "expected '{' after rank index");
                }
                cur_rank = Some(r);
            }
            "}" => {
                if cur_rank.take().is_none() {
                    return err(ln, "'}' without open rank block");
                }
            }
            _ => {
                let r = match cur_rank {
                    Some(r) => r,
                    None => return err(ln, "operation outside a rank block"),
                };
                let ranks_mut = ranks.as_mut().expect("rank block implies header");
                let op = parse_op(&toks, ln, ranks_mut.len())?;
                let ops = &mut ranks_mut[r].ops;
                // The leading index token is a readability aid; verify it.
                let idx_tok = toks[0].trim_end_matches(':');
                match idx_tok.parse::<usize>() {
                    Ok(i) if i == ops.len() => {}
                    Ok(i) => {
                        return err(
                            ln,
                            format!("op index {i} out of order (expected {})", ops.len()),
                        )
                    }
                    Err(_) => return err(ln, format!("expected op index, got '{}'", toks[0])),
                }
                ops.push(op);
            }
        }
    }
    if cur_rank.is_some() {
        return err(text.lines().count(), "unterminated rank block");
    }
    match ranks {
        Some(r) => Ok(Schedule { ranks: r }),
        None => err(1, "missing 'ranks' header"),
    }
}

fn parse_op(toks: &[&str], ln: usize, nranks: usize) -> Result<Op, ParseError> {
    // toks: ["<idx>:", "calc"/"send"/"recv", ...]
    if toks.len() < 2 {
        return err(ln, "truncated operation");
    }
    let mut deps = Vec::new();
    let mut body_end = toks.len();
    if let Some(pos) = toks.iter().position(|&t| t == "deps") {
        body_end = pos;
        let list = match toks.get(pos + 1) {
            Some(l) => l,
            None => return err(ln, "'deps' without a list"),
        };
        for part in list.split(',') {
            match part.parse::<u32>() {
                Ok(d) => deps.push(OpId(d)),
                Err(_) => return err(ln, format!("bad dependency '{part}'")),
            }
        }
    }
    let body = &toks[1..body_end];
    let kind = match body.first() {
        Some(&"calc") => {
            let ps_tok = body.get(1).ok_or(()).map_err(|_| ParseError {
                line: ln,
                message: "calc needs a duration".into(),
            })?;
            let ps: u64 = match ps_tok.strip_suffix("ps").and_then(|v| v.parse().ok()) {
                Some(ps) => ps,
                None => return err(ln, format!("bad duration '{ps_tok}' (expected '<n>ps')")),
            };
            OpKind::Calc {
                dur: Span::from_ps(ps),
            }
        }
        Some(&"send") => {
            // send <bytes>B to <dst> tag <t>
            let bytes = parse_bytes(body.get(1), ln)?;
            if body.get(2) != Some(&"to") {
                return err(ln, "expected 'to' in send");
            }
            let dst: u32 = parse_num(body.get(3), ln, "destination rank")?;
            if dst as usize >= nranks {
                return err(ln, format!("send destination {dst} out of range"));
            }
            if body.get(4) != Some(&"tag") {
                return err(ln, "expected 'tag' in send");
            }
            let tag: u32 = parse_num(body.get(5), ln, "tag")?;
            OpKind::Send {
                dst: Rank(dst),
                bytes,
                tag: Tag(tag),
            }
        }
        Some(&"recv") => {
            let bytes = parse_bytes(body.get(1), ln)?;
            if body.get(2) != Some(&"from") {
                return err(ln, "expected 'from' in recv");
            }
            let src = match body.get(3) {
                Some(&"any") => None,
                Some(tok) => match tok.parse::<u32>() {
                    Ok(s) if (s as usize) < nranks => Some(Rank(s)),
                    Ok(s) => return err(ln, format!("recv source {s} out of range")),
                    Err(_) => return err(ln, format!("bad recv source '{tok}'")),
                },
                None => return err(ln, "recv needs a source"),
            };
            if body.get(4) != Some(&"tag") {
                return err(ln, "expected 'tag' in recv");
            }
            let tag: u32 = parse_num(body.get(5), ln, "tag")?;
            OpKind::Recv {
                src,
                bytes,
                tag: Tag(tag),
            }
        }
        _ => {
            return err(
                ln,
                format!("unknown operation '{}'", body.first().unwrap_or(&"")),
            )
        }
    };
    Ok(Op { kind, deps })
}

fn parse_bytes(tok: Option<&&str>, ln: usize) -> Result<u64, ParseError> {
    match tok
        .and_then(|t| t.strip_suffix('B'))
        .and_then(|v| v.parse().ok())
    {
        Some(b) => Ok(b),
        None => err(ln, "expected '<bytes>B'"),
    }
}

fn parse_num(tok: Option<&&str>, ln: usize, what: &str) -> Result<u32, ParseError> {
    match tok.and_then(|t| t.parse().ok()) {
        Some(n) => Ok(n),
        None => err(ln, format!("expected {what}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ScheduleBuilder, TagPool};
    use crate::collectives;

    fn pingpong() -> Schedule {
        let mut b = ScheduleBuilder::new(2);
        let c = b.calc(Rank(0), Span::from_ns(10), &[]);
        let s = b.send(Rank(0), Rank(1), 8, Tag(5), &[c]);
        b.recv(Rank(0), None, 8, Tag(6), &[c, s]);
        let r = b.recv(Rank(1), Some(Rank(0)), 8, Tag(5), &[]);
        b.send(Rank(1), Rank(0), 8, Tag(6), &[r]);
        b.build()
    }

    #[test]
    fn roundtrip_pingpong() {
        let s = pingpong();
        let text = to_text(&s);
        let back = from_text(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn roundtrip_collective() {
        let mut b = ScheduleBuilder::new(6);
        let mut tags = TagPool::new();
        let entry: Vec<OpId> = (0..6)
            .map(|r| b.calc(Rank::from(r), Span::from_us(1), &[]))
            .collect();
        collectives::allreduce_recursive_doubling(
            &mut b,
            &mut tags,
            64,
            &collectives::CollectiveCosts::default(),
            &entry,
        );
        let s = b.build();
        let back = from_text(&to_text(&s)).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn parse_errors_carry_lines() {
        let bad = "ranks 2\nrank 0 {\n  0: calc 5ns\n}\n";
        let e = from_text(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duration"));
    }

    #[test]
    fn rejects_missing_header() {
        assert!(from_text("rank 0 {\n}\n").is_err());
        assert!(from_text("").is_err());
    }

    #[test]
    fn rejects_unterminated_block() {
        let e = from_text("ranks 1\nrank 0 {\n  0: calc 1ps\n").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn rejects_out_of_order_index() {
        let e = from_text("ranks 1\nrank 0 {\n  1: calc 1ps\n}\n").unwrap_err();
        assert!(e.message.contains("out of order"));
    }

    #[test]
    fn rejects_out_of_range_peer() {
        let e = from_text("ranks 2\nrank 0 {\n  0: send 8B to 5 tag 0\n}\n").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let s = from_text("# hi\n\nranks 1\n# mid\nrank 0 {\n}\n").unwrap();
        assert_eq!(s.num_ranks(), 1);
        assert!(s.ranks[0].is_empty());
    }

    #[test]
    fn any_source_roundtrips() {
        let text = "ranks 2\nrank 0 {\n  0: recv 4B from any tag 1\n}\nrank 1 {\n  0: send 4B to 0 tag 1\n}\n";
        let s = from_text(text).unwrap();
        assert!(matches!(
            s.ranks[0].ops[0].kind,
            OpKind::Recv { src: None, .. }
        ));
        let back = from_text(&to_text(&s)).unwrap();
        assert_eq!(s, back);
    }
}
