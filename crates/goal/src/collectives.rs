//! Expansion of MPI collectives into point-to-point operations.
//!
//! LogGOPSim re-expands every collective in a trace into the send/recv
//! trees of the algorithms below, which is what makes its trace
//! extrapolation exact for collectives. We implement the same classical
//! algorithms:
//!
//! * [`bcast_binomial`] / [`reduce_binomial`] — binomial trees,
//! * [`allreduce_recursive_doubling`] — recursive doubling with the
//!   standard fold-in of non-power-of-two remainders,
//! * [`barrier_dissemination`] — the dissemination barrier,
//! * [`allgather_ring`], [`alltoall_pairwise`],
//! * [`scatter_binomial`] / [`gather_binomial`].
//!
//! Every function appends ops for **all** ranks to a [`ScheduleBuilder`],
//! taking one entry dependency per rank and returning one exit op per rank,
//! so collectives compose with surrounding computation phase by phase.
//! Tags are drawn from a [`TagPool`] so distinct collective instances can
//! never match each other's messages.

#![allow(clippy::needless_range_loop)] // parallel per-rank arrays

use crate::builder::{ScheduleBuilder, TagPool};
use crate::op::{OpId, Rank, Tag};
use cesim_model::Span;

/// Local-computation cost model for reduction operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollectiveCosts {
    /// CPU time to combine one byte of reduction payload, in picoseconds.
    pub reduce_ps_per_byte: u64,
    /// Fixed CPU time per reduction step (operator dispatch).
    pub reduce_base: Span,
}

impl Default for CollectiveCosts {
    fn default() -> Self {
        // ~4 GB/s scalar reduction plus a 100 ns dispatch floor.
        CollectiveCosts {
            reduce_ps_per_byte: 250,
            reduce_base: Span::from_ns(100),
        }
    }
}

impl CollectiveCosts {
    /// CPU time to reduce a payload of `bytes`.
    pub fn reduce_cost(&self, bytes: u64) -> Span {
        self.reduce_base + Span::from_ps(bytes.saturating_mul(self.reduce_ps_per_byte))
    }
}

/// Number of dissemination/doubling rounds for `n` ranks.
pub fn ceil_log2(n: usize) -> u32 {
    assert!(n > 0);
    usize::BITS - (n - 1).leading_zeros()
}

/// Largest power of two `<= n`.
pub fn floor_pow2(n: usize) -> usize {
    assert!(n > 0);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

fn check_entry(b: &ScheduleBuilder, entry: &[OpId]) {
    assert_eq!(
        entry.len(),
        b.num_ranks(),
        "entry must provide one dependency op per rank"
    );
}

/// Allreduce algorithm selector (ablation knob: the paper's collective
/// structure determines how CE detours serialize into the critical path,
/// so the choice of expansion is a modeled design decision).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AllreduceAlgo {
    /// Recursive doubling: `log2 n` exchange rounds, every rank active in
    /// every round (LogGOPSim's default for small payloads).
    #[default]
    RecursiveDoubling,
    /// Binomial reduce to rank 0 followed by binomial broadcast: twice
    /// the tree depth, but interior ranks idle through most rounds.
    ReduceBcast,
}

/// Expand an allreduce with the selected algorithm.
pub fn allreduce(
    b: &mut ScheduleBuilder,
    tags: &mut TagPool,
    algo: AllreduceAlgo,
    bytes: u64,
    costs: &CollectiveCosts,
    entry: &[OpId],
) -> Vec<OpId> {
    match algo {
        AllreduceAlgo::RecursiveDoubling => {
            allreduce_recursive_doubling(b, tags, bytes, costs, entry)
        }
        AllreduceAlgo::ReduceBcast => {
            let mid = reduce_binomial(b, tags, Rank(0), bytes, costs, entry);
            bcast_binomial(b, tags, Rank(0), bytes, &mid)
        }
    }
}

/// Dissemination barrier: `ceil(log2 n)` rounds; in round `i` rank `r`
/// signals `(r + 2^i) mod n` and waits for `(r - 2^i) mod n`.
pub fn barrier_dissemination(
    b: &mut ScheduleBuilder,
    tags: &mut TagPool,
    entry: &[OpId],
) -> Vec<OpId> {
    check_entry(b, entry);
    let n = b.num_ranks();
    if n == 1 {
        return entry.to_vec();
    }
    let rounds = ceil_log2(n);
    let t0 = tags.alloc(rounds);
    let mut cur = entry.to_vec();
    for i in 0..rounds {
        let dist = 1usize << i;
        let tag = Tag(t0.0 + i);
        for r in 0..n {
            let rank = Rank::from(r);
            let to = Rank::from((r + dist) % n);
            let from = Rank::from((r + n - dist) % n);
            let s = b.send(rank, to, 8, tag, &[cur[r]]);
            let v = b.recv(rank, Some(from), 8, tag, &[cur[r]]);
            cur[r] = b.join(rank, &[s, v]);
        }
    }
    cur
}

/// Recursive-doubling allreduce on `bytes` of payload.
///
/// Non-power-of-two rank counts use the standard fold: the `rem = n - m`
/// surplus ranks first send their contribution to a partner in the
/// power-of-two core, the core runs `log2 m` exchange-and-reduce rounds,
/// and the result is returned to the surplus ranks.
pub fn allreduce_recursive_doubling(
    b: &mut ScheduleBuilder,
    tags: &mut TagPool,
    bytes: u64,
    costs: &CollectiveCosts,
    entry: &[OpId],
) -> Vec<OpId> {
    check_entry(b, entry);
    let n = b.num_ranks();
    if n == 1 {
        return entry.to_vec();
    }
    let m = floor_pow2(n);
    let rem = n - m;
    let rounds = ceil_log2(m).max(1);
    // Tag layout: [fold-in, round 0 .. round rounds-1, fold-out].
    let t0 = tags.alloc(rounds + 2);
    let fold_in = Tag(t0.0);
    let fold_out = Tag(t0.0 + rounds + 1);
    let reduce = costs.reduce_cost(bytes);

    let mut cur = entry.to_vec();

    // Phase A: surplus ranks m..n fold into ranks 0..rem.
    for extra in 0..rem {
        let hi = Rank::from(m + extra);
        let lo = Rank::from(extra);
        cur[m + extra] = b.send(hi, lo, bytes, fold_in, &[cur[m + extra]]);
        let rv = b.recv(lo, Some(hi), bytes, fold_in, &[cur[extra]]);
        cur[extra] = b.calc(lo, reduce, &[rv]);
    }

    // Phase B: recursive doubling among the power-of-two core.
    if m > 1 {
        for i in 0..ceil_log2(m) {
            let dist = 1usize << i;
            let tag = Tag(t0.0 + 1 + i);
            for r in 0..m {
                let partner = r ^ dist;
                let rank = Rank::from(r);
                let peer = Rank::from(partner);
                let s = b.send(rank, peer, bytes, tag, &[cur[r]]);
                let v = b.recv(rank, Some(peer), bytes, tag, &[cur[r]]);
                let j = b.join(rank, &[s, v]);
                cur[r] = b.calc(rank, reduce, &[j]);
            }
        }
    }

    // Phase C: return results to the surplus ranks.
    for extra in 0..rem {
        let hi = Rank::from(m + extra);
        let lo = Rank::from(extra);
        let s = b.send(lo, hi, bytes, fold_out, &[cur[extra]]);
        cur[extra] = b.join(lo, &[s]);
        cur[m + extra] = b.recv(hi, Some(lo), bytes, fold_out, &[cur[m + extra]]);
    }

    cur
}

/// Binomial-tree broadcast of `bytes` from `root`.
pub fn bcast_binomial(
    b: &mut ScheduleBuilder,
    tags: &mut TagPool,
    root: Rank,
    bytes: u64,
    entry: &[OpId],
) -> Vec<OpId> {
    check_entry(b, entry);
    let n = b.num_ranks();
    if n == 1 {
        return entry.to_vec();
    }
    let tag = tags.alloc(1);
    let abs = |v: usize| Rank::from((v + root.idx()) % n);
    let mut out = vec![OpId(0); n];
    for vrank in 0..n {
        let rank = abs(vrank);
        let mut cur = entry[rank.idx()];
        // Receive from the parent (non-root ranks only). The loop leaves
        // `mask` at the lowest set bit of vrank, or at 2^ceil_log2(n) for
        // the root.
        let mut mask = 1usize;
        while mask < n {
            if vrank & mask != 0 {
                let parent = abs(vrank - mask);
                cur = b.recv(rank, Some(parent), bytes, tag, &[cur]);
                break;
            }
            mask <<= 1;
        }
        // Forward to children at descending distances below `mask`.
        let mut sends = vec![cur];
        let mut m = mask >> 1;
        while m > 0 {
            if vrank + m < n {
                let child = abs(vrank + m);
                sends.push(b.send(rank, child, bytes, tag, &[cur]));
            }
            m >>= 1;
        }
        out[rank.idx()] = b.join(rank, &sends);
    }
    out
}

/// Binomial-tree reduction of `bytes` to `root`.
pub fn reduce_binomial(
    b: &mut ScheduleBuilder,
    tags: &mut TagPool,
    root: Rank,
    bytes: u64,
    costs: &CollectiveCosts,
    entry: &[OpId],
) -> Vec<OpId> {
    check_entry(b, entry);
    let n = b.num_ranks();
    if n == 1 {
        return entry.to_vec();
    }
    let tag = tags.alloc(1);
    let abs = |v: usize| Rank::from((v + root.idx()) % n);
    let reduce = costs.reduce_cost(bytes);
    let mut out = vec![OpId(0); n];
    for vrank in 0..n {
        let rank = abs(vrank);
        let mut cur = entry[rank.idx()];
        let mut mask = 1usize;
        loop {
            if vrank & mask == 0 && mask < n {
                // Receive from the child at distance `mask`, if it exists.
                let child_v = vrank + mask;
                if child_v < n {
                    let child = abs(child_v);
                    let rv = b.recv(rank, Some(child), bytes, tag, &[cur]);
                    cur = b.calc(rank, reduce, &[rv]);
                }
                mask <<= 1;
                if mask >= n {
                    break;
                }
            } else {
                // Send the partial result to the parent and stop.
                if vrank != 0 {
                    let parent = abs(vrank - mask);
                    cur = b.send(rank, parent, bytes, tag, &[cur]);
                }
                break;
            }
        }
        out[rank.idx()] = cur;
    }
    out
}

/// Ring allgather: `n - 1` rounds, each forwarding `bytes_per_rank` to the
/// right neighbor.
pub fn allgather_ring(
    b: &mut ScheduleBuilder,
    tags: &mut TagPool,
    bytes_per_rank: u64,
    entry: &[OpId],
) -> Vec<OpId> {
    check_entry(b, entry);
    let n = b.num_ranks();
    if n == 1 {
        return entry.to_vec();
    }
    let rounds = (n - 1) as u32;
    let t0 = tags.alloc(rounds);
    let mut cur = entry.to_vec();
    for i in 0..rounds {
        let tag = Tag(t0.0 + i);
        for r in 0..n {
            let rank = Rank::from(r);
            let right = Rank::from((r + 1) % n);
            let left = Rank::from((r + n - 1) % n);
            let s = b.send(rank, right, bytes_per_rank, tag, &[cur[r]]);
            let v = b.recv(rank, Some(left), bytes_per_rank, tag, &[cur[r]]);
            cur[r] = b.join(rank, &[s, v]);
        }
    }
    cur
}

/// Pairwise-exchange alltoall: `n - 1` rounds; in round `i` rank `r`
/// exchanges `bytes_per_pair` with `(r + i) mod n` / `(r - i) mod n`.
pub fn alltoall_pairwise(
    b: &mut ScheduleBuilder,
    tags: &mut TagPool,
    bytes_per_pair: u64,
    entry: &[OpId],
) -> Vec<OpId> {
    check_entry(b, entry);
    let n = b.num_ranks();
    if n == 1 {
        return entry.to_vec();
    }
    let rounds = (n - 1) as u32;
    let t0 = tags.alloc(rounds);
    let mut cur = entry.to_vec();
    for i in 1..n {
        let tag = Tag(t0.0 + (i as u32 - 1));
        for r in 0..n {
            let rank = Rank::from(r);
            let dst = Rank::from((r + i) % n);
            let src = Rank::from((r + n - i) % n);
            let s = b.send(rank, dst, bytes_per_pair, tag, &[cur[r]]);
            let v = b.recv(rank, Some(src), bytes_per_pair, tag, &[cur[r]]);
            cur[r] = b.join(rank, &[s, v]);
        }
    }
    cur
}

/// Binomial scatter: `root` distributes a distinct `bytes_per_rank` block
/// to every rank; interior tree nodes forward whole subtree payloads.
pub fn scatter_binomial(
    b: &mut ScheduleBuilder,
    tags: &mut TagPool,
    root: Rank,
    bytes_per_rank: u64,
    entry: &[OpId],
) -> Vec<OpId> {
    check_entry(b, entry);
    let n = b.num_ranks();
    if n == 1 {
        return entry.to_vec();
    }
    let tag = tags.alloc(1);
    let abs = |v: usize| Rank::from((v + root.idx()) % n);
    // Subtree size of vrank v when the tree spans `span` virtual ranks.
    let subtree = |v: usize, dist: usize| -> u64 {
        let width = dist.min(n - v);
        (width as u64) * bytes_per_rank
    };
    let mut out = vec![OpId(0); n];
    for vrank in 0..n {
        let rank = abs(vrank);
        let mut cur = entry[rank.idx()];
        // Receive the whole subtree block from the parent.
        let mut mask = 1usize;
        while mask < n {
            if vrank & mask != 0 {
                let parent = abs(vrank - mask);
                cur = b.recv(rank, Some(parent), subtree(vrank, mask), tag, &[cur]);
                break;
            }
            mask <<= 1;
        }
        // The recv loop leaves `mask` at the lowest set bit of vrank (or at
        // 2^ceil_log2(n) for the root); children sit below it.
        let mut sends = vec![cur];
        let mut m = mask >> 1;
        while m > 0 {
            if vrank + m < n {
                let child = abs(vrank + m);
                let s = b.send(rank, child, subtree(vrank + m, m), tag, &[cur]);
                sends.push(s);
            }
            m >>= 1;
        }
        out[rank.idx()] = b.join(rank, &sends);
    }
    out
}

/// Binomial gather: inverse of [`scatter_binomial`].
pub fn gather_binomial(
    b: &mut ScheduleBuilder,
    tags: &mut TagPool,
    root: Rank,
    bytes_per_rank: u64,
    entry: &[OpId],
) -> Vec<OpId> {
    check_entry(b, entry);
    let n = b.num_ranks();
    if n == 1 {
        return entry.to_vec();
    }
    let tag = tags.alloc(1);
    let abs = |v: usize| Rank::from((v + root.idx()) % n);
    let subtree = |v: usize, dist: usize| -> u64 {
        let width = dist.min(n - v);
        (width as u64) * bytes_per_rank
    };
    let mut out = vec![OpId(0); n];
    for vrank in 0..n {
        let rank = abs(vrank);
        let mut cur = entry[rank.idx()];
        let mut mask = 1usize;
        loop {
            if vrank & mask == 0 && mask < n {
                let child_v = vrank + mask;
                if child_v < n {
                    let child = abs(child_v);
                    cur = b.recv(rank, Some(child), subtree(child_v, mask), tag, &[cur]);
                }
                mask <<= 1;
                if mask >= n {
                    break;
                }
            } else {
                if vrank != 0 {
                    let parent = abs(vrank - mask);
                    cur = b.send(rank, parent, subtree(vrank, mask), tag, &[cur]);
                }
                break;
            }
        }
        out[rank.idx()] = cur;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;

    fn fresh(n: usize) -> (ScheduleBuilder, TagPool, Vec<OpId>) {
        let mut b = ScheduleBuilder::new(n);
        let entry: Vec<OpId> = (0..n)
            .map(|r| b.calc(Rank::from(r), Span::ZERO, &[]))
            .collect();
        (b, TagPool::new(), entry)
    }

    fn count_sends(s: &Schedule) -> u64 {
        s.stats().sends
    }

    fn assert_matched(s: &Schedule) {
        s.validate().expect("collective expansion must validate");
    }

    #[test]
    fn log_helpers() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(floor_pow2(1), 1);
        assert_eq!(floor_pow2(7), 4);
        assert_eq!(floor_pow2(8), 8);
        assert_eq!(floor_pow2(1000), 512);
    }

    #[test]
    fn barrier_send_count() {
        for n in [2usize, 3, 4, 7, 8, 16, 33] {
            let (mut b, mut tags, entry) = fresh(n);
            barrier_dissemination(&mut b, &mut tags, &entry);
            let s = b.build();
            assert_eq!(count_sends(&s), (n as u64) * ceil_log2(n) as u64, "n = {n}");
            assert_matched(&s);
        }
    }

    #[test]
    fn allreduce_pow2_send_count() {
        for n in [2usize, 4, 8, 32] {
            let (mut b, mut tags, entry) = fresh(n);
            allreduce_recursive_doubling(&mut b, &mut tags, 8, &CollectiveCosts::default(), &entry);
            let s = b.build();
            assert_eq!(count_sends(&s), (n as u64) * ceil_log2(n) as u64);
            assert_matched(&s);
        }
    }

    #[test]
    fn allreduce_non_pow2_send_count() {
        for n in [3usize, 5, 6, 7, 12, 100] {
            let (mut b, mut tags, entry) = fresh(n);
            allreduce_recursive_doubling(
                &mut b,
                &mut tags,
                64,
                &CollectiveCosts::default(),
                &entry,
            );
            let s = b.build();
            let m = floor_pow2(n) as u64;
            let rem = n as u64 - m;
            assert_eq!(
                count_sends(&s),
                m * ceil_log2(m as usize) as u64 + 2 * rem,
                "n = {n}"
            );
            assert_matched(&s);
        }
    }

    #[test]
    fn bcast_send_count_and_root_invariance() {
        for n in [2usize, 3, 5, 8, 17, 64] {
            for root in [0usize, 1, n - 1] {
                let (mut b, mut tags, entry) = fresh(n);
                bcast_binomial(&mut b, &mut tags, Rank::from(root), 1024, &entry);
                let s = b.build();
                // A broadcast delivers exactly one message to each non-root.
                assert_eq!(count_sends(&s), n as u64 - 1, "n = {n}, root = {root}");
                assert_matched(&s);
                // Every non-root rank receives exactly once.
                for r in 0..n {
                    let recvs = s.ranks[r].ops.iter().filter(|o| o.kind.is_recv()).count();
                    assert_eq!(recvs, usize::from(r != root), "rank {r}");
                }
            }
        }
    }

    #[test]
    fn reduce_send_count() {
        for n in [2usize, 3, 5, 8, 17, 64] {
            for root in [0usize, n / 2] {
                let (mut b, mut tags, entry) = fresh(n);
                reduce_binomial(
                    &mut b,
                    &mut tags,
                    Rank::from(root),
                    4096,
                    &CollectiveCosts::default(),
                    &entry,
                );
                let s = b.build();
                assert_eq!(count_sends(&s), n as u64 - 1, "n = {n}, root = {root}");
                assert_matched(&s);
            }
        }
    }

    #[test]
    fn allgather_ring_counts() {
        for n in [2usize, 3, 9] {
            let (mut b, mut tags, entry) = fresh(n);
            allgather_ring(&mut b, &mut tags, 256, &entry);
            let s = b.build();
            assert_eq!(count_sends(&s), (n * (n - 1)) as u64);
            assert_matched(&s);
        }
    }

    #[test]
    fn alltoall_counts() {
        for n in [2usize, 4, 7] {
            let (mut b, mut tags, entry) = fresh(n);
            alltoall_pairwise(&mut b, &mut tags, 128, &entry);
            let s = b.build();
            assert_eq!(count_sends(&s), (n * (n - 1)) as u64);
            assert_matched(&s);
        }
    }

    #[test]
    fn scatter_gather_counts_and_bytes() {
        for n in [2usize, 3, 6, 8, 13] {
            let per = 100u64;
            let (mut b, mut tags, entry) = fresh(n);
            scatter_binomial(&mut b, &mut tags, Rank(0), per, &entry);
            let s = b.build();
            assert_eq!(count_sends(&s), n as u64 - 1);
            assert_matched(&s);
            // Total bytes moved by a binomial scatter: each vrank's block
            // travels depth(vrank) hops, where depth = popcount of vrank.
            let expect: u64 = (1..n).map(|v| per * (v.count_ones() as u64)).sum();
            assert_eq!(s.stats().total_send_bytes, expect, "n = {n}");

            let (mut b2, mut tags2, entry2) = fresh(n);
            gather_binomial(&mut b2, &mut tags2, Rank(0), per, &entry2);
            let s2 = b2.build();
            assert_eq!(count_sends(&s2), n as u64 - 1);
            assert_matched(&s2);
            assert_eq!(s2.stats().total_send_bytes, expect, "gather n = {n}");
        }
    }

    #[test]
    fn allreduce_dispatch_and_reduce_bcast_counts() {
        for n in [2usize, 5, 8, 13] {
            let (mut b, mut tags, entry) = fresh(n);
            allreduce(
                &mut b,
                &mut tags,
                AllreduceAlgo::ReduceBcast,
                64,
                &CollectiveCosts::default(),
                &entry,
            );
            let s = b.build();
            // Reduce tree (n-1 sends) + broadcast tree (n-1 sends).
            assert_eq!(count_sends(&s), 2 * (n as u64 - 1), "n = {n}");
            assert_matched(&s);
        }
        // The dispatcher's recursive-doubling arm matches the direct call.
        let (mut b1, mut t1, e1) = fresh(6);
        allreduce(
            &mut b1,
            &mut t1,
            AllreduceAlgo::RecursiveDoubling,
            8,
            &CollectiveCosts::default(),
            &e1,
        );
        let (mut b2, mut t2, e2) = fresh(6);
        allreduce_recursive_doubling(&mut b2, &mut t2, 8, &CollectiveCosts::default(), &e2);
        assert_eq!(b1.build(), b2.build());
    }

    #[test]
    fn single_rank_is_noop() {
        let (mut b, mut tags, entry) = fresh(1);
        let out = barrier_dissemination(&mut b, &mut tags, &entry);
        assert_eq!(out, entry);
        let out =
            allreduce_recursive_doubling(&mut b, &mut tags, 8, &CollectiveCosts::default(), &entry);
        assert_eq!(out, entry);
        assert_eq!(b.build().stats().sends, 0);
    }

    #[test]
    fn reduce_cost_model() {
        let c = CollectiveCosts::default();
        assert_eq!(c.reduce_cost(0), c.reduce_base);
        assert!(c.reduce_cost(1 << 20) > c.reduce_cost(8));
    }

    #[test]
    fn exits_are_one_per_rank_and_last() {
        let n = 6;
        let (mut b, mut tags, entry) = fresh(n);
        let out = allreduce_recursive_doubling(
            &mut b,
            &mut tags,
            32,
            &CollectiveCosts::default(),
            &entry,
        );
        assert_eq!(out.len(), n);
        let s = b.build();
        for (r, exit) in out.iter().enumerate() {
            assert!(exit.idx() < s.ranks[r].ops.len());
        }
    }
}
