//! # cesim-goal
//!
//! Communication-schedule intermediate representation, modeled on
//! LogGOPSim's GOAL format (Group Operation Assembly Language).
//!
//! A [`Schedule`] holds, for each MPI rank, a dependency DAG of three
//! operation kinds:
//!
//! * `calc` — a CPU interval of a given duration,
//! * `send` — transmit `bytes` to a destination rank with a tag,
//! * `recv` — receive `bytes` from a source rank (or any source) with a tag.
//!
//! Dependencies are intra-rank only; inter-rank ordering arises solely from
//! message matching, exactly as in MPI. The crate provides:
//!
//! * [`builder::ScheduleBuilder`] — append-only construction that
//!   guarantees acyclicity by requiring dependencies to point backwards,
//! * [`collectives`] — expansion of MPI collectives into point-to-point
//!   send/recv trees (binomial broadcast/reduce, recursive-doubling
//!   allreduce, dissemination barrier, ring allgather, pairwise alltoall,
//!   binomial scatter/gather), mirroring LogGOPSim's collective expander,
//! * [`textfmt`] — a human-readable GOAL-like text serialization with a
//!   round-tripping parser,
//! * [`validate`] — static checks (dependency ranges, acyclicity for
//!   externally-parsed schedules, send/recv matching balance).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod collectives;
pub mod op;
pub mod schedule;
pub mod textfmt;
pub mod validate;

pub use builder::ScheduleBuilder;
pub use op::{Op, OpId, OpKind, Rank, Tag};
pub use schedule::{RankSchedule, Schedule, ScheduleStats};
pub use validate::ValidationError;
