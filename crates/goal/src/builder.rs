//! Append-only schedule construction.
//!
//! The builder enforces that every dependency refers to an *earlier* op of
//! the same rank, which makes cycles unrepresentable; schedules built here
//! skip the general acyclicity check in [`crate::validate`].

use crate::op::{Op, OpId, OpKind, Rank, Tag};
use crate::schedule::{RankSchedule, Schedule};
use cesim_model::Span;

/// Incrementally builds a [`Schedule`].
#[derive(Clone, Debug)]
pub struct ScheduleBuilder {
    ranks: Vec<Vec<Op>>,
}

impl ScheduleBuilder {
    /// A builder for `n` ranks.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a schedule needs at least one rank");
        ScheduleBuilder {
            ranks: vec![Vec::new(); n],
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Number of ops currently on `rank`.
    pub fn ops_on(&self, rank: Rank) -> usize {
        self.ranks[rank.idx()].len()
    }

    fn push(&mut self, rank: Rank, kind: OpKind, deps: &[OpId]) -> OpId {
        let ops = &mut self.ranks[rank.idx()];
        let id = OpId(u32::try_from(ops.len()).expect("too many ops on a rank"));
        for d in deps {
            assert!(
                d.0 < id.0,
                "dependency {d} of new op {id} on {rank} must point backwards"
            );
        }
        ops.push(Op {
            kind,
            deps: deps.to_vec(),
        });
        id
    }

    /// Append a compute interval.
    pub fn calc(&mut self, rank: Rank, dur: Span, deps: &[OpId]) -> OpId {
        self.push(rank, OpKind::Calc { dur }, deps)
    }

    /// Append a zero-duration synchronization node that joins `deps`.
    pub fn join(&mut self, rank: Rank, deps: &[OpId]) -> OpId {
        self.push(rank, OpKind::Calc { dur: Span::ZERO }, deps)
    }

    /// Append a send.
    pub fn send(&mut self, rank: Rank, dst: Rank, bytes: u64, tag: Tag, deps: &[OpId]) -> OpId {
        assert!(dst.idx() < self.num_ranks(), "send to unknown rank {dst}");
        assert!(dst != rank, "self-send on {rank} is not modeled");
        self.push(rank, OpKind::Send { dst, bytes, tag }, deps)
    }

    /// Append a receive (from a specific source, or any source if `None`).
    pub fn recv(
        &mut self,
        rank: Rank,
        src: Option<Rank>,
        bytes: u64,
        tag: Tag,
        deps: &[OpId],
    ) -> OpId {
        if let Some(s) = src {
            assert!(s.idx() < self.num_ranks(), "recv from unknown rank {s}");
            assert!(s != rank, "self-recv on {rank} is not modeled");
        }
        self.push(rank, OpKind::Recv { src, bytes, tag }, deps)
    }

    /// Finish construction.
    pub fn build(self) -> Schedule {
        Schedule {
            ranks: self
                .ranks
                .into_iter()
                .map(|ops| RankSchedule { ops })
                .collect(),
        }
    }
}

/// Allocates disjoint tag ranges to expanded collectives so that different
/// collective instances can never match each other's messages.
#[derive(Clone, Debug)]
pub struct TagPool {
    next: u32,
}

impl TagPool {
    /// A pool starting at [`crate::op::COLLECTIVE_TAG_BASE`].
    pub fn new() -> Self {
        TagPool {
            next: crate::op::COLLECTIVE_TAG_BASE,
        }
    }

    /// Reserve `count` consecutive tags and return the first.
    pub fn alloc(&mut self, count: u32) -> Tag {
        let t = Tag(self.next);
        self.next = self
            .next
            .checked_add(count)
            .expect("collective tag space exhausted");
        t
    }
}

impl Default for TagPool {
    fn default() -> Self {
        TagPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_chain() {
        let mut b = ScheduleBuilder::new(1);
        let a = b.calc(Rank(0), Span::from_ns(1), &[]);
        let c = b.calc(Rank(0), Span::from_ns(2), &[a]);
        let d = b.join(Rank(0), &[a, c]);
        let s = b.build();
        assert_eq!(s.ranks[0].ops.len(), 3);
        assert_eq!(s.ranks[0].ops[d.idx()].deps, vec![a, c]);
    }

    #[test]
    #[should_panic(expected = "point backwards")]
    fn forward_dep_rejected() {
        let mut b = ScheduleBuilder::new(1);
        b.calc(Rank(0), Span::ZERO, &[OpId(5)]);
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn self_send_rejected() {
        let mut b = ScheduleBuilder::new(2);
        b.send(Rank(0), Rank(0), 8, Tag(0), &[]);
    }

    #[test]
    #[should_panic(expected = "unknown rank")]
    fn out_of_range_dst_rejected() {
        let mut b = ScheduleBuilder::new(2);
        b.send(Rank(0), Rank(7), 8, Tag(0), &[]);
    }

    #[test]
    fn tag_pool_is_disjoint() {
        let mut p = TagPool::new();
        let a = p.alloc(10);
        let b = p.alloc(5);
        assert_eq!(b.0, a.0 + 10);
        assert!(a.0 >= crate::op::COLLECTIVE_TAG_BASE);
    }

    #[test]
    fn per_rank_ids_are_independent() {
        let mut b = ScheduleBuilder::new(2);
        let a0 = b.calc(Rank(0), Span::ZERO, &[]);
        let a1 = b.calc(Rank(1), Span::ZERO, &[]);
        assert_eq!(a0, OpId(0));
        assert_eq!(a1, OpId(0));
        assert_eq!(b.ops_on(Rank(0)), 1);
        assert_eq!(b.ops_on(Rank(1)), 1);
    }
}
