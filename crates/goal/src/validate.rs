//! Static schedule validation.
//!
//! Builder-constructed schedules are acyclic by construction, but parsed or
//! hand-assembled ones may not be; and nothing in the IR itself guarantees
//! that every send has a receive. [`Schedule::validate`] checks:
//!
//! 1. every dependency index is in range,
//! 2. every rank's DAG is acyclic (Kahn's algorithm),
//! 3. send/recv balance: for every destination rank and tag, the number of
//!    messages sent to it equals the number of receives it posts, and no
//!    specific-source receive outnumbers the sends from that source.
//!
//! Balance is necessary (not sufficient) for deadlock freedom; the engine
//! additionally detects actual deadlock at simulation time.

use crate::op::{OpKind, Rank, Tag};
use crate::schedule::Schedule;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why a schedule failed validation. Carries every detected problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Human-readable descriptions of each problem found.
    pub problems: Vec<String>,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule validation failed ({} problems):",
            self.problems.len()
        )?;
        for p in self.problems.iter().take(20) {
            writeln!(f, "  - {p}")?;
        }
        if self.problems.len() > 20 {
            writeln!(f, "  ... and {} more", self.problems.len() - 20)?;
        }
        Ok(())
    }
}

impl Error for ValidationError {}

impl Schedule {
    /// Run all static checks; see module docs.
    pub fn validate(&self) -> Result<(), ValidationError> {
        let mut problems = Vec::new();
        self.check_deps(&mut problems);
        if problems.is_empty() {
            self.check_matching(&mut problems);
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(ValidationError { problems })
        }
    }

    fn check_deps(&self, problems: &mut Vec<String>) {
        for (r, rank) in self.ranks.iter().enumerate() {
            let n = rank.ops.len();
            // Range check + in-degree count.
            let mut indeg = vec![0u32; n];
            let mut ok = true;
            for (i, op) in rank.ops.iter().enumerate() {
                for d in &op.deps {
                    if d.idx() >= n {
                        problems.push(format!(
                            "rank {r} op {i}: dependency {d} out of range (rank has {n} ops)"
                        ));
                        ok = false;
                    } else if d.idx() == i {
                        problems.push(format!("rank {r} op {i}: depends on itself"));
                        ok = false;
                    } else {
                        indeg[i] += 1;
                    }
                }
            }
            if !ok {
                continue;
            }
            // Kahn's algorithm for acyclicity. Build successor lists.
            let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
            for (i, op) in rank.ops.iter().enumerate() {
                for d in &op.deps {
                    succ[d.idx()].push(i as u32);
                }
            }
            let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indeg[i as usize] == 0).collect();
            let mut visited = 0usize;
            while let Some(i) = queue.pop() {
                visited += 1;
                for &s in &succ[i as usize] {
                    indeg[s as usize] -= 1;
                    if indeg[s as usize] == 0 {
                        queue.push(s);
                    }
                }
            }
            if visited != n {
                problems.push(format!(
                    "rank {r}: dependency cycle involving {} ops",
                    n - visited
                ));
            }
        }
    }

    fn check_matching(&self, problems: &mut Vec<String>) {
        // Per destination: sends grouped by (src, tag); recvs by (src, tag)
        // for specific sources and by tag for wildcards.
        let nranks = self.ranks.len();
        let mut sends_to: Vec<HashMap<(Rank, Tag), u64>> = vec![HashMap::new(); nranks];
        let mut recvs_spec: Vec<HashMap<(Rank, Tag), u64>> = vec![HashMap::new(); nranks];
        let mut recvs_any: Vec<HashMap<Tag, u64>> = vec![HashMap::new(); nranks];

        for (r, rank) in self.ranks.iter().enumerate() {
            for (i, op) in rank.ops.iter().enumerate() {
                match op.kind {
                    OpKind::Send { dst, tag, .. } => {
                        if dst.idx() >= nranks {
                            problems
                                .push(format!("rank {r} op {i}: send to nonexistent rank {dst}"));
                        } else {
                            *sends_to[dst.idx()].entry((Rank::from(r), tag)).or_insert(0) += 1;
                        }
                    }
                    OpKind::Recv { src, tag, .. } => match src {
                        Some(s) if s.idx() >= nranks => problems
                            .push(format!("rank {r} op {i}: recv from nonexistent rank {s}")),
                        Some(s) => {
                            *recvs_spec[r].entry((s, tag)).or_insert(0) += 1;
                        }
                        None => {
                            *recvs_any[r].entry(tag).or_insert(0) += 1;
                        }
                    },
                    OpKind::Calc { .. } => {}
                }
            }
        }
        if !problems.is_empty() {
            return;
        }

        for dst in 0..nranks {
            // Specific receives must not outnumber matching sends.
            let mut claimed: HashMap<Tag, u64> = HashMap::new();
            for (&(src, tag), &want) in &recvs_spec[dst] {
                let have = sends_to[dst].get(&(src, tag)).copied().unwrap_or(0);
                if want > have {
                    problems.push(format!(
                        "rank {dst}: posts {want} recvs from {src} tag {tag} but only {have} sends exist"
                    ));
                }
                *claimed.entry(tag).or_insert(0) += want.min(have);
            }
            // Per tag: total sends == specific + wildcard receives.
            let mut send_by_tag: HashMap<Tag, u64> = HashMap::new();
            for (&(_, tag), &c) in &sends_to[dst] {
                *send_by_tag.entry(tag).or_insert(0) += c;
            }
            let mut tags: Vec<Tag> = send_by_tag
                .keys()
                .chain(recvs_any[dst].keys())
                .chain(claimed.keys())
                .copied()
                .collect();
            tags.sort_unstable();
            tags.dedup();
            for tag in tags {
                let sent = send_by_tag.get(&tag).copied().unwrap_or(0);
                let spec = claimed.get(&tag).copied().unwrap_or(0);
                let any = recvs_any[dst].get(&tag).copied().unwrap_or(0);
                if sent != spec + any {
                    problems.push(format!(
                        "rank {dst} tag {tag}: {sent} messages sent but {} receives posted",
                        spec + any
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ScheduleBuilder;
    use crate::op::{Op, OpId};
    use cesim_model::Span;

    #[test]
    fn valid_pingpong() {
        let mut b = ScheduleBuilder::new(2);
        let s0 = b.send(Rank(0), Rank(1), 8, Tag(1), &[]);
        b.recv(Rank(0), Some(Rank(1)), 8, Tag(2), &[s0]);
        let r1 = b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[]);
        b.send(Rank(1), Rank(0), 8, Tag(2), &[r1]);
        assert!(b.build().validate().is_ok());
    }

    #[test]
    fn wildcard_recv_balances() {
        let mut b = ScheduleBuilder::new(3);
        b.send(Rank(0), Rank(2), 8, Tag(9), &[]);
        b.send(Rank(1), Rank(2), 8, Tag(9), &[]);
        b.recv(Rank(2), None, 8, Tag(9), &[]);
        b.recv(Rank(2), Some(Rank(1)), 8, Tag(9), &[]);
        assert!(b.build().validate().is_ok());
    }

    #[test]
    fn unmatched_send_detected() {
        let mut b = ScheduleBuilder::new(2);
        b.send(Rank(0), Rank(1), 8, Tag(1), &[]);
        let err = b.build().validate().unwrap_err();
        assert!(err.problems[0].contains("receives posted"), "{err}");
    }

    #[test]
    fn unmatched_recv_detected() {
        let mut b = ScheduleBuilder::new(2);
        b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[]);
        let err = b.build().validate().unwrap_err();
        assert!(!err.problems.is_empty());
        let text = format!("{err}");
        assert!(text.contains("validation failed"));
    }

    #[test]
    fn over_subscribed_specific_recv_detected() {
        let mut b = ScheduleBuilder::new(3);
        b.send(Rank(0), Rank(2), 8, Tag(3), &[]);
        b.recv(Rank(2), Some(Rank(0)), 8, Tag(3), &[]);
        b.recv(Rank(2), Some(Rank(0)), 8, Tag(3), &[]);
        let err = b.build().validate().unwrap_err();
        assert!(
            err.problems.iter().any(|p| p.contains("only 1 sends")),
            "{err}"
        );
    }

    #[test]
    fn cycle_detected() {
        // Hand-assemble a cyclic rank (builder cannot produce one).
        let mut s = Schedule::with_ranks(1);
        s.ranks[0].ops = vec![
            Op {
                kind: OpKind::Calc { dur: Span::ZERO },
                deps: vec![OpId(1)],
            },
            Op {
                kind: OpKind::Calc { dur: Span::ZERO },
                deps: vec![OpId(0)],
            },
        ];
        let err = s.validate().unwrap_err();
        assert!(err.problems[0].contains("cycle"), "{err}");
    }

    #[test]
    fn out_of_range_dep_detected() {
        let mut s = Schedule::with_ranks(1);
        s.ranks[0].ops = vec![Op {
            kind: OpKind::Calc { dur: Span::ZERO },
            deps: vec![OpId(7)],
        }];
        let err = s.validate().unwrap_err();
        assert!(err.problems[0].contains("out of range"), "{err}");
    }

    #[test]
    fn self_dep_detected() {
        let mut s = Schedule::with_ranks(1);
        s.ranks[0].ops = vec![Op {
            kind: OpKind::Calc { dur: Span::ZERO },
            deps: vec![OpId(0)],
        }];
        let err = s.validate().unwrap_err();
        assert!(err.problems[0].contains("itself"), "{err}");
    }
}
