//! Operation types: the nodes of a rank's dependency DAG.

use cesim_model::Span;
use core::fmt;

/// An MPI rank (process) index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Rank(pub u32);

impl Rank {
    /// The rank as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<usize> for Rank {
    fn from(v: usize) -> Self {
        Rank(u32::try_from(v).expect("rank exceeds u32"))
    }
}

/// An MPI message tag.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Tag(pub u32);

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// First tag reserved for expanded collectives; point-to-point traffic in
/// workload skeletons stays below this.
pub const COLLECTIVE_TAG_BASE: u32 = 0x4000_0000;

/// Identifier of an operation *within one rank's schedule* (its index in
/// [`crate::RankSchedule::ops`]). Dependencies never cross ranks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub u32);

impl OpId {
    /// The op id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// What an operation does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// Occupy the CPU for `dur` of work (stretched by injected CE detours).
    Calc {
        /// Amount of CPU work.
        dur: Span,
    },
    /// Transmit `bytes` to `dst` with `tag`.
    Send {
        /// Destination rank.
        dst: Rank,
        /// Message payload size.
        bytes: u64,
        /// Message tag.
        tag: Tag,
    },
    /// Receive `bytes` from `src` (or from any source if `None`) with `tag`.
    Recv {
        /// Source rank; `None` is `MPI_ANY_SOURCE`.
        src: Option<Rank>,
        /// Expected payload size (informational; the sender's size governs
        /// transfer cost).
        bytes: u64,
        /// Message tag.
        tag: Tag,
    },
}

impl OpKind {
    /// True for `Send`.
    pub fn is_send(&self) -> bool {
        matches!(self, OpKind::Send { .. })
    }

    /// True for `Recv`.
    pub fn is_recv(&self) -> bool {
        matches!(self, OpKind::Recv { .. })
    }

    /// True for `Calc`.
    pub fn is_calc(&self) -> bool {
        matches!(self, OpKind::Calc { .. })
    }
}

/// One node of a rank's dependency DAG.
#[derive(Clone, Debug, PartialEq)]
pub struct Op {
    /// The operation.
    pub kind: OpKind,
    /// Intra-rank dependencies: this op may start only after every listed
    /// op has completed.
    pub deps: Vec<OpId>,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Calc { dur } => write!(f, "calc {}", dur),
            OpKind::Send { dst, bytes, tag } => {
                write!(f, "send {bytes}B to {dst} tag {tag}")
            }
            OpKind::Recv { src, bytes, tag } => match src {
                Some(s) => write!(f, "recv {bytes}B from {s} tag {tag}"),
                None => write!(f, "recv {bytes}B from any tag {tag}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let c = OpKind::Calc {
            dur: Span::from_ns(1),
        };
        let s = OpKind::Send {
            dst: Rank(1),
            bytes: 8,
            tag: Tag(0),
        };
        let r = OpKind::Recv {
            src: None,
            bytes: 8,
            tag: Tag(0),
        };
        assert!(c.is_calc() && !c.is_send() && !c.is_recv());
        assert!(s.is_send() && !s.is_calc());
        assert!(r.is_recv() && !r.is_send());
    }

    #[test]
    fn display_forms() {
        let s = OpKind::Send {
            dst: Rank(3),
            bytes: 64,
            tag: Tag(7),
        };
        assert_eq!(format!("{s}"), "send 64B to r3 tag 7");
        let r = OpKind::Recv {
            src: Some(Rank(2)),
            bytes: 64,
            tag: Tag(7),
        };
        assert_eq!(format!("{r}"), "recv 64B from r2 tag 7");
        let any = OpKind::Recv {
            src: None,
            bytes: 1,
            tag: Tag(0),
        };
        assert_eq!(format!("{any}"), "recv 1B from any tag 0");
    }

    #[test]
    fn rank_conversions() {
        let r: Rank = 5usize.into();
        assert_eq!(r, Rank(5));
        assert_eq!(r.idx(), 5);
        assert_eq!(OpId(9).idx(), 9);
    }
}
