//! # cesim-model
//!
//! Foundation types for the DRAM correctable-error (CE) logging simulation
//! study (reproduction of *"Understanding the Effects of DRAM Correctable
//! Error Logging at Scale"*, Ferreira et al., IEEE CLUSTER 2021).
//!
//! This crate is dependency-free and provides:
//!
//! * [`time`] — picosecond-resolution simulated time ([`Time`]) and
//!   durations ([`Span`]). Picoseconds are required because the LogGOPS
//!   per-byte gap `G` on a Cray-XC40-class network is a fraction of a
//!   nanosecond.
//! * [`params`] — the LogGOPS network/CPU model parameters
//!   ([`LogGopsParams`]) used by the discrete-event engine.
//! * [`logging`] — the three CE logging modes the paper evaluates
//!   ([`LoggingMode`]): hardware-only correction (150 ns/event), software/OS
//!   decoding via CMCI (775 µs/event) and firmware decoding via EMCA
//!   (133 ms/event).
//! * [`system`] — Table II of the paper: measured and hypothesized CE rates
//!   for Google/Facebook fleets, Cielo, Trinity, Summit and a family of
//!   straw-man exascale systems, plus the algebra converting CEs/GiB/year
//!   into a per-node mean time between correctable errors
//!   ([`SystemSpec::mtbce_node`]).
//! * [`rng`] — a small, deterministic xoshiro256++ PRNG ([`rng::Rng64`])
//!   with exponential sampling. We deliberately hand-roll this (~60 lines)
//!   instead of depending on `rand`: experiment reproducibility requires
//!   bit-stable streams across toolchain updates, and the engine only needs
//!   uniform and exponential draws.
//!
//! Everything downstream (`cesim-goal`, `cesim-engine`, `cesim-noise`,
//! `cesim-workloads`, `cesim-core`) builds on these types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod logging;
pub mod params;
pub mod rng;
pub mod system;
pub mod time;
pub mod units;

pub use logging::LoggingMode;
pub use params::LogGopsParams;
pub use system::SystemSpec;
pub use time::{Span, Time};
pub use units::parse_span;
