//! LogGOPS model parameters.
//!
//! The engine implements the LogGOPS model (Hoefler et al., "LogGOPSim —
//! simulating large-scale applications in the LogGOPS model", HPDC 2010),
//! an extension of LogP:
//!
//! | param | meaning                                                     |
//! |-------|-------------------------------------------------------------|
//! | `L`   | wire latency for the first byte                             |
//! | `o`   | CPU overhead per message (paid by sender *and* receiver)    |
//! | `g`   | NIC gap between consecutive message injections              |
//! | `G`   | NIC/wire gap per byte (inverse bandwidth)                   |
//! | `O`   | CPU overhead per byte (memory copies)                       |
//! | `P`   | number of processes (implicit: the schedule's rank count)   |
//! | `S`   | eager→rendezvous protocol switch threshold, in bytes        |
//!
//! The paper configures LogGOPSim "to use the network parameters collected
//! on a Cray XC40 system" (Ferreira et al., *Characterizing MPI matching
//! via trace-based simulation*, ParCo 2018). The exact tabulated values are
//! not reprinted in the paper; [`LogGopsParams::xc40`] encodes
//! XC40/Aries-class values of the right order (≈1 µs one-sided latency,
//! ≈14 GB/s per-NIC stream bandwidth, 16 KiB rendezvous threshold) and the
//! type is plain data so every experiment can override them.

use crate::time::Span;

/// The LogGOPS parameter set used by the discrete-event engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogGopsParams {
    /// Wire latency `L`.
    pub latency: Span,
    /// Per-message CPU overhead `o` (applied on send and on receive).
    pub overhead: Span,
    /// Per-message NIC gap `g` (injection serialization).
    pub gap: Span,
    /// Per-byte gap `G`, in picoseconds per byte (inverse bandwidth).
    pub gap_per_byte_ps: u64,
    /// Per-byte CPU overhead `O`, in picoseconds per byte.
    pub cpu_per_byte_ps: u64,
    /// Eager/rendezvous switch threshold `S`, in bytes. Messages strictly
    /// larger than this use the rendezvous protocol.
    pub eager_threshold: u64,
    /// Additional wire latency per hop beyond the first, applied when the
    /// engine is given a non-flat [topology](../cesim_engine/topology).
    /// Zero (the default) reproduces the paper's flat network exactly.
    pub hop_latency: Span,
}

impl LogGopsParams {
    /// Cray-XC40/Aries-class parameters (see module docs).
    ///
    /// * `L` = 1.0 µs, `o` = 1.5 µs, `g` = 1.8 µs
    /// * `G` = 70 ps/B ≈ 14.3 GB/s
    /// * `O` = 30 ps/B ≈ 33 GB/s copy bandwidth
    /// * `S` = 16 KiB
    pub fn xc40() -> Self {
        LogGopsParams {
            latency: Span::from_ns(1_000),
            overhead: Span::from_ns(1_500),
            gap: Span::from_ns(1_800),
            gap_per_byte_ps: 70,
            cpu_per_byte_ps: 30,
            eager_threshold: 16 * 1024,
            hop_latency: Span::ZERO,
        }
    }

    /// An idealized zero-cost network; useful in unit tests where only the
    /// dependency structure matters.
    pub fn ideal() -> Self {
        LogGopsParams {
            latency: Span::ZERO,
            overhead: Span::ZERO,
            gap: Span::ZERO,
            gap_per_byte_ps: 0,
            cpu_per_byte_ps: 0,
            eager_threshold: u64::MAX,
            hop_latency: Span::ZERO,
        }
    }

    /// Builder-style override of `L`.
    pub fn with_latency(mut self, latency: Span) -> Self {
        self.latency = latency;
        self
    }

    /// Builder-style override of `o`.
    pub fn with_overhead(mut self, overhead: Span) -> Self {
        self.overhead = overhead;
        self
    }

    /// Builder-style override of `g`.
    pub fn with_gap(mut self, gap: Span) -> Self {
        self.gap = gap;
        self
    }

    /// Builder-style override of `G` (ps per byte).
    pub fn with_gap_per_byte_ps(mut self, ps: u64) -> Self {
        self.gap_per_byte_ps = ps;
        self
    }

    /// Builder-style override of `O` (ps per byte).
    pub fn with_cpu_per_byte_ps(mut self, ps: u64) -> Self {
        self.cpu_per_byte_ps = ps;
        self
    }

    /// Builder-style override of `S` (bytes).
    pub fn with_eager_threshold(mut self, bytes: u64) -> Self {
        self.eager_threshold = bytes;
        self
    }

    /// Builder-style override of the per-hop latency surcharge.
    pub fn with_hop_latency(mut self, hop: Span) -> Self {
        self.hop_latency = hop;
        self
    }

    /// CPU time to hand a message of `bytes` to/from the NIC: `o + bytes·O`.
    #[inline]
    pub fn cpu_cost(&self, bytes: u64) -> Span {
        self.overhead + Span::from_ps(bytes.saturating_mul(self.cpu_per_byte_ps))
    }

    /// NIC occupancy for injecting a message of `bytes`: `g + bytes·G`.
    #[inline]
    pub fn nic_cost(&self, bytes: u64) -> Span {
        self.gap + Span::from_ps(bytes.saturating_mul(self.gap_per_byte_ps))
    }

    /// Time from injection start until the last byte is available at the
    /// destination: `L + bytes·G`.
    #[inline]
    pub fn wire_time(&self, bytes: u64) -> Span {
        self.latency + Span::from_ps(bytes.saturating_mul(self.gap_per_byte_ps))
    }

    /// Whether a message of `bytes` uses the rendezvous protocol.
    #[inline]
    pub fn is_rendezvous(&self, bytes: u64) -> bool {
        bytes > self.eager_threshold
    }

    /// Sanity-check the parameter set (latency/overhead/gap fit in the
    /// simulated-time budget, threshold non-zero).
    pub fn validate(&self) -> Result<(), String> {
        if self.eager_threshold == 0 {
            return Err("eager_threshold must be at least 1 byte".into());
        }
        if self.latency > Span::from_secs(1) {
            return Err(format!("latency {} is implausibly large", self.latency));
        }
        Ok(())
    }
}

impl Default for LogGopsParams {
    fn default() -> Self {
        LogGopsParams::xc40()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xc40_costs() {
        let p = LogGopsParams::xc40();
        // 8-byte eager message.
        assert_eq!(p.cpu_cost(8), Span::from_ns(1_500) + Span::from_ps(240));
        assert_eq!(p.nic_cost(8), Span::from_ns(1_800) + Span::from_ps(560));
        assert_eq!(p.wire_time(8), Span::from_ns(1_000) + Span::from_ps(560));
        assert!(!p.is_rendezvous(16 * 1024));
        assert!(p.is_rendezvous(16 * 1024 + 1));
    }

    #[test]
    fn bandwidth_is_xc40_class() {
        let p = LogGopsParams::xc40();
        // 1 MiB transfer: bytes*G should correspond to ~14.3 GB/s.
        let bytes = 1u64 << 20;
        let t = Span::from_ps(bytes * p.gap_per_byte_ps).as_secs_f64();
        let gbps = bytes as f64 / t / 1e9;
        assert!((10.0..20.0).contains(&gbps), "bandwidth {gbps} GB/s");
    }

    #[test]
    fn ideal_is_free() {
        let p = LogGopsParams::ideal();
        assert_eq!(p.cpu_cost(1 << 30), Span::ZERO);
        assert_eq!(p.nic_cost(1 << 30), Span::ZERO);
        assert_eq!(p.wire_time(1 << 30), Span::ZERO);
        assert!(!p.is_rendezvous(u64::MAX - 1));
    }

    #[test]
    fn builder_overrides() {
        let p = LogGopsParams::xc40()
            .with_latency(Span::from_ns(5))
            .with_overhead(Span::from_ns(6))
            .with_gap(Span::from_ns(7))
            .with_gap_per_byte_ps(1)
            .with_cpu_per_byte_ps(2)
            .with_eager_threshold(64);
        assert_eq!(p.latency, Span::from_ns(5));
        assert_eq!(p.overhead, Span::from_ns(6));
        assert_eq!(p.gap, Span::from_ns(7));
        assert_eq!(p.gap_per_byte_ps, 1);
        assert_eq!(p.cpu_per_byte_ps, 2);
        assert!(p.is_rendezvous(65));
    }

    #[test]
    fn validation() {
        assert!(LogGopsParams::xc40().validate().is_ok());
        assert!(LogGopsParams::xc40()
            .with_eager_threshold(0)
            .validate()
            .is_err());
        assert!(LogGopsParams::xc40()
            .with_latency(Span::from_secs(2))
            .validate()
            .is_err());
    }
}
