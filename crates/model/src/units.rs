//! Human-friendly unit parsing for CLI and config surfaces.
//!
//! Accepts durations like `150ns`, `775us` (or `775µs`), `133ms`,
//! `1.5s`, `720`, `2m`, `1h` — bare numbers are seconds, matching the
//! paper's tables.

use crate::time::Span;

/// Parse a human-friendly duration string into a [`Span`].
///
/// Supported suffixes: `ps`, `ns`, `us`/`µs`, `ms`, `s` (default), `m`
/// (minutes), `h` (hours). Fractions are allowed; whitespace between the
/// number and the unit is tolerated.
pub fn parse_span(input: &str) -> Result<Span, String> {
    let s = input.trim();
    if s.is_empty() {
        return Err("empty duration".into());
    }
    // Split the numeric prefix from the unit suffix.
    let split = s
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_digit() || *c == '.' || *c == '-' || *c == '+'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let value: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("invalid number '{num}' in duration '{input}'"))?;
    if value < 0.0 || !value.is_finite() {
        return Err(format!(
            "duration '{input}' must be non-negative and finite"
        ));
    }
    let seconds = match unit.trim() {
        "ps" => value * 1e-12,
        "ns" => value * 1e-9,
        "us" | "µs" => value * 1e-6,
        "ms" => value * 1e-3,
        "" | "s" | "sec" | "secs" => value,
        "m" | "min" => value * 60.0,
        "h" | "hr" => value * 3600.0,
        other => return Err(format!("unknown unit '{other}' in duration '{input}'")),
    };
    Ok(Span::from_secs_f64(seconds))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_parse() {
        assert_eq!(parse_span("150ns").unwrap(), Span::from_ns(150));
        assert_eq!(parse_span("775us").unwrap(), Span::from_us(775));
        assert_eq!(parse_span("775µs").unwrap(), Span::from_us(775));
        assert_eq!(parse_span("133ms").unwrap(), Span::from_ms(133));
        assert_eq!(parse_span("720").unwrap(), Span::from_secs(720));
        assert_eq!(parse_span("720s").unwrap(), Span::from_secs(720));
        assert_eq!(parse_span("0.2s").unwrap(), Span::from_ms(200));
    }

    #[test]
    fn minutes_hours_and_whitespace() {
        assert_eq!(parse_span("2m").unwrap(), Span::from_secs(120));
        assert_eq!(parse_span("1h").unwrap(), Span::from_secs(3600));
        assert_eq!(parse_span(" 5 ms ").unwrap(), Span::from_ms(5));
        assert_eq!(parse_span("1.5 s").unwrap(), Span::from_ms(1500));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_span("").is_err());
        assert!(parse_span("fast").is_err());
        assert!(parse_span("10 parsecs").is_err());
        assert!(parse_span("-5ms").is_err());
        assert!(parse_span("1..5s").is_err());
        assert!(parse_span("inf").is_err());
    }

    #[test]
    fn roundtrips_display_forms() {
        // Display produces e.g. "133.000ms"; that must re-parse.
        for span in [
            Span::from_ns(150),
            Span::from_us(775),
            Span::from_ms(133),
            Span::from_secs(5544),
        ] {
            let text = format!("{span}");
            assert_eq!(parse_span(&text).unwrap(), span, "{text}");
        }
    }
}
