//! System specifications — Table II of the paper.
//!
//! Each row describes a real or hypothetical system by its DRAM correctable
//! error rate. The quantity the simulation consumes is the **mean time
//! between correctable errors per node**, `MTBCE_node`, derived as
//!
//! ```text
//! MTBCE_node = seconds_per_year / (CEs_per_GiB_year × GiB_per_node)
//! ```
//!
//! The measured baselines are Google's fleet (Schroeder et al., CACM 2011),
//! Facebook's fleet (Meza et al., DSN 2015) and the Cielo supercomputer
//! (Levy et al., SC 2018 — 0.82 CEs/GiB/year under chipkill-correct ECC,
//! the most reliable rate in the literature). Trinity and Summit reuse the
//! Cielo per-GiB rate (all three use chipkill), and the exascale straw-man
//! systems scale the Cielo rate by ×1/×10/×20/×100 plus the Facebook median
//! (108 CEs/GiB/year ≈ 120× Cielo).
//!
//! The paper's own `MTBCE_node` column contains minor rounding
//! inconsistencies (e.g. 311,400 s for Trinity where the stated rates give
//! ≈300,500 s); we always *compute* MTBCE from the per-GiB rate and keep
//! the paper's quoted value alongside for comparison in reports.

use crate::time::Span;
use core::fmt;

/// Seconds per (365-day) year, the convention used throughout.
pub const SECONDS_PER_YEAR: f64 = 365.0 * 24.0 * 3600.0;

/// The Cielo chipkill-correct CE rate, CEs per GiB per year (Levy et al.).
pub const CIELO_CES_PER_GIB_YEAR: f64 = 0.82;

/// The Facebook fleet median CE rate, CEs per GiB per year (Meza et al.).
pub const FACEBOOK_MEDIAN_CES_PER_GIB_YEAR: f64 = 108.0;

/// One row of Table II: a system characterized by its CE rate.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemSpec {
    /// Display name, e.g. `"Exascale (CE_Cielo x10)"`.
    pub name: &'static str,
    /// DRAM capacity per node, GiB. For the data-center fleets this is a
    /// representative value within the published range.
    pub gib_per_node: f64,
    /// Correctable errors per GiB of DRAM per year.
    pub ces_per_gib_year: f64,
    /// Physical node count, if the system has one (the fleets do not).
    pub nodes: Option<u32>,
    /// Node count used in the paper's simulations, if simulated.
    pub simulated_nodes: Option<u32>,
    /// The `MTBCE_node` value printed in Table II, in seconds, for
    /// cross-checking (see module docs on rounding).
    pub paper_mtbce_seconds: Option<f64>,
}

impl SystemSpec {
    /// Correctable errors per node per year.
    pub fn ces_per_node_year(&self) -> f64 {
        self.ces_per_gib_year * self.gib_per_node
    }

    /// Mean time between correctable errors on one node (computed).
    pub fn mtbce_node(&self) -> Span {
        let rate = self.ces_per_node_year();
        assert!(rate > 0.0, "system {} has a zero CE rate", self.name);
        Span::from_secs_f64(SECONDS_PER_YEAR / rate)
    }

    /// The paper's quoted `MTBCE_node`, if any.
    pub fn paper_mtbce(&self) -> Option<Span> {
        self.paper_mtbce_seconds.map(Span::from_secs_f64)
    }

    /// Google fleet (Schroeder et al. 2011): 11,384 CEs/GiB/yr, ~2 GiB/node.
    pub fn google() -> Self {
        SystemSpec {
            name: "Google",
            gib_per_node: 2.0,
            ces_per_gib_year: 11_384.0,
            nodes: None,
            simulated_nodes: None,
            paper_mtbce_seconds: Some(1_368.0),
        }
    }

    /// Facebook fleet (Meza et al. 2015): 460 CEs/GiB/yr average,
    /// ~13 GiB/node representative.
    pub fn facebook() -> Self {
        SystemSpec {
            name: "Facebook",
            gib_per_node: 13.0,
            ces_per_gib_year: 460.0,
            nodes: None,
            simulated_nodes: None,
            paper_mtbce_seconds: Some(5_292.0),
        }
    }

    /// Cielo (LANL, Cray XE6): 32 GiB/node, 0.82 CEs/GiB/yr measured over
    /// the machine's lifetime; 8,894 nodes, simulated as 8,192.
    pub fn cielo() -> Self {
        SystemSpec {
            name: "Cielo",
            gib_per_node: 32.0,
            ces_per_gib_year: CIELO_CES_PER_GIB_YEAR,
            nodes: Some(8_894),
            simulated_nodes: Some(8_192),
            paper_mtbce_seconds: Some(1.2e6),
        }
    }

    /// Trinity (LANL, Cray XC40) with the Cielo per-GiB rate: 128 GiB/node,
    /// 19,420 nodes, simulated as 16,384.
    pub fn trinity() -> Self {
        SystemSpec {
            name: "Trinity (w/ CE_Cielo)",
            gib_per_node: 128.0,
            ces_per_gib_year: CIELO_CES_PER_GIB_YEAR,
            nodes: Some(19_420),
            simulated_nodes: Some(16_384),
            paper_mtbce_seconds: Some(311_400.0),
        }
    }

    /// Summit (ORNL) with the Cielo per-GiB rate: 608 GiB/node, 4,608
    /// nodes, simulated as 4,096.
    pub fn summit() -> Self {
        SystemSpec {
            name: "Summit (w/ CE_Cielo)",
            gib_per_node: 608.0,
            ces_per_gib_year: CIELO_CES_PER_GIB_YEAR,
            nodes: Some(4_608),
            simulated_nodes: Some(4_096),
            paper_mtbce_seconds: Some(62_280.0),
        }
    }

    /// A straw-man exascale system: 16,384 nodes × 700 GiB, CE rate at
    /// `multiplier` × the Cielo rate. The paper evaluates ×1, ×10, ×20 and
    /// ×100.
    pub fn exascale_cielo_x(multiplier: u32) -> Self {
        let (name, paper) = match multiplier {
            1 => ("Exascale (w/ CE_Cielo)", Some(55_440.0)),
            10 => ("Exascale (w/ CE_Cielo x10)", Some(5_544.0)),
            20 => ("Exascale (w/ CE_Cielo x20)", Some(3_024.0)),
            100 => ("Exascale (w/ CE_Cielo x100)", Some(554.4)),
            _ => ("Exascale (w/ CE_Cielo xN)", None),
        };
        SystemSpec {
            name,
            gib_per_node: 700.0,
            ces_per_gib_year: CIELO_CES_PER_GIB_YEAR * multiplier as f64,
            nodes: Some(16_384),
            simulated_nodes: Some(16_384),
            paper_mtbce_seconds: paper,
        }
    }

    /// The exascale straw man at the Facebook median rate (≈120× Cielo).
    pub fn exascale_facebook_median() -> Self {
        SystemSpec {
            name: "Exascale (w/ CE_median(Facebook))",
            gib_per_node: 700.0,
            ces_per_gib_year: FACEBOOK_MEDIAN_CES_PER_GIB_YEAR,
            nodes: Some(16_384),
            simulated_nodes: Some(16_384),
            paper_mtbce_seconds: Some(432.0),
        }
    }

    /// All rows of Table II, in the paper's order.
    pub fn table2() -> Vec<SystemSpec> {
        vec![
            SystemSpec::google(),
            SystemSpec::facebook(),
            SystemSpec::cielo(),
            SystemSpec::trinity(),
            SystemSpec::summit(),
            SystemSpec::exascale_cielo_x(1),
            SystemSpec::exascale_cielo_x(10),
            SystemSpec::exascale_cielo_x(20),
            SystemSpec::exascale_cielo_x(100),
            SystemSpec::exascale_facebook_median(),
        ]
    }

    /// The three existing systems Figure 4 evaluates.
    pub fn fig4_systems() -> Vec<SystemSpec> {
        vec![
            SystemSpec::cielo(),
            SystemSpec::trinity(),
            SystemSpec::summit(),
        ]
    }

    /// The five hypothetical exascale systems Figure 5 evaluates.
    pub fn fig5_systems() -> Vec<SystemSpec> {
        vec![
            SystemSpec::exascale_cielo_x(1),
            SystemSpec::exascale_cielo_x(10),
            SystemSpec::exascale_cielo_x(20),
            SystemSpec::exascale_cielo_x(100),
            SystemSpec::exascale_facebook_median(),
        ]
    }
}

impl fmt::Display for SystemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.1} GiB/node, {:.2} CEs/GiB/yr, MTBCE_node = {}",
            self.name,
            self.gib_per_node,
            self.ces_per_gib_year,
            self.mtbce_node()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Computed MTBCE should be within `tol_pct` of the paper's quoted
    /// value (the paper's own column has rounding slop; see module docs).
    fn check_close(sys: &SystemSpec, tol_pct: f64) {
        let got = sys.mtbce_node().as_secs_f64();
        let want = sys.paper_mtbce_seconds.unwrap();
        let err = (got - want).abs() / want * 100.0;
        assert!(
            err < tol_pct,
            "{}: computed {got:.1}s vs paper {want:.1}s ({err:.1}% off)",
            sys.name
        );
    }

    #[test]
    fn mtbce_matches_paper_within_rounding() {
        check_close(&SystemSpec::google(), 2.0);
        check_close(&SystemSpec::cielo(), 1.0);
        check_close(&SystemSpec::summit(), 2.0);
        check_close(&SystemSpec::exascale_cielo_x(1), 2.0);
        check_close(&SystemSpec::exascale_cielo_x(10), 2.0);
        check_close(&SystemSpec::exascale_cielo_x(100), 2.0);
        // The Trinity, x20 and FB-median rows carry the paper's larger
        // rounding slop (see module docs): stay within 11%.
        check_close(&SystemSpec::trinity(), 11.0);
        check_close(&SystemSpec::exascale_cielo_x(20), 11.0);
        check_close(&SystemSpec::exascale_facebook_median(), 11.0);
    }

    #[test]
    fn cielo_mtbce_is_about_1_2e6_seconds() {
        let mtbce = SystemSpec::cielo().mtbce_node().as_secs_f64();
        assert!((1.19e6..1.21e6).contains(&mtbce), "mtbce = {mtbce}");
    }

    #[test]
    fn exascale_scaling_is_linear() {
        let x1 = SystemSpec::exascale_cielo_x(1).mtbce_node().as_secs_f64();
        let x10 = SystemSpec::exascale_cielo_x(10).mtbce_node().as_secs_f64();
        let x100 = SystemSpec::exascale_cielo_x(100).mtbce_node().as_secs_f64();
        assert!((x1 / x10 - 10.0).abs() < 1e-6);
        assert!((x1 / x100 - 100.0).abs() < 1e-6);
    }

    #[test]
    fn facebook_median_is_about_120x_cielo() {
        let ratio = FACEBOOK_MEDIAN_CES_PER_GIB_YEAR / CIELO_CES_PER_GIB_YEAR;
        assert!((130.0 - ratio).abs() < 15.0, "ratio = {ratio}");
    }

    #[test]
    fn table2_has_ten_rows_in_order() {
        let t = SystemSpec::table2();
        assert_eq!(t.len(), 10);
        assert_eq!(t[0].name, "Google");
        assert_eq!(t[2].name, "Cielo");
        assert_eq!(t[9].name, "Exascale (w/ CE_median(Facebook))");
        // MTBCE must be monotonically decreasing across the exascale family.
        let exa: Vec<f64> = t[5..]
            .iter()
            .map(|s| s.mtbce_node().as_secs_f64())
            .collect();
        for w in exa.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn figure_system_sets() {
        assert_eq!(SystemSpec::fig4_systems().len(), 3);
        assert_eq!(SystemSpec::fig5_systems().len(), 5);
        for s in SystemSpec::fig5_systems() {
            assert_eq!(s.simulated_nodes, Some(16_384));
            assert_eq!(s.gib_per_node, 700.0);
        }
    }

    #[test]
    fn display_contains_mtbce() {
        let s = format!("{}", SystemSpec::cielo());
        assert!(s.contains("Cielo"));
        assert!(s.contains("MTBCE"));
    }
}
