//! Correctable-error logging modes and their per-event CPU costs.
//!
//! §IV-A of the paper measures, on a 4-socket Skylake node (Blake) using
//! APEI EINJ injection and the `selfish` detour probe, the CPU time stolen
//! per correctable error for three handling configurations. The figure
//! captions of Figs. 3–7 then use these values as the simulated per-event
//! detour:
//!
//! * **hardware-only correction, no logging** — indistinguishable from the
//!   native noise floor; modeled as 150 ns (the `selfish` detection
//!   threshold used in the paper).
//! * **software/OS logging (CMCI)** — a Corrected Machine-Check Interrupt
//!   per error, decoded by the OS: 775 µs per event.
//! * **firmware logging (EMCA, firmware-first)** — a System Management
//!   Interrupt halts *all* cores while firmware assembles DIMM-precise
//!   error records: 133 ms per event (amortized 7 ms SMI per error plus a
//!   ~500 ms decode every 10th error at the paper's firmware threshold,
//!   folded into the single 133 ms/event figure used in the captions).

use crate::time::Span;
use core::fmt;

/// How a correctable error is corrected/decoded/logged, which determines
/// the per-event CPU detour injected into the simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LoggingMode {
    /// ECC correction in hardware, no decode or log (150 ns/event).
    HardwareOnly,
    /// OS-level decode+log via CMCI (775 µs/event).
    Software,
    /// Firmware-first decode+log via EMCA/SMM (133 ms/event).
    Firmware,
    /// An arbitrary per-event cost; used by the Fig. 7 duration sweep.
    Custom(Span),
}

impl LoggingMode {
    /// Per-event cost of hardware-only correction.
    pub const HARDWARE_COST: Span = Span::from_ns(150);
    /// Per-event cost of software (CMCI) logging.
    pub const SOFTWARE_COST: Span = Span::from_us(775);
    /// Per-event cost of firmware (EMCA) logging.
    pub const FIRMWARE_COST: Span = Span::from_ms(133);

    /// The CPU detour injected per correctable error.
    pub fn per_event_cost(self) -> Span {
        match self {
            LoggingMode::HardwareOnly => Self::HARDWARE_COST,
            LoggingMode::Software => Self::SOFTWARE_COST,
            LoggingMode::Firmware => Self::FIRMWARE_COST,
            LoggingMode::Custom(s) => s,
        }
    }

    /// The three named modes evaluated throughout the paper, in the order
    /// the figures plot them.
    pub fn all() -> [LoggingMode; 3] {
        [
            LoggingMode::HardwareOnly,
            LoggingMode::Software,
            LoggingMode::Firmware,
        ]
    }

    /// Short label used in reports ("hw", "sw", "fw", "custom").
    pub fn short_label(self) -> &'static str {
        match self {
            LoggingMode::HardwareOnly => "hw",
            LoggingMode::Software => "sw",
            LoggingMode::Firmware => "fw",
            LoggingMode::Custom(_) => "custom",
        }
    }
}

impl fmt::Display for LoggingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoggingMode::HardwareOnly => write!(f, "hardware-only (150ns/event)"),
            LoggingMode::Software => write!(f, "software CMCI (775us/event)"),
            LoggingMode::Firmware => write!(f, "firmware EMCA (133ms/event)"),
            LoggingMode::Custom(s) => write!(f, "custom ({s}/event)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_costs() {
        assert_eq!(
            LoggingMode::HardwareOnly.per_event_cost(),
            Span::from_ns(150)
        );
        assert_eq!(LoggingMode::Software.per_event_cost(), Span::from_us(775));
        assert_eq!(LoggingMode::Firmware.per_event_cost(), Span::from_ms(133));
        assert_eq!(
            LoggingMode::Custom(Span::from_us(7)).per_event_cost(),
            Span::from_us(7)
        );
    }

    #[test]
    fn ordering_of_costs() {
        let [hw, sw, fw] = LoggingMode::all();
        assert!(hw.per_event_cost() < sw.per_event_cost());
        assert!(sw.per_event_cost() < fw.per_event_cost());
    }

    #[test]
    fn labels() {
        assert_eq!(LoggingMode::HardwareOnly.short_label(), "hw");
        assert_eq!(LoggingMode::Software.short_label(), "sw");
        assert_eq!(LoggingMode::Firmware.short_label(), "fw");
        assert!(format!("{}", LoggingMode::Firmware).contains("133ms"));
    }
}
