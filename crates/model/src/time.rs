//! Simulated time.
//!
//! The engine keeps time in integer **picoseconds**. A `u64` of picoseconds
//! covers ~213 days of simulated time, comfortably more than the longest
//! perturbed run the study produces (hours), while still resolving the
//! sub-nanosecond per-byte gap `G` of a modern HPC interconnect.
//!
//! Two distinct types keep instants and durations from being mixed up:
//!
//! * [`Time`] — an instant on the simulated clock (picoseconds since the
//!   start of the run).
//! * [`Span`] — a non-negative duration.
//!
//! The arithmetic that is physically meaningful is implemented
//! (`Time + Span -> Time`, `Time - Time -> Span`, `Span + Span -> Span`,
//! `Span * u64`, …); everything else is a compile error.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An instant on the simulated clock, in picoseconds since time zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A non-negative duration of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span(u64);

impl Time {
    /// The start of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as an "infinity" sentinel).
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// The raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Duration since `earlier`. Panics in debug builds if `earlier > self`.
    #[inline]
    pub fn since(self, earlier: Time) -> Span {
        debug_assert!(earlier.0 <= self.0, "Time::since: earlier > self");
        Span(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier > self`.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Span {
        Span(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Span {
    /// The zero duration.
    pub const ZERO: Span = Span(0);
    /// The largest representable duration.
    pub const MAX: Span = Span(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Span(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Span(ns * PS_PER_NS)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Span(us * PS_PER_US)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Span(ms * PS_PER_MS)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Span(s * PS_PER_SEC)
    }

    /// Construct from fractional seconds. Panics if `s` is negative or not
    /// finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "Span::from_secs_f64: invalid duration {s}"
        );
        Span((s * PS_PER_SEC as f64).round() as u64)
    }

    /// Construct from fractional microseconds.
    pub fn from_us_f64(us: f64) -> Self {
        assert!(
            us.is_finite() && us >= 0.0,
            "Span::from_us_f64: invalid duration {us}"
        );
        Span((us * PS_PER_US as f64).round() as u64)
    }

    /// The raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// The duration in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// The duration in (fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// The duration in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Span) -> Span {
        Span(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by a scalar.
    #[inline]
    pub fn checked_mul(self, k: u64) -> Option<Span> {
        self.0.checked_mul(k).map(Span)
    }

    /// Multiply by a non-negative float (used for scaling work by noise-free
    /// ratios). Panics if the factor is negative or not finite.
    pub fn mul_f64(self, k: f64) -> Span {
        assert!(
            k.is_finite() && k >= 0.0,
            "Span::mul_f64: invalid factor {k}"
        );
        Span((self.0 as f64 * k).round() as u64)
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Span) -> Span {
        Span(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Span) -> Span {
        Span(self.0.min(other.0))
    }
}

impl Add<Span> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Span) -> Time {
        Time(self.0.checked_add(rhs.0).expect("Time overflow"))
    }
}

impl AddAssign<Span> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Span) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Span;
    #[inline]
    fn sub(self, rhs: Time) -> Span {
        self.since(rhs)
    }
}

impl Add for Span {
    type Output = Span;
    #[inline]
    fn add(self, rhs: Span) -> Span {
        Span(self.0.checked_add(rhs.0).expect("Span overflow"))
    }
}

impl AddAssign for Span {
    #[inline]
    fn add_assign(&mut self, rhs: Span) {
        *self = *self + rhs;
    }
}

impl Sub for Span {
    type Output = Span;
    #[inline]
    fn sub(self, rhs: Span) -> Span {
        debug_assert!(rhs.0 <= self.0, "Span subtraction underflow");
        Span(self.0 - rhs.0)
    }
}

impl SubAssign for Span {
    #[inline]
    fn sub_assign(&mut self, rhs: Span) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Span {
    type Output = Span;
    #[inline]
    fn mul(self, k: u64) -> Span {
        Span(self.0.checked_mul(k).expect("Span overflow"))
    }
}

impl Div<u64> for Span {
    type Output = Span;
    #[inline]
    fn div(self, k: u64) -> Span {
        Span(self.0 / k)
    }
}

impl Sum for Span {
    fn sum<I: Iterator<Item = Span>>(iter: I) -> Span {
        iter.fold(Span::ZERO, |a, b| a + b)
    }
}

/// Render a picosecond count with a human-friendly unit.
fn fmt_ps(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ps == 0 {
        write!(f, "0s")
    } else if ps < PS_PER_NS {
        write!(f, "{ps}ps")
    } else if ps < PS_PER_US {
        write!(f, "{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else if ps < PS_PER_MS {
        write!(f, "{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps < PS_PER_SEC {
        write!(f, "{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else {
        write!(f, "{:.3}s", ps as f64 / PS_PER_SEC as f64)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Span::from_ns(1).as_ps(), 1_000);
        assert_eq!(Span::from_us(1).as_ps(), 1_000_000);
        assert_eq!(Span::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(Span::from_secs(1).as_ps(), 1_000_000_000_000);
        assert_eq!(Span::from_secs_f64(1.5).as_ps(), 1_500_000_000_000);
        assert_eq!(Span::from_us_f64(0.5).as_ps(), 500_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::ZERO + Span::from_ns(5);
        assert_eq!(t.as_ps(), 5_000);
        let u = t + Span::from_ns(3);
        assert_eq!(u - t, Span::from_ns(3));
        assert_eq!(u.since(t), Span::from_ns(3));
        assert_eq!(t.saturating_since(u), Span::ZERO);
        assert_eq!(t.max(u), u);
        assert_eq!(t.min(u), t);
    }

    #[test]
    fn span_arithmetic() {
        let a = Span::from_us(2);
        let b = Span::from_us(3);
        assert_eq!(a + b, Span::from_us(5));
        assert_eq!(b - a, Span::from_us(1));
        assert_eq!(a * 4, Span::from_us(8));
        assert_eq!(b / 3, Span::from_us(1));
        assert_eq!(a.saturating_sub(b), Span::ZERO);
        assert_eq!(a.mul_f64(2.5), Span::from_us(5));
        assert_eq!(vec![a, b].into_iter().sum::<Span>(), Span::from_us(5));
    }

    #[test]
    fn conversions_roundtrip() {
        let s = Span::from_ms(133);
        assert!((s.as_ms_f64() - 133.0).abs() < 1e-9);
        assert!((s.as_secs_f64() - 0.133).abs() < 1e-12);
        let t = Time::from_ps(PS_PER_SEC * 7);
        assert!((t.as_secs_f64() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Span::from_ps(500)), "500ps");
        assert_eq!(format!("{}", Span::from_ns(150)), "150.000ns");
        assert_eq!(format!("{}", Span::from_us(775)), "775.000us");
        assert_eq!(format!("{}", Span::from_ms(133)), "133.000ms");
        assert_eq!(format!("{}", Span::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", Span::ZERO), "0s");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let _ = Span::MAX + Span::from_ps(1);
    }

    #[test]
    fn max_is_sentinel() {
        assert!(Time::MAX > Time::from_ps(u64::MAX - 1));
    }
}
