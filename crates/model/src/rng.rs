//! Deterministic pseudo-random numbers.
//!
//! The study needs two kinds of draws:
//!
//! * exponential inter-arrival times for the per-node CE process
//!   (§III-D of the paper: "The timing of each simulated correctable error
//!   is determined statistically using random numbers drawn from an
//!   exponential distribution"), and
//! * small uniform jitters for workload compute times.
//!
//! Reproducibility of every figure requires bit-stable streams, so we
//! implement xoshiro256++ (public domain, Blackman & Vigna) seeded through
//! SplitMix64 rather than depending on an external crate whose stream may
//! change between versions.

use crate::time::Span;

/// SplitMix64 step; used to expand a single `u64` seed into xoshiro state
/// and to derive independent per-rank substream seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Create a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Rng64 { s }
    }

    /// Derive an independent substream for `(seed, stream)`. Used to give
    /// every simulated node its own CE arrival process.
    pub fn substream(seed: u64, stream: u64) -> Self {
        // Mix the stream id through SplitMix64 so adjacent ids diverge.
        let mut sm = seed ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(stream.wrapping_add(1));
        let mixed = splitmix64(&mut sm);
        Rng64::new(mixed ^ stream.rotate_left(17))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `(0, 1]`; never returns zero, so it is safe to take
    /// its logarithm.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method. Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        // Unbiased via rejection on the low product half.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw in `[lo, hi)` (floats).
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Exponential draw with the given mean, as a duration. This is the
    /// inter-arrival sampler for the CE Poisson process.
    pub fn exp_span(&mut self, mean: Span) -> Span {
        let u = self.next_f64_open();
        Span::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// A multiplicative jitter factor in `[1 - amp, 1 + amp]`, used to break
    /// artificial compute-time lockstep across ranks.
    pub fn jitter(&mut self, amp: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&amp));
        1.0 + self.uniform_f64(-amp, amp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_diverge() {
        let mut a = Rng64::substream(7, 0);
        let mut b = Rng64::substream(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut r = Rng64::new(9);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = r.next_below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = Rng64::new(11);
        let mean = Span::from_ms(10);
        let n = 50_000u64;
        let total: f64 = (0..n).map(|_| r.exp_span(mean).as_secs_f64()).sum();
        let est = total / n as f64;
        // Standard error of the mean is mean/sqrt(n) ~ 0.45%; allow 3 sigma.
        assert!(
            (est - 0.010).abs() < 0.010 * 0.015,
            "estimated mean {est} too far from 0.010"
        );
    }

    #[test]
    fn exponential_is_memoryless_ish() {
        // P(X > 2m) should be about e^-2.
        let mut r = Rng64::new(13);
        let mean = Span::from_us(100);
        let n = 50_000;
        let over = (0..n).filter(|_| r.exp_span(mean) > mean * 2).count() as f64;
        let p = over / n as f64;
        assert!((p - (-2.0f64).exp()).abs() < 0.01, "tail prob {p}");
    }

    #[test]
    fn jitter_bounds() {
        let mut r = Rng64::new(17);
        for _ in 0..1000 {
            let j = r.jitter(0.05);
            assert!((0.95..=1.05).contains(&j));
        }
    }

    #[test]
    fn uniform_mean() {
        let mut r = Rng64::new(23);
        let n = 100_000;
        let s: f64 = (0..n).map(|_| r.uniform_f64(2.0, 4.0)).sum();
        assert!((s / n as f64 - 3.0).abs() < 0.01);
    }
}
