//! Exit-status contract for the validating subcommands: `trace-check`
//! and `attribute` must exit nonzero whenever their input fails
//! validation, so CI pipelines can gate on them directly.

use std::path::PathBuf;
use std::process::Command;

fn cesim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cesim"))
}

/// Path to a file shipped in the repository `examples/` directory.
fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join(name)
}

/// Scratch file path unique to this test binary run.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cesim-exit-codes-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn attribute_on_valid_trace_exits_zero() {
    let out = cesim()
        .arg("attribute")
        .arg(example("ring8.trc"))
        .args(["--mode", "sw", "--mtbce", "2ms", "--seed", "7"])
        .output()
        .expect("spawn cesim");
    assert!(
        out.status.success(),
        "expected success, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("detours"), "summary missing: {stdout}");
    assert!(stdout.contains("replay delta"), "summary missing: {stdout}");
}

#[test]
fn attribute_on_truncated_trace_exits_nonzero() {
    let full = std::fs::read(example("ring8.trc")).unwrap();
    let path = scratch("truncated.trc");
    // Cut the file mid-record: the parser must reject it and the
    // process must report that through its exit status.
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();
    let out = cesim()
        .arg("attribute")
        .arg(&path)
        .output()
        .expect("spawn cesim");
    assert!(
        !out.status.success(),
        "truncated trace must fail, stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error"),
        "stderr should carry the error"
    );
}

#[test]
fn attribute_on_missing_file_exits_nonzero() {
    let out = cesim()
        .arg("attribute")
        .arg(scratch("does-not-exist.trc"))
        .output()
        .expect("spawn cesim");
    assert!(!out.status.success());
}

#[test]
fn trace_check_on_truncated_json_exits_nonzero() {
    // Produce a valid Chrome trace first, then truncate it.
    let json = scratch("ring8-trace.json");
    let out = cesim()
        .arg("trace")
        .arg(example("ring8.trc"))
        .arg("--trace-out")
        .arg(&json)
        .output()
        .expect("spawn cesim");
    assert!(
        out.status.success(),
        "trace conversion failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let ok = cesim()
        .arg("trace-check")
        .arg(&json)
        .output()
        .expect("spawn cesim");
    assert!(ok.status.success(), "intact trace must validate");

    let full = std::fs::read(&json).unwrap();
    let broken = scratch("ring8-trace-truncated.json");
    std::fs::write(&broken, &full[..full.len() * 2 / 3]).unwrap();
    let bad = cesim()
        .arg("trace-check")
        .arg(&broken)
        .output()
        .expect("spawn cesim");
    assert!(
        !bad.status.success(),
        "truncated Chrome trace must fail validation"
    );
}
