//! Exit-status contract for the CLI, so pipelines can gate on status
//! alone: 0 = success, 1 = runtime failure (bad input file, failed
//! validation), 2 = usage error (unknown subcommand, unknown flag,
//! missing required argument — with usage printed to stderr).

use std::path::PathBuf;
use std::process::Command;

fn cesim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cesim"))
}

/// Path to a file shipped in the repository `examples/` directory.
fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join(name)
}

/// Scratch file path unique to this test binary run.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cesim-exit-codes-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn attribute_on_valid_trace_exits_zero() {
    let out = cesim()
        .arg("attribute")
        .arg(example("ring8.trc"))
        .args(["--mode", "sw", "--mtbce", "2ms", "--seed", "7"])
        .output()
        .expect("spawn cesim");
    assert!(
        out.status.success(),
        "expected success, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("detours"), "summary missing: {stdout}");
    assert!(stdout.contains("replay delta"), "summary missing: {stdout}");
}

#[test]
fn attribute_on_truncated_trace_exits_nonzero() {
    let full = std::fs::read(example("ring8.trc")).unwrap();
    let path = scratch("truncated.trc");
    // Cut the file mid-record: the parser must reject it and the
    // process must report that through its exit status.
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();
    let out = cesim()
        .arg("attribute")
        .arg(&path)
        .output()
        .expect("spawn cesim");
    assert!(
        !out.status.success(),
        "truncated trace must fail, stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error"),
        "stderr should carry the error"
    );
}

#[test]
fn attribute_on_missing_file_exits_nonzero() {
    let out = cesim()
        .arg("attribute")
        .arg(scratch("does-not-exist.trc"))
        .output()
        .expect("spawn cesim");
    assert!(!out.status.success());
}

#[test]
fn trace_check_on_truncated_json_exits_nonzero() {
    // Produce a valid Chrome trace first, then truncate it.
    let json = scratch("ring8-trace.json");
    let out = cesim()
        .arg("trace")
        .arg(example("ring8.trc"))
        .arg("--trace-out")
        .arg(&json)
        .output()
        .expect("spawn cesim");
    assert!(
        out.status.success(),
        "trace conversion failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let ok = cesim()
        .arg("trace-check")
        .arg(&json)
        .output()
        .expect("spawn cesim");
    assert!(ok.status.success(), "intact trace must validate");

    let full = std::fs::read(&json).unwrap();
    let broken = scratch("ring8-trace-truncated.json");
    std::fs::write(&broken, &full[..full.len() * 2 / 3]).unwrap();
    let bad = cesim()
        .arg("trace-check")
        .arg(&broken)
        .output()
        .expect("spawn cesim");
    assert!(
        !bad.status.success(),
        "truncated Chrome trace must fail validation"
    );
}

/// Every subcommand, including `serve`, for the usage-error sweeps below.
const ALL_COMMANDS: &[&str] = &[
    "help",
    "table1",
    "table2",
    "list",
    "skeletons",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "run",
    "goal",
    "trace",
    "trace-check",
    "attribute",
    "ablate",
    "fleet",
    "serve",
];

/// Run cesim with the given args and return (exit code, stderr).
fn run_cli(args: &[&str]) -> (i32, String) {
    let out = cesim().args(args).output().expect("spawn cesim");
    (
        out.status.code().expect("terminated by signal"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn assert_usage_error(args: &[&str]) {
    let (code, stderr) = run_cli(args);
    assert_eq!(code, 2, "expected exit 2 for {args:?}, stderr: {stderr}");
    assert!(
        stderr.contains("error:"),
        "stderr must carry the error for {args:?}: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "stderr must carry usage for {args:?}: {stderr}"
    );
}

#[test]
fn unknown_subcommand_exits_two_with_usage() {
    assert_usage_error(&["frobnicate"]);
    assert_usage_error(&["Fig3"]); // commands are case-sensitive
}

#[test]
fn unknown_flag_exits_two_for_every_subcommand() {
    for cmd in ALL_COMMANDS {
        assert_usage_error(&[cmd, "--no-such-flag"]);
    }
}

#[test]
fn missing_option_value_exits_two() {
    assert_usage_error(&["run", "--app"]);
    assert_usage_error(&["serve", "--addr"]);
}

#[test]
fn missing_required_argument_exits_two() {
    assert_usage_error(&["trace"]);
    assert_usage_error(&["trace-check"]);
    assert_usage_error(&["attribute"]);
    assert_usage_error(&["fleet"]);
}

#[test]
fn unexpected_positional_exits_two() {
    assert_usage_error(&["fig3", "stray.txt"]);
    assert_usage_error(&["serve", "stray.txt"]);
}

#[test]
fn runtime_errors_exit_one() {
    // A file that doesn't exist is a runtime failure, not a usage error.
    let missing = scratch("no-such.trc");
    let (code, stderr) = run_cli(&["attribute", missing.to_str().unwrap()]);
    assert_eq!(code, 1, "stderr: {stderr}");
    assert!(!stderr.contains("usage:"), "runtime errors skip usage");

    // An unbindable address fails at runtime after arguments parse fine.
    let (code, stderr) = run_cli(&["serve", "--addr", "203.0.113.1:1"]);
    assert_eq!(code, 1, "stderr: {stderr}");

    // Semantically invalid option values are runtime errors too.
    let (code, _) = run_cli(&["serve", "--workers", "0"]);
    assert_eq!(code, 1);
}

#[test]
fn fleet_on_valid_spec_exits_zero() {
    let out = cesim()
        .arg("fleet")
        .arg(example("fleet_small.json"))
        .output()
        .expect("spawn cesim");
    assert!(
        out.status.success(),
        "expected success, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.starts_with("job,app,nodes,policy"),
        "CSV header missing: {stdout}"
    );
    assert!(
        stdout.contains("# slowdown_pct"),
        "trailer missing: {stdout}"
    );
}

#[test]
fn fleet_runtime_failures_exit_one_with_pointful_stderr() {
    // Missing spec file: runtime failure naming the path.
    let missing = scratch("no-such-fleet.json");
    let (code, stderr) = run_cli(&["fleet", missing.to_str().unwrap()]);
    assert_eq!(code, 1, "stderr: {stderr}");
    assert!(
        stderr.contains("no-such-fleet.json"),
        "error must name the file: {stderr}"
    );
    assert!(!stderr.contains("usage:"), "runtime errors skip usage");

    // Truncated JSON: parse failure is a runtime error naming the file.
    let full = std::fs::read_to_string(example("fleet_small.json")).unwrap();
    let broken = scratch("fleet-truncated.json");
    std::fs::write(&broken, &full[..full.len() / 2]).unwrap();
    let (code, stderr) = run_cli(&["fleet", broken.to_str().unwrap()]);
    assert_eq!(code, 1, "stderr: {stderr}");
    assert!(
        stderr.contains("fleet-truncated.json"),
        "error must name the file: {stderr}"
    );

    // Well-formed JSON violating the spec grammar: the error names the
    // offending field.
    let bad_field = scratch("fleet-bad-field.json");
    std::fs::write(
        &bad_field,
        r#"{"cluster": {"nodes": 0, "mtbce": {"dist": "uniform", "min": "1s", "max": "2s"}},
            "jobs": [{"app": "HPCG", "nodes": 2}]}"#,
    )
    .unwrap();
    let (code, stderr) = run_cli(&["fleet", bad_field.to_str().unwrap()]);
    assert_eq!(code, 1, "stderr: {stderr}");
    assert!(
        stderr.contains("cluster.nodes"),
        "error must name the field: {stderr}"
    );

    // An unknown --policy value is a runtime error listing the choices.
    let spec = example("fleet_small.json");
    let (code, stderr) = run_cli(&["fleet", spec.to_str().unwrap(), "--policy", "bogus"]);
    assert_eq!(code, 1, "stderr: {stderr}");
    assert!(stderr.contains("threshold_offline"), "stderr: {stderr}");
}

#[test]
fn successful_commands_exit_zero() {
    for args in [&["help"][..], &["table1"], &["list"], &["skeletons"]] {
        let (code, stderr) = run_cli(args);
        assert_eq!(code, 0, "expected success for {args:?}, stderr: {stderr}");
    }
}
