//! `cesim` — command-line driver for the DRAM correctable-error logging
//! study. Every table and figure of the paper can be regenerated from
//! here; see `cesim help`.

mod args;

use args::Args;
use cesim_core::engine::noise::ScriptedNoise;
use cesim_core::engine::{simulate, NoNoise};
use cesim_core::experiment::{run as run_experiment, Experiment};
use cesim_core::figures::{self, FigureData, ScaleConfig};
use cesim_core::goal::{Rank, ScheduleBuilder, Tag};
use cesim_core::model::{LogGopsParams, LoggingMode, Span, Time};
use cesim_core::noise::signature::{fig2, SignatureConfig};
use cesim_core::noise::Scope;
use cesim_core::report::{ascii_table, figure_csv, render_chart, render_figure};
use cesim_core::tables;
use cesim_core::workloads::AppId;
use std::process::ExitCode;

const HELP: &str = "\
cesim — DRAM correctable-error logging overheads at scale (CLUSTER'21 reproduction)

USAGE: cesim <command> [options]

COMMANDS
  table1            Workload descriptions (Table I)
  table2            System CE parameters and MTBCE (Table II)
  fig1              Delay-propagation demonstration (Fig. 1)
  fig2              selfish noise signatures: native/dry-run/CMCI/EMCA (Fig. 2)
  fig3              Single-process CE sweep vs MTBCE (Fig. 3)
  fig4              CE impact on Cielo/Trinity/Summit (Fig. 4)
  fig5              CE impact on exascale straw-man systems (Fig. 5)
  fig6              Extreme-rate software-logging study (Fig. 6)
  fig7              Per-event duration sweep at MTBCE 720s / 0.2s (Fig. 7)
  run               One custom experiment (see options below)
  goal              Dump a workload's expanded schedule in GOAL text form
  trace             Generate / extrapolate / simulate MPI traces; export
                    Chrome traces and interval metrics (see TRACE OPTIONS)
  trace-check FILE  Validate a Chrome trace written by trace --trace-out
  metrics-check FILE
                    Validate a Prometheus text exposition (e.g. a saved
                    GET /metrics scrape): HELP/TYPE pairing, label
                    escaping, histogram consistency
  attribute FILE    Per-event CE detour provenance for a simulated trace:
                    absorbed/propagated classification, amplification
                    factors, JSONL + heatmap reports (ATTRIBUTE OPTIONS)
  ablate            Compare CE sensitivity under both allreduce expansions
  fleet SPEC.json   Fleet-scale scenario: a job mix scheduled over a
                    heterogeneous cluster, with a mitigation policy
                    reacting to observed CEs between epochs
                    (FLEET OPTIONS)
  serve             Simulation-as-a-service HTTP daemon (SERVE OPTIONS)
  skeletons         Print the calibrated workload-skeleton parameters
  list              List workloads and logging modes
  help              This text

SCALE OPTIONS (fig3..fig7)
  --nodes N         Simulated nodes [default 256; Table II counts cap it]
  --reps N          Perturbed replicas per cell [default 2]
  --steps-scale F   Scale workload step counts [default 1.0]
  --apps a,b,c      Subset of workloads [default: all nine]
  --paper           Full paper scale (16,384 nodes, 8 reps, full steps,
                    no machine-rate rescaling) — hours of CPU time
  --exact-rate      Do not rescale MTBCE when nodes < system size
  --seed N          Base RNG seed
  --threads N       Sweep worker threads: 0 = all cores [default], 1 =
                    serial. Output is byte-identical for every value —
                    each cell/replica derives its RNG stream from stable
                    (figure, cell, replica) coordinates, never from
                    execution order
  --shards N        Split each simulation's event loop across N
                    rank-partitioned shards advanced in lookahead windows
                    [default 1 = serial engine], or 'auto' to pick N from
                    the rank scale and host CPUs. Output is byte-identical
                    for every value; the sweep thread budget is divided by
                    N so cells x shards never oversubscribes the host
  --csv FILE        Also write the figure's cells as CSV
  --chart           Render as log-scale ASCII bar charts
  --quiet           No per-cell progress on stderr
  --progress        Sweep progress on stderr: cells completed / total plus
                    engine throughput (events/s and simulated seconds per
                    wall second), and an ETA extrapolated from
                    completed-cell wall time
  --observe         Record replicas of every cell and append critical-path
                    (cp_*_s mean/stddev) and provenance columns
                    (events_absorbed, events_propagated, max_amplification,
                    p99_amplification) to --csv output; results unchanged
  --observe-replicas N
                    Number of replicas per cell to record and aggregate
                    [default 1; implies --observe]
  --profile         Span-profiler phase breakdown (build/compile/baseline/
                    cell_run) on stderr after the sweep; results unchanged
  --shard-health    With --shards > 1: per-shard busy/stall/barrier table
                    and imbalance report on stderr after the sweep

TRACE OPTIONS (cesim trace [FILE])
  --generate FILE   Write a synthetic PMPI-style trace and exit
  --extrapolate K   Extrapolate the loaded trace k-fold before simulating
  --mode M          hw | sw | fw | <microseconds> [default fw]
  --mtbce DURATION  Per-node mean time between CEs [default 10]
  --trace-out FILE  Record the perturbed run and write a Chrome trace_event
                    JSON (load in Perfetto / chrome://tracing)
  --metrics-interval DT
                    Emit per-rank interval metrics CSV sampled every DT
                    (e.g. 1ms) to stdout, or to --metrics-out FILE

ATTRIBUTE OPTIONS (cesim attribute FILE)
  --mode M          hw | sw | fw | <microseconds> [default sw]
  --mtbce DURATION  Per-node mean time between CEs [default 10]
  --seed N          Noise RNG seed
  --provenance-out FILE
                    Write per-event provenance JSONL (one record per
                    detour plus a trailing summary object)
  --heatmap-out FILE
                    Write a rank x time-bin heatmap CSV (detour counts,
                    stolen CPU time, induced delay per cell)
  --bins N          Heatmap time bins [default 32]

RUN OPTIONS (cesim run)
  --app NAME        Workload [default LULESH]
  --mode M          hw | sw | fw | <microseconds> [default fw]
  --mtbce DURATION  Per-node mean time between CEs, e.g. 200ms, 1h
                    [default 5544s]
  --single-node     Inject CEs on one rank only (Fig. 3 style)
  --steps N         Override workload step count
  --threads N       Worker threads for the replicas [default 0 = all cores]
  --shards N        Intra-run event-loop shards [default 1 = serial engine],
                    or 'auto' to pick N from the rank scale and host CPUs;
                    results are byte-identical for every value
  --progress        With --shards > 1: window-based progress and ETA on
                    stderr while the sharded replicas run
  --profile         Span-profiler phase breakdown on stderr after the run
  --shard-health    With --shards > 1: per-shard busy/stall/barrier table
                    and imbalance report on stderr after the run

FLEET OPTIONS (cesim fleet SPEC.json)
  --policy P        Override the spec's mitigation policy: static,
                    threshold_offline, or mode_switch (using the spec-file
                    defaults: 1000 CEs/epoch threshold, 25% offline cap,
                    hw switch target)
  --threads N       Job-slice worker threads: 0 = all cores [default].
                    Every report is byte-identical for every value — node
                    draws and job slices derive their RNG streams from
                    stable (node, job, attempt, slice) coordinates
  --jobs-csv FILE   Also write the per-job slowdown CSV (the stdout
                    stream) to FILE
  --nodes-csv FILE  Write the per-node CSV: drawn MTBCE, hot-spot
                    membership, mode changes, CE/offline accounting
  --jsonl FILE      Write per-epoch JSONL (queue/run/completion counts,
                    policy actions) with a trailing summary line
  --profile         Span-profiler phase breakdown (fleet_place/fleet_run/
                    fleet_policy) on stderr after the run
  --quiet           Suppress the '#' summary trailer on stdout

FIG2 OPTIONS
  --window SECONDS  Observation window [default 300]
  --period SECONDS  Injection period [default 10]

SERVE OPTIONS (cesim serve)
  --addr HOST:PORT  Bind address [default 127.0.0.1:8080; port 0 = ephemeral]
  --workers N       Request worker threads [default 4]
  --queue-depth N   Accepted connections allowed to wait for a worker;
                    beyond this, arrivals are shed with 429 [default 64]
  --cache-entries N Compiled-schedule LRU capacity, 0 disables [default 64]
  --response-cache-entries N
                    Full-response LRU capacity, 0 disables [default 256]
  --log-requests    One structured access-log line per request on stderr
                    (method, path, status, microseconds, cache hit/miss,
                    trace id)
  Endpoints: POST /v1/simulate, POST /v1/sweep, POST /v1/fleet,
  GET /healthz, GET /metrics
  (Prometheus text with trace-id exemplars), GET /v1/debug/flightrec
  (recent telemetry events as JSON; also dumped to stderr on SIGUSR1),
  GET /v1/debug/traces[/:id[/chrome]] (tail-sampled request traces; ids
  come from the traceparent response header). Shuts down gracefully on
  SIGTERM/ctrl-c, draining queued and in-flight requests. See README.md
  for curl examples.

LOGGING OPTIONS (any command)
  --log-level L     Structured-log filter: error, warn, info, debug
                    [default info]
  --log-format F    Structured-log encoding: logfmt or json
                    [default logfmt]
";

const USAGE: &str = "usage: cesim <command> [options] — run 'cesim help' for the command list";

/// How a command failed, which decides the exit status: usage errors
/// (unknown command/flag, missing required argument) exit 2 after
/// printing usage; runtime errors (I/O, validation) exit 1. CI gates on
/// this split.
enum Failure {
    Usage(String),
    Runtime(String),
}

impl From<String> for Failure {
    fn from(msg: String) -> Self {
        Failure::Runtime(msg)
    }
}

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => return usage_error(&e),
    };
    let cmd = args.command.clone().unwrap_or_else(|| "help".into());
    match dispatch(&cmd, &args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(Failure::Usage(e)) => usage_error(&e),
        Err(Failure::Runtime(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn dispatch(cmd: &str, args: &Args) -> Result<(), Failure> {
    configure_logging(args)?;
    // Only the trace tools, metrics-check, and fleet take positional
    // arguments (an input file path).
    if !matches!(
        cmd,
        "trace" | "trace-check" | "attribute" | "metrics-check" | "fleet"
    ) {
        if let Some(p) = args.positionals.first() {
            return Err(Failure::Usage(format!("unexpected argument '{p}'")));
        }
    }
    // Missing required arguments are usage errors, checked up front so
    // every subcommand reports them the same way (exit 2).
    match cmd {
        "trace-check" if args.positionals.is_empty() => {
            return Err(Failure::Usage(
                "trace-check needs a trace file argument".into(),
            ));
        }
        "attribute" if args.positionals.is_empty() => {
            return Err(Failure::Usage(
                "attribute needs a trace file argument".into(),
            ));
        }
        "metrics-check" if args.positionals.is_empty() => {
            return Err(Failure::Usage(
                "metrics-check needs a metrics file argument".into(),
            ));
        }
        "fleet" if args.positionals.is_empty() => {
            return Err(Failure::Usage("fleet needs a spec file argument".into()));
        }
        "trace"
            if args.positionals.is_empty()
                && args.get("generate").is_none()
                && args.get("load").is_none() =>
        {
            return Err(Failure::Usage(
                "trace needs --generate FILE or an input FILE".into(),
            ));
        }
        _ => {}
    }
    match cmd {
        "help" | "-h" | "--help" => {
            print!("{HELP}");
            Ok(())
        }
        "table1" => {
            print!("{}", tables::table1());
            Ok(())
        }
        "table2" => {
            print!("{}", tables::table2());
            Ok(())
        }
        "list" => Ok(cmd_list()?),
        "skeletons" => Ok(cmd_skeletons()?),
        "fig1" => Ok(cmd_fig1()?),
        "fig2" => Ok(cmd_fig2(args)?),
        "fig3" => Ok(cmd_fig(args, figures::fig3)?),
        "fig4" => Ok(cmd_fig(args, figures::fig4)?),
        "fig5" => Ok(cmd_fig(args, figures::fig5)?),
        "fig6" => Ok(cmd_fig(args, figures::fig6)?),
        "fig7" => Ok(cmd_fig(args, figures::fig7)?),
        "run" => Ok(cmd_run(args)?),
        "goal" => Ok(cmd_goal(args)?),
        "trace" => Ok(cmd_trace(args)?),
        "trace-check" => Ok(cmd_trace_check(args)?),
        "metrics-check" => Ok(cmd_metrics_check(args)?),
        "attribute" => Ok(cmd_attribute(args)?),
        "ablate" => Ok(cmd_ablate(args)?),
        "fleet" => Ok(cmd_fleet(args)?),
        "serve" => Ok(cmd_serve(args)?),
        other => Err(Failure::Usage(format!(
            "unknown command '{other}' (try 'cesim help')"
        ))),
    }
}

/// Apply `--log-level` / `--log-format` to the process-global
/// structured-log sink before any command runs. Bad names are usage
/// errors (exit 2), like any other unknown option value.
fn configure_logging(args: &Args) -> Result<(), Failure> {
    use cesim_core::obs::logging;
    let level = match args.get("log-level") {
        None => logging::Level::Info,
        Some(v) => logging::Level::parse(v).ok_or_else(|| {
            Failure::Usage(format!(
                "invalid --log-level '{v}' (expected error, warn, info, or debug)"
            ))
        })?,
    };
    let format = match args.get("log-format") {
        None => logging::Format::Logfmt,
        Some(v) => logging::Format::parse(v).ok_or_else(|| {
            Failure::Usage(format!(
                "invalid --log-format '{v}' (expected logfmt or json)"
            ))
        })?,
    };
    logging::configure(level, format);
    Ok(())
}

/// `cesim serve` — run the simulation daemon until SIGTERM/ctrl-c.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let mut cfg = cesim_serve::ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8080").to_string(),
        ..cesim_serve::ServeConfig::default()
    };
    cfg.workers = args.get_parsed("workers", cfg.workers)?;
    cfg.queue_depth = args.get_parsed("queue-depth", cfg.queue_depth)?;
    cfg.schedule_cache_entries = args.get_parsed("cache-entries", cfg.schedule_cache_entries)?;
    cfg.response_cache_entries =
        args.get_parsed("response-cache-entries", cfg.response_cache_entries)?;
    if cfg.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if cfg.queue_depth == 0 {
        return Err("--queue-depth must be at least 1".into());
    }
    cfg.log_requests = args.has_flag("log-requests");
    cesim_serve::run(cfg).map_err(|e| format!("serve: {e}"))
}

/// `cesim fleet SPEC.json` — run a fleet scenario: a job mix scheduled
/// over a heterogeneous cluster, with a mitigation policy reacting to
/// observed CE counts between epochs. The per-job slowdown CSV goes to
/// stdout (with a '#' summary trailer); every report is byte-identical
/// across `--threads` values.
fn cmd_fleet(args: &Args) -> Result<(), String> {
    use cesim_core::obs::telemetry;
    use cesim_core::ScheduleCache;
    use cesim_fleet as fleet;

    let path = args
        .positionals
        .first()
        .expect("dispatch rejects a missing spec file");
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut spec = fleet::FleetSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if let Some(name) = args.get("policy") {
        spec.policy = match name {
            "static" => fleet::PolicySpec::Static,
            "threshold_offline" => fleet::PolicySpec::ThresholdOffline {
                ce_per_epoch: 1000,
                max_offline_fraction: 0.25,
            },
            "mode_switch" => fleet::PolicySpec::ModeSwitch {
                ce_per_epoch: 1000,
                to: LoggingMode::HardwareOnly,
            },
            other => {
                let choices = "static, threshold_offline, or mode_switch";
                return Err(format!("invalid --policy '{other}' (expected {choices})"));
            }
        };
    }
    let threads: usize = args.get_parsed("threads", 0)?;
    let profile = args.has_flag("profile");
    if profile {
        telemetry::set_enabled(true);
    }
    let start = std::time::Instant::now();
    let cache = ScheduleCache::new(64);
    let out = figures::with_threads(threads, || fleet::run_fleet(&spec, &cache))?;
    let wall = start.elapsed();

    print!("{}", cesim_fleet::jobs_csv(&out));
    if !args.has_flag("quiet") {
        print!("{}", cesim_fleet::summary_text(&out));
    }
    if let Some(f) = args.get("jobs-csv") {
        std::fs::write(f, cesim_fleet::jobs_csv(&out)).map_err(|e| format!("writing {f}: {e}"))?;
        eprintln!("wrote {f}");
    }
    if let Some(f) = args.get("nodes-csv") {
        std::fs::write(f, cesim_fleet::nodes_csv(&out)).map_err(|e| format!("writing {f}: {e}"))?;
        eprintln!("wrote {f}");
    }
    if let Some(f) = args.get("jsonl") {
        std::fs::write(f, cesim_fleet::epochs_jsonl(&out))
            .map_err(|e| format!("writing {f}: {e}"))?;
        eprintln!("wrote {f}");
    }
    if profile {
        eprint!("{}", telemetry::profile_table(wall));
    }
    Ok(())
}

/// `cesim metrics-check FILE` — validate a saved Prometheus scrape body
/// with the in-repo exposition validator (CI gates on this).
fn cmd_metrics_check(args: &Args) -> Result<(), String> {
    let Some(path) = args.positionals.first() else {
        return Err("metrics-check needs a metrics file argument".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let stats =
        cesim_serve::promcheck::validate_prometheus(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: ok ({} families, {} samples, {} histograms)",
        stats.families, stats.samples, stats.histograms
    );
    Ok(())
}

fn cmd_skeletons() -> Result<(), String> {
    let headers: Vec<String> = [
        "workload",
        "decomp",
        "halo classes",
        "reverse",
        "halo cadence",
        "compute/step",
        "allreduce",
        "steps",
        "sync window",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("Calibrated communication skeletons (the trace substitution, see DESIGN.md):\n");
    print!(
        "{}",
        ascii_table(&headers, &cesim_core::workloads::apps::calibration_rows())
    );
    Ok(())
}

fn cmd_list() -> Result<(), String> {
    println!("workloads:");
    for app in AppId::all() {
        println!("  {:<14} {}", app.name(), app.description());
    }
    println!("\nlogging modes:");
    for m in LoggingMode::all() {
        println!("  {:<4} {m}", m.short_label());
    }
    Ok(())
}

fn scale_config(args: &Args) -> Result<ScaleConfig, String> {
    let mut cfg = if args.has_flag("paper") {
        ScaleConfig::paper()
    } else {
        ScaleConfig::default()
    };
    cfg.nodes = args.get_parsed("nodes", cfg.nodes)?;
    cfg.reps = args.get_parsed("reps", cfg.reps)?;
    cfg.steps_scale = args.get_parsed("steps-scale", cfg.steps_scale)?;
    cfg.seed = args.get_parsed("seed", cfg.seed)?;
    cfg.threads = args.get_parsed("threads", cfg.threads)?;
    cfg.shards = parse_shards(args, cfg.shards, cfg.nodes)?;
    if args.has_flag("exact-rate") {
        cfg.preserve_machine_rate = false;
    }
    cfg.progress = !args.has_flag("quiet");
    cfg.progress_eta = args.has_flag("progress");
    cfg.observe = args.has_flag("observe") || args.get("observe-replicas").is_some();
    cfg.observe_replicas = args.get_parsed("observe-replicas", cfg.observe_replicas)?;
    if cfg.observe && cfg.observe_replicas == 0 {
        return Err("--observe-replicas must be at least 1 when observing".into());
    }
    if let Some(list) = args.get("apps") {
        let mut apps = Vec::new();
        for name in list.split(',') {
            apps.push(
                AppId::parse(name.trim()).ok_or_else(|| format!("unknown workload '{name}'"))?,
            );
        }
        cfg.apps = apps;
    }
    Ok(cfg)
}

fn cmd_fig(args: &Args, f: impl Fn(&ScaleConfig) -> FigureData) -> Result<(), String> {
    use cesim_core::obs::telemetry;
    let mut cfg = scale_config(args)?;
    let profile = args.has_flag("profile");
    let shard_health = args.has_flag("shard-health");
    if profile {
        telemetry::set_enabled(true);
    }
    if shard_health && cfg.shards <= 1 {
        eprintln!("note: --shard-health needs --shards > 1; ignoring");
    }
    let telem = if shard_health && cfg.shards > 1 {
        Some(std::sync::Arc::new(
            cesim_core::engine::ShardTelemetry::new(cfg.shards),
        ))
    } else {
        None
    };
    cfg.shard_telemetry = telem.clone();
    let sweep_start = std::time::Instant::now();
    let fig = f(&cfg);
    let wall = sweep_start.elapsed();
    if args.has_flag("chart") {
        print!("{}", render_chart(&fig));
    } else {
        print!("{}", render_figure(&fig));
    }
    if let Some(path) = args.get("csv") {
        std::fs::write(path, figure_csv(&fig)).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if let Some(t) = &telem {
        eprintln!("{}", t.report());
    }
    if profile {
        eprint!("{}", telemetry::profile_table(wall));
    }
    Ok(())
}

/// Fig. 1: the hand example — a detour on rank 0 delays rank 2, which it
/// never communicates with directly.
fn cmd_fig1() -> Result<(), String> {
    let params = LogGopsParams::xc40();
    let work = Span::from_us(100);
    let build = || {
        let mut b = ScheduleBuilder::new(3);
        let c0 = b.calc(Rank(0), work, &[]);
        b.send(Rank(0), Rank(1), 8, Tag(1), &[c0]);
        let r1 = b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[]);
        let c1 = b.calc(Rank(1), work, &[r1]);
        b.send(Rank(1), Rank(2), 8, Tag(2), &[c1]);
        let r2 = b.recv(Rank(2), Some(Rank(1)), 8, Tag(2), &[]);
        b.calc(Rank(2), work, &[r2]);
        b.build()
    };
    let base = simulate(&build(), &params, &mut NoNoise).map_err(|e| e.to_string())?;
    let detour = Span::from_ms(1);
    let mut noise = ScriptedNoise::new(vec![(Rank(0), Time::ZERO, detour)]);
    let pert = simulate(&build(), &params, &mut noise).map_err(|e| e.to_string())?;

    println!("Fig. 1 demonstration: p0 -> m1 -> p1 -> m2 -> p2, one {detour} CE detour on p0\n");
    let headers = vec![
        "rank".to_string(),
        "no-CE finish".to_string(),
        "with-CE finish".to_string(),
        "delay".to_string(),
    ];
    let rows: Vec<Vec<String>> = (0..3)
        .map(|r| {
            let b = base.per_rank_finish[r];
            let p = pert.per_rank_finish[r];
            vec![
                format!("p{r}"),
                format!("{b}"),
                format!("{p}"),
                format!("{}", p.saturating_since(b)),
            ]
        })
        .collect();
    print!("{}", ascii_table(&headers, &rows));
    println!(
        "\np2 never communicates with p0, yet its completion slips by the full detour:\n\
         delays propagate along communication dependencies."
    );
    Ok(())
}

fn cmd_fig2(args: &Args) -> Result<(), String> {
    let window = cesim_core::model::parse_span(args.get("window").unwrap_or("300"))?;
    let period = cesim_core::model::parse_span(args.get("period").unwrap_or("10"))?;
    let seed = args.get_parsed("seed", 0xB1A4Eu64)?;
    let cfg = SignatureConfig {
        window,
        inject_period: period,
        seed,
    };
    let panels = fig2(&cfg);
    println!("Fig. 2: selfish noise signatures, {window} window, injection every {period}\n");
    let headers: Vec<String> = [
        "panel",
        "detours",
        "noise %",
        "max detour",
        "500us-2ms",
        "2ms-20ms",
        ">=100ms",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for (kind, trace) in &panels {
        rows.push(vec![
            kind.label().to_string(),
            trace.count().to_string(),
            format!("{:.4}", trace.noise_fraction() * 100.0),
            format!("{}", trace.max_detour()),
            trace
                .count_in(Span::from_us(500), Span::from_ms(2))
                .to_string(),
            trace
                .count_in(Span::from_ms(2), Span::from_ms(20))
                .to_string(),
            trace.count_in(Span::from_ms(100), Span::MAX).to_string(),
        ]);
    }
    print!("{}", ascii_table(&headers, &rows));
    println!(
        "\nReading: dry-run == native (configuring EINJ is free); software adds one\n\
         ~775us bar per injection; firmware adds a ~7ms SMI per injection plus a\n\
         ~500ms decode every 10th."
    );
    if let Some(path) = args.get("csv") {
        let mut csv = String::from("panel,t_s,dur_us\n");
        for (kind, trace) in &panels {
            for d in &trace.detours {
                csv.push_str(&format!(
                    "{},{},{}\n",
                    kind.label(),
                    d.at.as_secs_f64(),
                    d.dur.as_us_f64()
                ));
            }
        }
        std::fs::write(path, csv).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// Dump a workload's expanded schedule in the GOAL text format (stdout,
/// or --csv FILE to write to a file despite the name).
fn cmd_goal(args: &Args) -> Result<(), String> {
    let app = match args.get("app") {
        None => AppId::Lulesh,
        Some(name) => AppId::parse(name).ok_or_else(|| format!("unknown workload '{name}'"))?,
    };
    let nodes = args.get_parsed("nodes", 8usize)?;
    let steps = args.get_parsed("steps", 2usize)?;
    let cfg = cesim_core::workloads::WorkloadConfig::default().with_steps(steps);
    let ranks = cesim_core::workloads::natural_ranks(app, nodes);
    let sched = cesim_core::workloads::build(app, ranks, &cfg);
    let text = cesim_core::goal::textfmt::to_text(&sched);
    match args.get("csv") {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path} ({})", sched.stats());
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// The trace tool-chain: generate a synthetic PMPI-style trace, or load
/// one, optionally extrapolate it k-fold, convert it to a schedule and
/// simulate it under CE noise — optionally recording the perturbed run
/// into a Chrome trace, interval metrics CSV, and a critical-path
/// attribution summary.
///
/// `cesim trace --generate out.trc [--nodes N --steps S]`
/// `cesim trace IN.trc [--extrapolate K] [--mode fw --mtbce S]`
/// `cesim trace IN.trc --trace-out t.json --metrics-interval 1ms`
fn cmd_trace(args: &Args) -> Result<(), String> {
    use cesim_core::engine::Simulator;
    use cesim_core::goal::collectives::CollectiveCosts;
    use cesim_core::noise::{CeNoise, Scope};
    use cesim_core::obs::TimelineRecorder;
    use cesim_trace as tr;

    if let Some(path) = args.get("generate") {
        let spec = tr::generate::GenSpec {
            ranks: args.get_parsed("nodes", 8usize)?,
            steps: args.get_parsed("steps", 4usize)?,
            seed: args.get_parsed("seed", 0x7ACEu64)?,
            ..tr::generate::GenSpec::default()
        };
        let set = tr::generate::generate(&spec);
        std::fs::write(path, tr::to_text(&set)).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!(
            "wrote {path}: {} ranks, {} events",
            set.num_ranks(),
            set.total_events()
        );
        return Ok(());
    }
    // The input trace is the positional argument; --load remains as an
    // alias for older invocations.
    let path = match (args.positionals.first(), args.get("load")) {
        (Some(p), _) => p.as_str(),
        (None, Some(p)) => p,
        (None, None) => return Err("trace needs --generate FILE or an input FILE".into()),
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut set = tr::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let k = args.get_parsed("extrapolate", 1usize)?;
    if k > 1 {
        set = tr::extrapolate(&set, k);
        eprintln!("extrapolated to {} ranks", set.num_ranks());
    }
    let sched = tr::convert(&set, &CollectiveCosts::default()).map_err(|e| e.to_string())?;
    let params = LogGopsParams::xc40();
    let base = simulate(&sched, &params, &mut NoNoise).map_err(|e| e.to_string())?;
    println!(
        "trace: {} ranks, {} events -> schedule {} -> baseline {}",
        set.num_ranks(),
        set.total_events(),
        sched.stats(),
        base.finish
    );
    let mode = parse_mode(args.get("mode").unwrap_or("fw"))?;
    let mtbce = cesim_core::model::parse_span(args.get("mtbce").unwrap_or("10"))?;
    let mut noise = CeNoise::new(
        sched.num_ranks(),
        mtbce,
        mode.per_event_cost(),
        Scope::AllRanks,
        args.get_parsed("seed", 0xCE11u64)?,
    );
    let trace_out = args.get("trace-out");
    let metrics_interval = args.get("metrics-interval");
    let observe = trace_out.is_some() || metrics_interval.is_some();
    let pert = if observe {
        let cap = (sched.total_ops().saturating_mul(12)).clamp(1 << 10, 1 << 22);
        let mut rec = TimelineRecorder::with_capacity(cap);
        let r = Simulator::new(&sched, params)
            .with_recorder(&mut rec)
            .run(&mut noise)
            .map_err(|e| e.to_string())?;
        let events = rec.events();
        if let Some(out) = trace_out {
            let json = cesim_core::obs::export_chrome_trace(&events, rec.dropped());
            std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!(
                "wrote {out}: {} events recorded, {} dropped",
                rec.total(),
                rec.dropped()
            );
        }
        if let Some(dt) = metrics_interval {
            let dt = cesim_core::model::parse_span(dt)?;
            let csv = cesim_core::obs::interval_metrics_csv(&events, dt);
            match args.get("metrics-out") {
                Some(out) => {
                    std::fs::write(out, csv).map_err(|e| format!("writing {out}: {e}"))?;
                    eprintln!("wrote {out}");
                }
                None => print!("{csv}"),
            }
        }
        let attr = cesim_core::obs::critical::attribute(&events);
        eprintln!(
            "critical path: {} total = {} compute + {} comm-cpu + {} network + {} detour + {} blocked{}",
            attr.finish,
            attr.compute,
            attr.comm_cpu,
            attr.network,
            attr.detour,
            attr.blocked,
            if attr.truncated { " (truncated)" } else { "" }
        );
        r
    } else {
        simulate(&sched, &params, &mut noise).map_err(|e| e.to_string())?
    };
    // A degenerate trace (no timed work) has a zero baseline, where the
    // slowdown ratio is undefined — report that rather than panicking.
    let slowdown = pert
        .slowdown_pct(base.finish)
        .map(|s| format!("{s:.2}% slowdown"))
        .unwrap_or_else(|| "slowdown undefined (zero baseline)".into());
    println!(
        "with CEs ({mode}, MTBCE {mtbce}): {} -> {slowdown} ({} detours)",
        pert.finish, pert.noise_events
    );
    Ok(())
}

/// Validate a Chrome trace file written by `trace --trace-out`: parse
/// the JSON and check the `trace_event` shape plus per-track timestamp
/// monotonicity.
fn cmd_trace_check(args: &Args) -> Result<(), String> {
    let Some(path) = args.positionals.first() else {
        return Err("trace-check needs a trace file argument".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let stats =
        cesim_core::obs::validate_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: ok ({} events: {} slices, {} counters, {} tracks)",
        stats.events, stats.slices, stats.counters, stats.tracks
    );
    Ok(())
}

/// Per-event detour provenance over a trace file: simulate the trace
/// under CE noise with recording enabled, run the causal propagation
/// pass, print a fleet-style summary and optionally write the per-event
/// JSONL and the rank×time heatmap CSV. Any validation failure — a
/// truncated recording, a conservation-invariant violation, or emitted
/// JSONL that fails to re-parse — is an error, so the process exits
/// nonzero.
fn cmd_attribute(args: &Args) -> Result<(), String> {
    use cesim_core::engine::Simulator;
    use cesim_core::goal::collectives::CollectiveCosts;
    use cesim_core::noise::CeNoise;
    use cesim_core::obs::{provenance, JsonValue, TimelineRecorder};
    use cesim_trace as tr;

    let Some(path) = args.positionals.first() else {
        return Err("attribute needs a trace file argument".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let set = tr::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let sched = tr::convert(&set, &CollectiveCosts::default()).map_err(|e| e.to_string())?;
    let params = LogGopsParams::xc40();
    let base = simulate(&sched, &params, &mut NoNoise).map_err(|e| e.to_string())?;
    let mode = parse_mode(args.get("mode").unwrap_or("sw"))?;
    let mtbce = cesim_core::model::parse_span(args.get("mtbce").unwrap_or("10"))?;
    let mut noise = CeNoise::new(
        sched.num_ranks(),
        mtbce,
        mode.per_event_cost(),
        Scope::AllRanks,
        args.get_parsed("seed", 0xCE11u64)?,
    );
    let cap = (sched.total_ops().saturating_mul(12)).clamp(1 << 10, 1 << 22);
    let mut rec = TimelineRecorder::with_capacity(cap);
    let pert = Simulator::new(&sched, params)
        .with_recorder(&mut rec)
        .run(&mut noise)
        .map_err(|e| e.to_string())?;

    let report = provenance::analyze(&rec.events(), rec.dropped());
    report.check().map_err(|e| format!("{path}: {e}"))?;
    if report.makespan != pert.finish.since(Time::ZERO) {
        return Err(format!(
            "{path}: recorded makespan {} disagrees with simulated finish {}",
            report.makespan, pert.finish
        ));
    }
    // Self-validate the JSONL before anything is written.
    let jsonl = provenance::provenance_jsonl(&report);
    for (i, line) in jsonl.lines().enumerate() {
        JsonValue::parse(line)
            .map_err(|e| format!("internal: provenance JSONL line {} invalid: {e}", i + 1))?;
    }

    let s = report.summary();
    println!(
        "attribute {path}: {} ranks, {mode}, MTBCE {mtbce} -> {} detours \
         ({} absorbed, {} partially absorbed, {} propagated)",
        report.ranks, s.events, s.absorbed, s.partially_absorbed, s.propagated
    );
    println!(
        "makespan {} = baseline {} + noise; replay delta {}, stolen {}, \
         amplification max {:.2} p99 {:.2}",
        report.makespan,
        base.finish,
        report.replay_delta(),
        report.total_stolen,
        s.max_amplification,
        s.p99_amplification
    );
    let mut worst: Vec<&cesim_core::obs::DetourFate> = report.fates.iter().collect();
    worst.sort_by(|a, b| b.global_delay.cmp(&a.global_delay).then(a.id.cmp(&b.id)));
    for f in worst.iter().take(5) {
        if f.global_delay.is_zero() {
            break;
        }
        println!(
            "  detour {} on rank {} at {}: {} stolen -> {} induced across {} rank(s), \
             {} on makespan ({})",
            f.id,
            f.rank,
            f.at,
            f.dur,
            f.global_delay,
            f.ranks_delayed + u32::from(!f.self_delay.is_zero()),
            f.makespan_contribution,
            f.fate.label()
        );
    }
    if let Some(out) = args.get("provenance-out") {
        std::fs::write(out, &jsonl).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("wrote {out} ({} records + summary)", report.fates.len());
    }
    if let Some(out) = args.get("heatmap-out") {
        let bins = args.get_parsed("bins", 32usize)?;
        let csv = provenance::heatmap_csv(&report, bins);
        std::fs::write(out, csv).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

/// Compare CE-noise sensitivity under the two allreduce expansions.
fn cmd_ablate(args: &Args) -> Result<(), String> {
    use cesim_core::goal::collectives::AllreduceAlgo;
    let app = match args.get("app") {
        None => AppId::Lulesh,
        Some(name) => AppId::parse(name).ok_or_else(|| format!("unknown workload '{name}'"))?,
    };
    let nodes = args.get_parsed("nodes", 128usize)?;
    let mtbce = cesim_core::model::parse_span(args.get("mtbce").unwrap_or("10"))?;
    let reps = args.get_parsed("reps", 3u32)?;
    println!(
        "allreduce-expansion ablation: {app}, {nodes} nodes, firmware logging, MTBCE {mtbce}\n"
    );
    for algo in [AllreduceAlgo::RecursiveDoubling, AllreduceAlgo::ReduceBcast] {
        let mut exp = Experiment::new(app, nodes)
            .mode(LoggingMode::Firmware)
            .mtbce(mtbce)
            .reps(reps);
        exp.workload.allreduce_algo = algo;
        let out = run_experiment(&exp).map_err(|e| e.to_string())?;
        println!(
            "  {:<18} baseline {}  slowdown {}",
            format!("{algo:?}:"),
            out.baseline,
            out.mean_slowdown_pct()
                .map(|s| format!("{s:.2}%"))
                .unwrap_or_else(|| "no-progress".into())
        );
    }
    println!(
        "\nThe collective's dependency shape decides how detours reach the critical\n\
         path: reduce+bcast has twice the tree depth but idles interior ranks;\n\
         recursive doubling keeps every rank on the critical path each round."
    );
    Ok(())
}

/// Parse `--shards`: a positive integer, or the literal `auto`, which
/// picks a shard count from the rank scale and host parallelism via
/// [`cesim_core::engine::auto_shards`]. `nranks` is the (approximate)
/// rank count the simulations will run at.
fn parse_shards(args: &Args, default: usize, nranks: usize) -> Result<usize, String> {
    match args.get("shards") {
        None => Ok(default),
        Some("auto") => Ok(cesim_core::engine::auto_shards(nranks)),
        Some(s) => {
            let n: usize = s.parse().map_err(|_| {
                format!("invalid --shards '{s}' (expected a positive integer or 'auto')")
            })?;
            if n == 0 {
                return Err("--shards must be at least 1".into());
            }
            Ok(n)
        }
    }
}

fn parse_mode(s: &str) -> Result<LoggingMode, String> {
    match s {
        "hw" => Ok(LoggingMode::HardwareOnly),
        "sw" => Ok(LoggingMode::Software),
        "fw" => Ok(LoggingMode::Firmware),
        other => {
            let us: f64 = other
                .parse()
                .map_err(|_| format!("mode must be hw|sw|fw or microseconds, got '{other}'"))?;
            Ok(LoggingMode::Custom(Span::from_us_f64(us)))
        }
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    use cesim_core::engine::{shard_globals, CompiledSchedule, ShardTelemetry};
    use cesim_core::experiment::run_against_baseline_compiled_telem;
    use cesim_core::obs::telemetry::{self, Span as ProfSpan};
    use cesim_core::workloads::natural_ranks;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    let app = match args.get("app") {
        None => AppId::Lulesh,
        Some(name) => AppId::parse(name).ok_or_else(|| format!("unknown workload '{name}'"))?,
    };
    let nodes = args.get_parsed("nodes", 256usize)?;
    let mode = parse_mode(args.get("mode").unwrap_or("fw"))?;
    let mtbce = cesim_core::model::parse_span(args.get("mtbce").unwrap_or("5544"))?;
    let reps = args.get_parsed("reps", 3u32)?;
    let seed = args.get_parsed("seed", 0xCE11u64)?;
    let shards = parse_shards(args, 1, natural_ranks(app, nodes))?;
    let profile = args.has_flag("profile");
    let shard_health = args.has_flag("shard-health");
    if profile {
        telemetry::set_enabled(true);
    }
    if shard_health && shards <= 1 {
        eprintln!("note: --shard-health needs --shards > 1; ignoring");
    }
    let mut exp = Experiment::new(app, nodes)
        .mode(mode)
        .mtbce(mtbce)
        .reps(reps)
        .seed(seed)
        .shards(shards);
    if args.has_flag("single-node") {
        exp = exp.scope(Scope::SingleRank(Rank(0)));
    }
    if let Some(steps) = args.get("steps") {
        let s: usize = steps
            .parse()
            .map_err(|_| format!("invalid --steps '{steps}'"))?;
        exp = exp.steps(s);
    } else {
        exp.workload.steps_scale = args.get_parsed("steps-scale", 0.25)?;
    }
    println!(
        "running {app} on {nodes} nodes, {mode}, MTBCE_node = {mtbce}, scope = {:?}, {reps} reps",
        exp.scope
    );
    let threads = args.get_parsed("threads", 0usize)?;
    let run_start = Instant::now();

    // Staged explicitly (instead of experiment::run) so the span
    // profiler can attribute build/compile/baseline/run separately and
    // the sharded replicas can report window-based progress.
    let ranks = natural_ranks(exp.app, exp.nodes);
    let sched = {
        let _s = ProfSpan::enter("build");
        cesim_core::workloads::build(exp.app, ranks, &exp.workload)
    };
    let cs = {
        let _s = ProfSpan::enter("compile");
        Arc::new(CompiledSchedule::compile(&sched))
    };
    let base = {
        let _s = ProfSpan::enter("baseline");
        simulate(&sched, &exp.params, &mut NoNoise).map_err(|e| e.to_string())?
    };
    let telem = if shards > 1 && (shard_health || profile) {
        Some(ShardTelemetry::new(shards))
    } else {
        None
    };

    // Sharded runs finish replicas slowly; report window-based progress
    // from the engine's global counters instead of staying silent.
    let ticker_stop = Arc::new(AtomicBool::new(false));
    let ticker = if shards > 1 && args.has_flag("progress") {
        let stop = Arc::clone(&ticker_stop);
        let expected_ps = base
            .finish
            .since(cesim_core::model::Time::ZERO)
            .as_ps()
            .saturating_mul(reps as u64);
        let start = shard_globals();
        Some(std::thread::spawn(move || loop {
            for _ in 0..20 {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            let g = shard_globals();
            let sim_ps = g.sim_ps_advanced.saturating_sub(start.sim_ps_advanced);
            let windows = g.windows.saturating_sub(start.windows);
            let elapsed = run_start.elapsed().as_secs_f64();
            let sim_s = sim_ps as f64 / 1e12;
            let expected_s = expected_ps as f64 / 1e12;
            let pct = if expected_ps > 0 {
                (sim_s / expected_s * 100.0).min(100.0)
            } else {
                0.0
            };
            let eta = if sim_ps > 0 && expected_ps > sim_ps {
                elapsed * (expected_ps - sim_ps) as f64 / sim_ps as f64
            } else {
                0.0
            };
            eprintln!(
                "[run] shard progress: {windows} windows, {sim_s:.1}/{expected_s:.1} sim-s \
                 ({pct:.0}%, ETA {eta:.0}s)"
            );
        }))
    } else {
        None
    };

    let out = {
        let _s = ProfSpan::enter("run");
        figures::with_threads(threads, || {
            run_against_baseline_compiled_telem(&exp, ranks, &cs, base.finish, 0, telem.as_ref())
        })
        .map_err(|e| e.to_string())?
    };
    // Wall time for the profile table stops here: the ticker join below
    // can lag up to one poll interval and is not simulation work.
    let run_wall = run_start.elapsed();
    ticker_stop.store(true, Ordering::Relaxed);
    if let Some(t) = ticker {
        let _ = t.join();
    }
    println!("ranks simulated : {}", out.ranks);
    println!("baseline        : {}", out.baseline);
    match (out.mean_finish(), out.mean_slowdown_pct()) {
        (Some(m), Some(s)) => {
            println!("mean perturbed  : {m}");
            println!(
                "slowdown        : {s:.3}%{}",
                out.slowdown_stddev_pct()
                    .map(|d| format!(" (stddev {d:.3}%)"))
                    .unwrap_or_default()
            );
            println!("CE events/rep   : {:.1}", out.mean_ce_events());
        }
        _ => println!(
            "slowdown        : no forward progress (per-event cost {} vs MTBCE {})",
            exp.mode.per_event_cost(),
            exp.mtbce
        ),
    }
    if let Some(t) = &telem {
        if shard_health {
            eprintln!("{}", t.report());
        }
    }
    if profile {
        eprint!("{}", telemetry::profile_table(run_wall));
    }
    Ok(())
}
