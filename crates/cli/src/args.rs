//! A small hand-rolled argument parser (no external dependencies; see
//! DESIGN.md's dependency policy).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` pairs.
#[derive(Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    /// `--key value` options.
    pub options: HashMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
    /// Non-flag arguments after the subcommand (e.g. a trace file path).
    /// Commands that take none reject them at dispatch time.
    pub positionals: Vec<String>,
}

/// Options that take a value; everything else starting with `--` is a flag.
const VALUED: &[&str] = &[
    "nodes",
    "reps",
    "steps",
    "steps-scale",
    "seed",
    "apps",
    "csv",
    "app",
    "mode",
    "mtbce",
    "window",
    "period",
    "detour",
    "generate",
    "load",
    "extrapolate",
    "threads",
    "shards",
    "trace-out",
    "metrics-interval",
    "metrics-out",
    "observe-replicas",
    "provenance-out",
    "heatmap-out",
    "bins",
    "policy",
    "jobs-csv",
    "nodes-csv",
    "jsonl",
    "addr",
    "workers",
    "queue-depth",
    "cache-entries",
    "response-cache-entries",
    "log-level",
    "log-format",
];

/// Bare switches the CLI understands. Anything else spelled `--name` is
/// rejected at parse time so a typo (`--quite`) cannot silently run a
/// full sweep with the wrong behavior.
const FLAGS: &[&str] = &[
    "paper",
    "exact-rate",
    "quiet",
    "progress",
    "observe",
    "chart",
    "single-node",
    "profile",
    "shard-health",
    "log-requests",
    "help",
];

impl Args {
    /// Parse from an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if VALUED.contains(&name) {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("--{name} requires a value"))?;
                    out.options.insert(name.to_string(), v);
                } else if FLAGS.contains(&name) {
                    out.flags.push(name.to_string());
                } else {
                    return Err(format!("unknown option '--{name}'"));
                }
            } else if out.command.is_none() {
                out.command = Some(a);
            } else {
                out.positionals.push(a);
            }
        }
        Ok(out)
    }

    /// A string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(|s| s.as_str())
    }

    /// A parsed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{name}")),
        }
    }

    /// Whether a bare flag was passed.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn basic_parse() {
        let a = parse("fig5 --nodes 512 --reps 4 --paper").unwrap();
        assert_eq!(a.command.as_deref(), Some("fig5"));
        assert_eq!(a.get("nodes"), Some("512"));
        assert_eq!(a.get_parsed("reps", 1u32).unwrap(), 4);
        assert!(a.has_flag("paper"));
        assert!(!a.has_flag("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("fig3").unwrap();
        assert_eq!(a.get_parsed("nodes", 256usize).unwrap(), 256);
    }

    #[test]
    fn missing_value_is_error() {
        assert!(parse("run --app").is_err());
    }

    #[test]
    fn bad_value_is_error() {
        let a = parse("fig3 --nodes abc").unwrap();
        assert!(a.get_parsed::<usize>("nodes", 1).is_err());
    }

    #[test]
    fn unknown_flag_is_error() {
        let err = parse("fig3 --bogus").unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
        // Typos of real flags are caught too.
        assert!(parse("fig4 --quite").is_err());
        assert!(parse("serve --adr 1.2.3.4:80").is_err());
    }

    #[test]
    fn serve_options_parse() {
        let a = parse("serve --addr 127.0.0.1:0 --workers 8 --queue-depth 16 --cache-entries 32")
            .unwrap();
        assert_eq!(a.command.as_deref(), Some("serve"));
        assert_eq!(a.get("addr"), Some("127.0.0.1:0"));
        assert_eq!(a.get_parsed("workers", 1usize).unwrap(), 8);
        assert_eq!(a.get_parsed("queue-depth", 1usize).unwrap(), 16);
        assert_eq!(a.get_parsed("cache-entries", 1usize).unwrap(), 32);
    }

    #[test]
    fn logging_options_parse() {
        let a = parse("serve --log-level debug --log-format json").unwrap();
        assert_eq!(a.get("log-level"), Some("debug"));
        assert_eq!(a.get("log-format"), Some("json"));
    }

    #[test]
    fn extra_positionals_are_collected() {
        let a = parse("trace in.trc --trace-out t.json").unwrap();
        assert_eq!(a.command.as_deref(), Some("trace"));
        assert_eq!(a.positionals, vec!["in.trc".to_string()]);
        assert_eq!(a.get("trace-out"), Some("t.json"));
    }
}
