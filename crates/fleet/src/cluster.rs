//! Deterministic cluster materialization.
//!
//! Every node's MTBCE (and its hot-spot status) is a pure function of
//! `(spec seed, node id)`: node `i` draws from
//! `Rng64::new(mix(mix(seed, fnv1a("fleet/node")), i))`, so the cluster
//! is byte-identical no matter how many worker threads later run jobs —
//! the same coordinate-seeding discipline as `cesim_core::seed`.

use crate::spec::{ClusterSpec, MtbceDist};
use cesim_core::seed::{fnv1a, mix};
use cesim_model::rng::Rng64;
use cesim_model::{LoggingMode, Span};

/// One cluster node's state as the fleet run evolves.
#[derive(Clone, Debug)]
pub struct Node {
    /// Node id (index into the cluster).
    pub id: usize,
    /// Drawn mean time between CEs (already hot-scaled if `hot`).
    pub mtbce: Span,
    /// Current logging mode (policies may change it between epochs).
    pub mode: LoggingMode,
    /// Mode the node started with.
    pub initial_mode: LoggingMode,
    /// Whether the node drew into the faulty-DIMM hot-spot population.
    pub hot: bool,
    /// Whether a policy has taken the node out of service.
    pub offline: bool,
    /// Epoch the node was offlined, if it was.
    pub offline_epoch: Option<u32>,
    /// CEs observed on this node across the whole run.
    pub ce_total: u64,
    /// CEs observed on this node during the most recent epoch.
    pub ce_last_epoch: u64,
    /// Epochs this node spent hosting a job.
    pub busy_epochs: u32,
}

impl Node {
    /// Per-rank CE utilization a job rank placed here would see.
    pub fn utilization(&self) -> f64 {
        self.mode.per_event_cost().as_secs_f64() / self.mtbce.as_secs_f64()
    }
}

/// Smallest MTBCE a draw can produce — a floor keeps a pathological
/// lognormal tail from producing a zero-width arrival process.
const MTBCE_FLOOR: Span = Span::from_ns(1);

fn draw_mtbce(dist: &MtbceDist, rng: &mut Rng64) -> Span {
    let drawn = match dist {
        MtbceDist::Uniform { min, max } => {
            Span::from_secs_f64(rng.uniform_f64(min.as_secs_f64(), max.as_secs_f64()))
        }
        MtbceDist::LogNormal { median, sigma } => {
            // Box–Muller on open-interval uniforms (ln(0) is unreachable).
            let u1 = rng.next_f64_open();
            let u2 = rng.next_f64_open();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            Span::from_secs_f64(median.as_secs_f64() * (sigma * z).exp())
        }
        MtbceDist::Buckets(buckets) => {
            let total: f64 = buckets.iter().map(|(_, w)| w).sum();
            let mut pick = rng.next_f64() * total;
            let mut chosen = buckets[buckets.len() - 1].0;
            for (mtbce, w) in buckets {
                if pick < *w {
                    chosen = *mtbce;
                    break;
                }
                pick -= w;
            }
            chosen
        }
    };
    drawn.max(MTBCE_FLOOR)
}

/// Materialize the cluster: one deterministic draw per node.
pub fn build_cluster(spec: &ClusterSpec, seed: u64) -> Vec<Node> {
    let domain = mix(seed, fnv1a(b"fleet/node"));
    (0..spec.nodes)
        .map(|id| {
            let mut rng = Rng64::new(mix(domain, id as u64));
            let mut mtbce = draw_mtbce(&spec.mtbce, &mut rng);
            let hot = rng.next_f64() < spec.hot_fraction;
            if hot {
                mtbce = mtbce.mul_f64(spec.hot_scale).max(MTBCE_FLOOR);
            }
            Node {
                id,
                mtbce,
                mode: spec.mode,
                initial_mode: spec.mode,
                hot,
                offline: false,
                offline_epoch: None,
                ce_total: 0,
                ce_last_epoch: 0,
                busy_epochs: 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_spec(nodes: usize) -> ClusterSpec {
        ClusterSpec {
            nodes,
            mode: LoggingMode::Software,
            mtbce: MtbceDist::Uniform {
                min: Span::from_ms(5),
                max: Span::from_ms(20),
            },
            hot_fraction: 0.0,
            hot_scale: 1.0,
        }
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let spec = uniform_spec(64);
        let a: Vec<Span> = build_cluster(&spec, 7).iter().map(|n| n.mtbce).collect();
        let b: Vec<Span> = build_cluster(&spec, 7).iter().map(|n| n.mtbce).collect();
        let c: Vec<Span> = build_cluster(&spec, 8).iter().map(|n| n.mtbce).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_draws_stay_in_bounds() {
        let spec = uniform_spec(256);
        for n in build_cluster(&spec, 1) {
            assert!(n.mtbce >= Span::from_ms(5) && n.mtbce <= Span::from_ms(20));
            assert!(!n.hot);
        }
    }

    #[test]
    fn node_draw_independent_of_cluster_size() {
        // Node i's draw is a function of (seed, i) alone: growing the
        // cluster must not reshuffle existing nodes.
        let small = build_cluster(&uniform_spec(8), 3);
        let large = build_cluster(&uniform_spec(32), 3);
        for (s, l) in small.iter().zip(&large) {
            assert_eq!(s.mtbce, l.mtbce);
        }
    }

    #[test]
    fn hot_fraction_scales_a_subset() {
        let spec = ClusterSpec {
            hot_fraction: 0.25,
            hot_scale: 0.1,
            ..uniform_spec(512)
        };
        let nodes = build_cluster(&spec, 11);
        let hot = nodes.iter().filter(|n| n.hot).count();
        assert!(
            (64..192).contains(&hot),
            "~25% of 512 nodes should be hot, got {hot}"
        );
        // Hot nodes sit strictly below the cold draw floor once scaled.
        for n in nodes.iter().filter(|n| n.hot) {
            assert!(n.mtbce < Span::from_ms(5), "hot node at {:?}", n.mtbce);
        }
    }

    #[test]
    fn lognormal_median_is_roughly_respected() {
        let spec = ClusterSpec {
            mtbce: MtbceDist::LogNormal {
                median: Span::from_ms(10),
                sigma: 0.5,
            },
            ..uniform_spec(1024)
        };
        let mut draws: Vec<f64> = build_cluster(&spec, 5)
            .iter()
            .map(|n| n.mtbce.as_secs_f64())
            .collect();
        draws.sort_by(f64::total_cmp);
        let median = draws[draws.len() / 2];
        assert!(
            (0.008..0.012).contains(&median),
            "sample median {median} should be near 10ms"
        );
    }

    #[test]
    fn bucket_weights_are_respected() {
        let spec = ClusterSpec {
            mtbce: MtbceDist::Buckets(vec![(Span::from_secs(3600), 9.0), (Span::from_ms(10), 1.0)]),
            ..uniform_spec(1000)
        };
        let nodes = build_cluster(&spec, 2);
        let noisy = nodes
            .iter()
            .filter(|n| n.mtbce == Span::from_ms(10))
            .count();
        let quiet = nodes
            .iter()
            .filter(|n| n.mtbce == Span::from_secs(3600))
            .count();
        assert_eq!(noisy + quiet, 1000, "every draw hits a bucket exactly");
        assert!((50..200).contains(&noisy), "~10% noisy, got {noisy}");
    }
}
