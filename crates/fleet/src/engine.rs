//! The fleet epoch loop.
//!
//! Time is divided into *epochs*. Each epoch:
//!
//! 1. **place** — queued jobs are assigned to free online nodes by the
//!    spec's placement policy (`fleet_place` phase span);
//! 2. **run** — every running job simulates one epoch slice of its
//!    workload through the compile-once engine, with
//!    [`HeteroCeNoise`](cesim_noise::HeteroCeNoise) carrying each hosting
//!    node's MTBCE and logging-mode detour per rank (`fleet_run`);
//! 3. **observe** — per-rank CE counts are attributed back to the hosting
//!    nodes;
//! 4. **react** — the mitigation policy sees the observations and may
//!    offline nodes (displacing and re-queuing their jobs, progress
//!    lost) or switch logging modes for subsequent epochs
//!    (`fleet_policy`).
//!
//! **Determinism.** The cluster is materialized from stable per-node
//! coordinates (see [`crate::cluster`]); each job slice's RNG seed is
//! `rep_seed(point_seed(seed, "fleet", job, attempt), slice)` — a pure
//! function of *what* is being simulated, never of worker interleaving.
//! Within an epoch, slices run in parallel via rayon and are collected
//! in job order; everything between epochs is serial. Job slices use the
//! serial compiled engine rather than the intra-run sharded one: the
//! sharded fan-out clones its noise model per shard and discards the
//! clones, which would lose the per-rank CE counts policies react to —
//! and at fleet scale, job-level parallelism already saturates the pool.

use crate::cluster::{build_cluster, Node};
use crate::policy::{build_policy, Action};
use crate::spec::{FleetSpec, JobSpec, Placement};
use cesim_core::experiment::DIVERGENCE_LIMIT;
use cesim_core::seed::{fnv1a, mix, point_seed, rep_seed};
use cesim_core::ScheduleCache;
use cesim_engine::simulate_compiled;
use cesim_model::rng::Rng64;
use cesim_model::{LogGopsParams, Span, Time};
use cesim_noise::{HeteroCeNoise, RankCeParams};
use cesim_obs::telemetry;
use cesim_workloads::{AppId, WorkloadConfig};
use rayon::prelude::*;

/// One job instance in the fleet.
#[derive(Clone, Debug)]
struct Job {
    id: usize,
    spec_index: usize,
    app: AppId,
    nodes_required: usize,
    workload: WorkloadConfig,
    duration: u32,
}

#[derive(Clone, Debug)]
enum JobState {
    Queued,
    Running {
        nodes: Vec<usize>,
        start_epoch: u32,
        slices_done: u32,
        finish_acc: Span,
        baseline_acc: Span,
        ce_acc: u64,
        diverged: bool,
    },
    Completed,
}

/// Final per-job report row.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutcome {
    /// Job id (stable across displacement).
    pub id: usize,
    /// Index of the [`JobSpec`] mix entry that produced the job.
    pub spec_index: usize,
    /// Workload.
    pub app: AppId,
    /// Nodes the job occupies while running.
    pub nodes: usize,
    /// Epoch the (final, non-displaced) run started, if it ever ran.
    pub start_epoch: Option<u32>,
    /// Epoch the job completed, if it did.
    pub end_epoch: Option<u32>,
    /// Times the job was displaced from an offlined node and re-queued.
    pub displaced: u32,
    /// Whether the job finished all its epoch slices.
    pub completed: bool,
    /// Whether any slice hit the divergence guard (ρ ≥ 0.95).
    pub diverged: bool,
    /// Summed noise-free baseline of the completed slices.
    pub baseline: Span,
    /// Summed perturbed finish of the completed slices.
    pub finish: Span,
    /// CE detours injected across the job's (final) run.
    pub ce_events: u64,
    /// Slowdown vs baseline in percent; `None` if diverged or never
    /// completed.
    pub slowdown_pct: Option<f64>,
}

/// Per-epoch accounting row (the JSONL stream and the conservation
/// invariant both come from this).
#[derive(Clone, Debug, PartialEq)]
pub struct EpochRecord {
    /// Epoch index.
    pub epoch: u32,
    /// Jobs waiting after this epoch's placement and policy actions.
    pub queued: usize,
    /// Jobs holding nodes at the end of the epoch.
    pub running: usize,
    /// Jobs finished so far.
    pub completed: usize,
    /// Total displacement events so far (a job displaced twice counts
    /// twice).
    pub displaced_total: u64,
    /// Nodes offline at the end of the epoch.
    pub offline_nodes: usize,
    /// CEs observed fleet-wide during the epoch.
    pub ce_events: u64,
    /// Human-readable policy actions taken at the end of the epoch.
    pub actions: Vec<String>,
}

/// The complete result of one fleet run.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    /// Policy that ran (spec name, e.g. `threshold_offline`).
    pub policy: String,
    /// Placement that ran.
    pub placement: String,
    /// Base seed.
    pub seed: u64,
    /// Per-job rows, ascending id.
    pub jobs: Vec<JobOutcome>,
    /// Final node states, ascending id.
    pub nodes: Vec<Node>,
    /// Per-epoch accounting.
    pub epochs: Vec<EpochRecord>,
    /// Node-epochs of capacity lost to policy offlining.
    pub offline_node_epochs: u64,
    /// True when the run stopped before every job completed (epoch cap
    /// hit, or queued jobs could no longer fit the surviving capacity).
    pub truncated: bool,
}

impl FleetOutcome {
    /// Nearest-rank percentile of completed, non-diverged job slowdowns.
    pub fn slowdown_percentile(&self, q: f64) -> Option<f64> {
        let mut xs: Vec<f64> = self.jobs.iter().filter_map(|j| j.slowdown_pct).collect();
        if xs.is_empty() {
            return None;
        }
        xs.sort_by(f64::total_cmp);
        let rank = ((q / 100.0) * xs.len() as f64).ceil() as usize;
        Some(xs[rank.clamp(1, xs.len()) - 1])
    }

    /// CEs observed fleet-wide.
    pub fn total_ce_events(&self) -> u64 {
        self.nodes.iter().map(|n| n.ce_total).sum()
    }

    /// Jobs that finished.
    pub fn completed_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.completed).count()
    }

    /// Total displacement events.
    pub fn displaced_total(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.displaced)).sum()
    }
}

/// Expand the spec's job mix into concrete jobs (ids ascend in mix
/// order).
fn expand_jobs(specs: &[JobSpec]) -> Vec<Job> {
    let mut jobs = Vec::new();
    for (spec_index, js) in specs.iter().enumerate() {
        for _ in 0..js.count {
            jobs.push(Job {
                id: jobs.len(),
                spec_index,
                app: js.app,
                nodes_required: js.nodes,
                workload: WorkloadConfig {
                    steps_override: js.steps,
                    ..WorkloadConfig::default()
                },
                duration: js.epochs,
            });
        }
    }
    jobs
}

/// Pick `want` nodes from the free list per the placement policy.
/// `free` is sorted ascending by node id. Returns `None` when there is
/// not enough capacity.
fn place(
    placement: Placement,
    free: &[usize],
    want: usize,
    seed: u64,
    epoch: u32,
    job_id: usize,
) -> Option<Vec<usize>> {
    if free.len() < want {
        return None;
    }
    match placement {
        Placement::Packed => Some(free[..want].to_vec()),
        Placement::Spread => {
            // Evenly strided indices across the free list.
            Some(
                (0..want)
                    .map(|i| free[i * free.len() / want])
                    .collect::<Vec<_>>(),
            )
        }
        Placement::Random => {
            // A seeded partial Fisher–Yates over a copy of the free
            // list; the seed folds in (epoch, job) so re-placements draw
            // fresh but reproducible permutations.
            let mut rng = Rng64::new(mix(
                mix(mix(seed, fnv1a(b"fleet/place")), u64::from(epoch)),
                job_id as u64,
            ));
            let mut pool = free.to_vec();
            let mut picked = Vec::with_capacity(want);
            for _ in 0..want {
                let i = rng.next_below(pool.len() as u64) as usize;
                picked.push(pool.swap_remove(i));
            }
            picked.sort_unstable();
            Some(picked)
        }
    }
}

/// One slice's simulation output.
struct SliceResult {
    job_index: usize,
    finish: Span,
    baseline: Span,
    ce_events: u64,
    per_rank: Vec<u64>,
    diverged: bool,
}

/// Run a fleet scenario to completion (or its epoch cap).
///
/// `schedules` is the compile-once cache — the daemon passes its
/// process-wide cache so fleet jobs share compiled schedules with
/// `/v1/simulate` traffic; the CLI creates a fresh one per run. Jobs on
/// nodes with *different logging modes* still share one compiled
/// schedule: noise is applied at run time, never baked into the
/// compiled form (pinned by a regression test in `cesim_core::cache`).
pub fn run_fleet(spec: &FleetSpec, schedules: &ScheduleCache) -> Result<FleetOutcome, String> {
    let params = LogGopsParams::xc40();
    let mut nodes = build_cluster(&spec.cluster, spec.seed);
    let jobs = expand_jobs(&spec.jobs);
    let mut states: Vec<JobState> = vec![JobState::Queued; jobs.len()];
    let mut attempts: Vec<u32> = vec![0; jobs.len()];
    let mut outcomes: Vec<JobOutcome> = jobs
        .iter()
        .map(|j| JobOutcome {
            id: j.id,
            spec_index: j.spec_index,
            app: j.app,
            nodes: j.nodes_required,
            start_epoch: None,
            end_epoch: None,
            displaced: 0,
            completed: false,
            diverged: false,
            baseline: Span::ZERO,
            finish: Span::ZERO,
            ce_events: 0,
            slowdown_pct: None,
        })
        .collect();
    let mut policy = build_policy(&spec.policy, spec.cluster.nodes);
    let mut epochs = Vec::new();
    let mut offline_node_epochs = 0u64;
    let mut displaced_total = 0u64;
    let mut truncated = false;
    // Node occupancy: which running job holds each node.
    let mut occupant: Vec<Option<usize>> = vec![None; nodes.len()];
    let trace = cesim_obs::tracectx::current();

    for epoch in 0..spec.max_epochs {
        let any_open = states.iter().any(|s| !matches!(s, JobState::Completed));
        if !any_open {
            break;
        }
        offline_node_epochs += nodes.iter().filter(|n| n.offline).count() as u64;

        // --- place ---
        {
            let _s = telemetry::Span::enter("fleet_place");
            for ji in 0..jobs.len() {
                if !matches!(states[ji], JobState::Queued) {
                    continue;
                }
                let free: Vec<usize> = nodes
                    .iter()
                    .filter(|n| !n.offline && occupant[n.id].is_none())
                    .map(|n| n.id)
                    .collect();
                if let Some(assigned) = place(
                    spec.placement,
                    &free,
                    jobs[ji].nodes_required,
                    spec.seed,
                    epoch,
                    jobs[ji].id,
                ) {
                    for &n in &assigned {
                        occupant[n] = Some(ji);
                    }
                    states[ji] = JobState::Running {
                        nodes: assigned,
                        start_epoch: epoch,
                        slices_done: 0,
                        finish_acc: Span::ZERO,
                        baseline_acc: Span::ZERO,
                        ce_acc: 0,
                        diverged: false,
                    };
                }
            }
        }

        let running: Vec<usize> = (0..jobs.len())
            .filter(|&ji| matches!(states[ji], JobState::Running { .. }))
            .collect();
        if running.is_empty() {
            // Queued jobs that cannot place now never will: completion
            // only frees nodes of running jobs, and none are running.
            truncated = true;
            epochs.push(EpochRecord {
                epoch,
                queued: states
                    .iter()
                    .filter(|s| matches!(s, JobState::Queued))
                    .count(),
                running: 0,
                completed: states
                    .iter()
                    .filter(|s| matches!(s, JobState::Completed))
                    .count(),
                displaced_total,
                offline_nodes: nodes.iter().filter(|n| n.offline).count(),
                ce_events: 0,
                actions: Vec::new(),
            });
            break;
        }

        // --- run: snapshot slice inputs, then fan out ---
        let slices: Vec<SliceResult> = {
            let _s = telemetry::Span::enter("fleet_run");
            struct SliceInput {
                job_index: usize,
                app: AppId,
                nodes_required: usize,
                workload: WorkloadConfig,
                rank_params_of: Vec<RankCeParams>,
                seed: u64,
            }
            let mut inputs = Vec::with_capacity(running.len());
            for &ji in &running {
                let (assigned, slices_done) = match &states[ji] {
                    JobState::Running {
                        nodes: ns,
                        slices_done,
                        ..
                    } => (ns.clone(), *slices_done),
                    _ => unreachable!("running set is filtered"),
                };
                // Per-rank params snapshot: rank r lands on assigned
                // node r mod |assigned| (ranks == nodes for all apps
                // modulo natural_ranks snapping).
                let entry_seed = rep_seed(
                    point_seed(spec.seed, "fleet", jobs[ji].id, attempts[ji] as usize),
                    slices_done,
                );
                let rank_params_of: Vec<RankCeParams> = assigned
                    .iter()
                    .map(|&n| RankCeParams {
                        mtbce: nodes[n].mtbce,
                        detour: nodes[n].mode.per_event_cost(),
                    })
                    .collect();
                inputs.push(SliceInput {
                    job_index: ji,
                    app: jobs[ji].app,
                    nodes_required: jobs[ji].nodes_required,
                    workload: jobs[ji].workload,
                    rank_params_of,
                    seed: entry_seed,
                });
            }
            let trace = trace.as_ref();
            let results: Vec<Result<SliceResult, String>> = inputs
                .into_par_iter()
                .map(|inp| {
                    let _trace_guard = trace.map(|t| t.install());
                    let _job_span = trace.and_then(|_| {
                        cesim_obs::tracectx::begin_dyn(format!(
                            "fleet job {} epoch {epoch}",
                            inp.job_index
                        ))
                    });
                    let entry = schedules
                        .get_or_compile(inp.app, inp.nodes_required, &inp.workload, &params)
                        .map_err(|e| format!("job {}: {e}", inp.job_index))?;
                    let rank_params: Vec<RankCeParams> = (0..entry.ranks)
                        .map(|r| inp.rank_params_of[r % inp.rank_params_of.len()])
                        .collect();
                    let baseline = entry.baseline.since(Time::ZERO);
                    let noise = HeteroCeNoise::new(rank_params, inp.seed);
                    if noise.max_utilization() >= DIVERGENCE_LIMIT {
                        // No forward progress on at least one hosting
                        // node; the slice is skipped, not simulated
                        // (mirrors the experiment-level guard).
                        return Ok(SliceResult {
                            job_index: inp.job_index,
                            finish: baseline,
                            baseline,
                            ce_events: 0,
                            per_rank: vec![0; entry.ranks],
                            diverged: true,
                        });
                    }
                    let mut noise = noise;
                    let r = simulate_compiled(&entry.schedule, &params, &mut noise)
                        .map_err(|e| format!("job {}: {e}", inp.job_index))?;
                    Ok(SliceResult {
                        job_index: inp.job_index,
                        finish: r.finish.since(Time::ZERO),
                        baseline,
                        ce_events: r.noise_events,
                        per_rank: noise.per_rank_events().to_vec(),
                        diverged: false,
                    })
                })
                .collect();
            results.into_iter().collect::<Result<Vec<_>, _>>()?
        };

        // --- observe: CE accrual + job progress, in job order ---
        for n in nodes.iter_mut() {
            n.ce_last_epoch = 0;
        }
        let mut epoch_ce = 0u64;
        for slice in &slices {
            let ji = slice.job_index;
            let assigned = match &states[ji] {
                JobState::Running { nodes: ns, .. } => ns.clone(),
                _ => unreachable!(),
            };
            for (r, &ev) in slice.per_rank.iter().enumerate() {
                let nid = assigned[r % assigned.len()];
                nodes[nid].ce_last_epoch += ev;
                nodes[nid].ce_total += ev;
            }
            for &nid in &assigned {
                nodes[nid].busy_epochs += 1;
            }
            epoch_ce += slice.ce_events;
            if let JobState::Running {
                slices_done,
                finish_acc,
                baseline_acc,
                ce_acc,
                diverged,
                start_epoch,
                ..
            } = &mut states[ji]
            {
                *slices_done += 1;
                *finish_acc += slice.finish;
                *baseline_acc += slice.baseline;
                *ce_acc += slice.ce_events;
                *diverged |= slice.diverged;
                let done = *slices_done >= jobs[ji].duration;
                if done {
                    let o = &mut outcomes[ji];
                    o.start_epoch = Some(*start_epoch);
                    o.end_epoch = Some(epoch);
                    o.completed = true;
                    o.diverged = *diverged;
                    o.baseline = *baseline_acc;
                    o.finish = *finish_acc;
                    o.ce_events = *ce_acc;
                    o.slowdown_pct = (!*diverged).then(|| {
                        (finish_acc.as_secs_f64() / baseline_acc.as_secs_f64() - 1.0) * 100.0
                    });
                    for &nid in &assigned {
                        occupant[nid] = None;
                    }
                    states[ji] = JobState::Completed;
                }
            }
        }

        // --- react ---
        let mut action_log = Vec::new();
        {
            let _s = telemetry::Span::enter("fleet_policy");
            let actions = policy.react(epoch, &nodes);
            for a in actions {
                match a {
                    Action::Offline { node } => {
                        if nodes[node].offline {
                            continue;
                        }
                        nodes[node].offline = true;
                        nodes[node].offline_epoch = Some(epoch);
                        action_log.push(format!("offline node {node}"));
                        if let Some(ji) = occupant[node] {
                            // Displace: the job loses all progress and
                            // re-queues for a fresh attempt.
                            let assigned = match &states[ji] {
                                JobState::Running { nodes: ns, .. } => ns.clone(),
                                _ => unreachable!("occupant is running"),
                            };
                            for &nid in &assigned {
                                occupant[nid] = None;
                            }
                            states[ji] = JobState::Queued;
                            attempts[ji] += 1;
                            outcomes[ji].displaced += 1;
                            displaced_total += 1;
                            action_log.push(format!("displace job {ji}"));
                        }
                    }
                    Action::SetMode { node, mode } => {
                        if nodes[node].offline || nodes[node].mode == mode {
                            continue;
                        }
                        nodes[node].mode = mode;
                        action_log.push(format!("node {node} mode -> {}", mode.short_label()));
                    }
                }
            }
        }

        epochs.push(EpochRecord {
            epoch,
            queued: states
                .iter()
                .filter(|s| matches!(s, JobState::Queued))
                .count(),
            running: states
                .iter()
                .filter(|s| matches!(s, JobState::Running { .. }))
                .count(),
            completed: states
                .iter()
                .filter(|s| matches!(s, JobState::Completed))
                .count(),
            displaced_total,
            offline_nodes: nodes.iter().filter(|n| n.offline).count(),
            ce_events: epoch_ce,
            actions: action_log,
        });
    }

    if states.iter().any(|s| !matches!(s, JobState::Completed)) {
        truncated = true;
    }

    Ok(FleetOutcome {
        policy: spec.policy.name().to_string(),
        placement: spec.placement.name().to_string(),
        seed: spec.seed,
        jobs: outcomes,
        nodes,
        epochs,
        offline_node_epochs,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FleetSpec;

    fn small_spec(policy: &str) -> FleetSpec {
        FleetSpec::parse(&format!(
            r#"{{
            "seed": 42, "epochs": 8,
            "cluster": {{
                "nodes": 8, "mode": "sw",
                "mtbce": {{"dist": "uniform", "min": "8ms", "max": "15ms"}},
                "hot_fraction": 0.25, "hot_scale": 0.15
            }},
            "jobs": [{{"app": "miniFE", "nodes": 4, "count": 3, "steps": 2, "epochs": 2}}],
            "placement": "packed",
            "policy": {policy}
        }}"#
        ))
        .expect("test spec parses")
    }

    #[test]
    fn static_fleet_completes_all_jobs() {
        let spec = small_spec(r#"{"kind": "static"}"#);
        let out = run_fleet(&spec, &ScheduleCache::new(8)).unwrap();
        assert_eq!(out.completed_jobs(), 3);
        assert!(!out.truncated);
        assert_eq!(out.displaced_total(), 0);
        assert!(out.total_ce_events() > 0, "sw logging at ~10ms must inject");
        for j in &out.jobs {
            assert!(j.completed);
            let s = j.slowdown_pct.expect("not diverged at these rates");
            assert!(s > 0.0, "job {} slowdown {s}", j.id);
        }
        // Percentiles are well-formed and ordered.
        let p50 = out.slowdown_percentile(50.0).unwrap();
        let p99 = out.slowdown_percentile(99.0).unwrap();
        assert!(p50 <= p99);
    }

    #[test]
    fn conservation_holds_every_epoch() {
        let spec = small_spec(
            r#"{"kind": "threshold_offline", "ce_per_epoch": 1, "max_offline_fraction": 0.5}"#,
        );
        let out = run_fleet(&spec, &ScheduleCache::new(8)).unwrap();
        for e in &out.epochs {
            assert_eq!(
                e.queued + e.running + e.completed,
                3,
                "epoch {}: {e:?}",
                e.epoch
            );
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let spec = small_spec(
            r#"{"kind": "threshold_offline", "ce_per_epoch": 100, "max_offline_fraction": 0.25}"#,
        );
        let a = run_fleet(&spec, &ScheduleCache::new(8)).unwrap();
        let b = run_fleet(&spec, &ScheduleCache::new(8)).unwrap();
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.offline_node_epochs, b.offline_node_epochs);
    }

    #[test]
    fn offline_policy_displaces_and_requeues() {
        // Threshold 1: every node with any CE is a candidate; half the
        // cluster may go offline. Displaced jobs must still finish on
        // surviving nodes (8 nodes, 4-node jobs, cap 4 offline).
        let spec = small_spec(
            r#"{"kind": "threshold_offline", "ce_per_epoch": 1, "max_offline_fraction": 0.5}"#,
        );
        let out = run_fleet(&spec, &ScheduleCache::new(8)).unwrap();
        assert!(
            out.offline_node_epochs > 0,
            "an aggressive threshold must cost capacity"
        );
        let last = out.epochs.last().unwrap();
        assert!(last.offline_nodes > 0);
        assert!(
            out.epochs.iter().any(|e| !e.actions.is_empty()),
            "actions must be logged"
        );
    }

    #[test]
    fn mode_switch_changes_final_modes() {
        let spec = small_spec(r#"{"kind": "mode_switch", "ce_per_epoch": 1, "to_mode": "hw"}"#);
        let out = run_fleet(&spec, &ScheduleCache::new(8)).unwrap();
        assert!(
            out.nodes.iter().any(|n| n.mode != n.initial_mode),
            "threshold 1 must switch at least one node"
        );
        assert_eq!(out.displaced_total(), 0, "mode switches never displace");
    }

    #[test]
    fn random_placement_is_deterministic_too() {
        let mut spec = small_spec(r#"{"kind": "static"}"#);
        spec.placement = Placement::Random;
        let a = run_fleet(&spec, &ScheduleCache::new(8)).unwrap();
        let b = run_fleet(&spec, &ScheduleCache::new(8)).unwrap();
        assert_eq!(a.jobs, b.jobs);
    }

    #[test]
    fn oversized_queue_truncates_instead_of_spinning() {
        // 3 jobs x 4 nodes on 8 nodes with an epoch cap of 1: one epoch
        // runs two jobs, then the cap strands the third.
        let mut spec = small_spec(r#"{"kind": "static"}"#);
        spec.max_epochs = 1;
        let out = run_fleet(&spec, &ScheduleCache::new(8)).unwrap();
        assert!(out.truncated);
        let incomplete: Vec<_> = out.jobs.iter().filter(|j| !j.completed).collect();
        assert!(!incomplete.is_empty());
        for j in incomplete {
            assert_eq!(j.slowdown_pct, None);
            assert_eq!(j.end_epoch, None);
        }
    }

    #[test]
    fn schedule_cache_is_shared_across_jobs() {
        let spec = small_spec(r#"{"kind": "static"}"#);
        let cache = ScheduleCache::new(8);
        run_fleet(&spec, &cache).unwrap();
        // 3 identical jobs x 2 slices each: one compile, the rest hits.
        assert_eq!(cache.misses(), 1, "identical jobs share one compile");
        assert!(cache.hits() >= 5);
    }
}
