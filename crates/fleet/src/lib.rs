//! # cesim-fleet
//!
//! A fleet-scale scenario engine over the per-job simulator: N jobs
//! scheduled across a cluster of *heterogeneous* nodes, with mitigation
//! policies reacting to observed CE streams between epochs.
//!
//! The paper models one application on a cluster with a uniform per-node
//! CE rate. Field studies show reality is skewed — per-DIMM rates are
//! heavy-tailed with faulty-DIMM hot spots (arXiv 2408.15302), and
//! operators *act* on the observed CE stream (arXiv 2407.16377) by
//! offlining nodes or changing logging verbosity. This crate turns the
//! per-job simulator into that datacenter-scale what-if tool:
//!
//! * [`spec`] — the `FleetSpec` JSON grammar: cluster (MTBCE field
//!   distributions + hot spots), job mix, placement, policy;
//! * [`cluster`] — deterministic per-node draws from stable seed
//!   coordinates (byte-identical across `--threads N`);
//! * [`policy`] — the [`MitigationPolicy`](policy::MitigationPolicy)
//!   trait and its `static` / `threshold_offline` / `mode_switch`
//!   implementations;
//! * [`engine`] — the epoch loop: place → run (compile-once engine,
//!   per-rank heterogeneous noise) → observe → react;
//! * [`report`] — job/node CSVs, epoch JSONL, and the daemon response;
//! * [`service`] — `POST /v1/fleet` request validation and dispatch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod engine;
pub mod policy;
pub mod report;
pub mod service;
pub mod spec;

pub use cluster::{build_cluster, Node};
pub use engine::{run_fleet, EpochRecord, FleetOutcome, JobOutcome};
pub use policy::{Action, LoggingModeSwitch, MitigationPolicy, Static, ThresholdOffline};
pub use report::{epochs_jsonl, jobs_csv, nodes_csv, response_json, summary_json, summary_text};
pub use service::{handle_fleet, FleetRequest};
pub use spec::{ClusterSpec, FleetSpec, JobSpec, MtbceDist, Placement, PolicySpec};
