//! The fleet scenario description (`FleetSpec`) and its JSON form.
//!
//! A spec is one self-contained what-if question: a cluster of
//! heterogeneous nodes (per-node MTBCE drawn from a field distribution,
//! with an optional faulty-DIMM hot-spot population), a job mix, a
//! placement policy, and a mitigation policy. Everything the fleet
//! engine does is a pure function of the spec — see the determinism
//! argument in DESIGN.md ("Fleet engine").
//!
//! Parsing follows the service-layer conventions of
//! `cesim_core::service`: unknown fields are rejected (a typo must not
//! silently become a default) and every error message names the
//! offending field.

use cesim_model::{parse_span, LoggingMode, Span};
use cesim_workloads::AppId;
use std::collections::BTreeMap;

use cesim_json::JsonValue;

/// Default cap on fleet epochs when the spec does not set one.
pub const DEFAULT_MAX_EPOCHS: u32 = 64;

/// How per-node MTBCE values are drawn.
#[derive(Clone, Debug, PartialEq)]
pub enum MtbceDist {
    /// Uniform between two bounds (inclusive of the lower).
    Uniform {
        /// Smallest MTBCE.
        min: Span,
        /// Largest MTBCE.
        max: Span,
    },
    /// Log-normal around a median: `median * exp(sigma * z)` with
    /// `z ~ N(0,1)` — the heavy-tailed shape field studies report for
    /// per-DIMM CE rates.
    LogNormal {
        /// Median MTBCE (the distribution's 50th percentile).
        median: Span,
        /// Log-space standard deviation (0 = every node identical).
        sigma: f64,
    },
    /// An empirical bucket mix: each node picks one `(mtbce, weight)`
    /// bucket with probability proportional to its weight.
    Buckets(Vec<(Span, f64)>),
}

/// The simulated cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Initial logging mode of every node.
    pub mode: LoggingMode,
    /// Per-node MTBCE distribution.
    pub mtbce: MtbceDist,
    /// Fraction of nodes that are faulty-DIMM hot spots.
    pub hot_fraction: f64,
    /// MTBCE multiplier applied to hot nodes (`< 1` = more CEs).
    pub hot_scale: f64,
}

/// One homogeneous group of jobs in the mix.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Workload.
    pub app: AppId,
    /// Nodes each job needs (one rank per node, as in the paper).
    pub nodes: usize,
    /// How many identical jobs this entry contributes.
    pub count: u32,
    /// Workload step override per epoch slice (None = app default).
    pub steps: Option<usize>,
    /// Epoch slices the job must complete (its running time).
    pub epochs: u32,
}

/// Where queued jobs land on the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// First-fit onto the lowest-numbered free nodes.
    Packed,
    /// Evenly strided across the free nodes.
    Spread,
    /// A seeded shuffle of the free nodes.
    Random,
}

impl Placement {
    /// The spec-file name of this placement.
    pub fn name(self) -> &'static str {
        match self {
            Placement::Packed => "packed",
            Placement::Spread => "spread",
            Placement::Random => "random",
        }
    }
}

/// Which mitigation policy reacts to observed CE streams.
#[derive(Clone, Debug, PartialEq)]
pub enum PolicySpec {
    /// Never react (the paper's fixed-configuration setting).
    Static,
    /// Offline a node once its per-epoch CE count crosses a threshold,
    /// re-queuing any displaced job.
    ThresholdOffline {
        /// Observed CEs per epoch that trigger the offline.
        ce_per_epoch: u64,
        /// Cap on the fraction of the cluster the policy may remove.
        max_offline_fraction: f64,
    },
    /// Switch a node's logging mode once its per-epoch CE count crosses
    /// a threshold (e.g. drop a noisy node from firmware to hardware
    /// logging instead of losing the node).
    ModeSwitch {
        /// Observed CEs per epoch that trigger the switch.
        ce_per_epoch: u64,
        /// Mode to switch the node to.
        to: LoggingMode,
    },
}

impl PolicySpec {
    /// The spec-file name of this policy.
    pub fn name(&self) -> &'static str {
        match self {
            PolicySpec::Static => "static",
            PolicySpec::ThresholdOffline { .. } => "threshold_offline",
            PolicySpec::ModeSwitch { .. } => "mode_switch",
        }
    }
}

/// A complete fleet scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSpec {
    /// Base seed; every node draw and job replica derives from it via
    /// stable coordinates (`cesim_core::seed`).
    pub seed: u64,
    /// Hard cap on simulated epochs (jobs still queued or running when
    /// it is reached are reported as incomplete).
    pub max_epochs: u32,
    /// The cluster.
    pub cluster: ClusterSpec,
    /// The job mix.
    pub jobs: Vec<JobSpec>,
    /// Placement policy.
    pub placement: Placement,
    /// Mitigation policy.
    pub policy: PolicySpec,
}

impl FleetSpec {
    /// Total jobs the mix expands to.
    pub fn total_jobs(&self) -> usize {
        self.jobs.iter().map(|j| j.count as usize).sum()
    }
}

fn obj<'v>(v: &'v JsonValue, what: &str) -> Result<&'v BTreeMap<String, JsonValue>, String> {
    v.as_object()
        .ok_or_else(|| format!("{what} must be a JSON object"))
}

fn reject_unknown(
    obj: &BTreeMap<String, JsonValue>,
    what: &str,
    known: &[&str],
) -> Result<(), String> {
    for key in obj.keys() {
        if !known.contains(&key.as_str()) {
            return Err(format!(
                "{what}: unknown field {key:?} (expected one of: {})",
                known.join(", ")
            ));
        }
    }
    Ok(())
}

fn field_u64(obj: &BTreeMap<String, JsonValue>, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("{key} must be a non-negative integer")),
    }
}

fn field_f64(obj: &BTreeMap<String, JsonValue>, key: &str, default: f64) -> Result<f64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| format!("{key} must be a number")),
    }
}

/// Parse a duration field: a `parse_span` string (`"10ms"`) or plain
/// seconds.
fn parse_dur(v: &JsonValue, what: &str) -> Result<Span, String> {
    if let Some(s) = v.as_str() {
        return parse_span(s).map_err(|e| format!("{what}: {e}"));
    }
    if let Some(secs) = v.as_f64() {
        if !secs.is_finite() || secs <= 0.0 {
            return Err(format!("{what}: seconds must be positive"));
        }
        return Ok(Span::from_secs_f64(secs));
    }
    Err(format!("{what} must be a duration string or seconds"))
}

fn parse_mode(v: &JsonValue, what: &str) -> Result<LoggingMode, String> {
    let s = v
        .as_str()
        .ok_or_else(|| format!("{what} must be a string"))?;
    match s.to_ascii_lowercase().as_str() {
        "hw" | "hardware" | "hardware-only" => Ok(LoggingMode::HardwareOnly),
        "sw" | "software" | "os" => Ok(LoggingMode::Software),
        "fw" | "firmware" => Ok(LoggingMode::Firmware),
        other => parse_span(other).map(LoggingMode::Custom).map_err(|_| {
            format!(
                "{what} must be \"hw\", \"sw\", \"fw\", or a per-event duration like \"7ms\" (got {s:?})"
            )
        }),
    }
}

fn parse_mtbce_dist(v: &JsonValue) -> Result<MtbceDist, String> {
    let o = obj(v, "cluster.mtbce")?;
    let dist = o
        .get("dist")
        .ok_or_else(|| "cluster.mtbce: missing field \"dist\"".to_string())?
        .as_str()
        .ok_or_else(|| "cluster.mtbce.dist must be a string".to_string())?;
    match dist {
        "uniform" => {
            reject_unknown(o, "cluster.mtbce", &["dist", "min", "max"])?;
            let min = parse_dur(
                o.get("min")
                    .ok_or_else(|| "cluster.mtbce: uniform needs \"min\"".to_string())?,
                "cluster.mtbce.min",
            )?;
            let max = parse_dur(
                o.get("max")
                    .ok_or_else(|| "cluster.mtbce: uniform needs \"max\"".to_string())?,
                "cluster.mtbce.max",
            )?;
            if min > max {
                return Err("cluster.mtbce: min must not exceed max".into());
            }
            Ok(MtbceDist::Uniform { min, max })
        }
        "lognormal" => {
            reject_unknown(o, "cluster.mtbce", &["dist", "median", "sigma"])?;
            let median = parse_dur(
                o.get("median")
                    .ok_or_else(|| "cluster.mtbce: lognormal needs \"median\"".to_string())?,
                "cluster.mtbce.median",
            )?;
            let sigma = field_f64(o, "sigma", 0.5)?;
            if !sigma.is_finite() || sigma < 0.0 {
                return Err("cluster.mtbce.sigma must be non-negative".into());
            }
            Ok(MtbceDist::LogNormal { median, sigma })
        }
        "buckets" => {
            reject_unknown(o, "cluster.mtbce", &["dist", "buckets"])?;
            let arr = o
                .get("buckets")
                .ok_or_else(|| "cluster.mtbce: buckets needs \"buckets\"".to_string())?
                .as_array()
                .ok_or_else(|| "cluster.mtbce.buckets must be an array".to_string())?;
            if arr.is_empty() {
                return Err("cluster.mtbce.buckets must not be empty".into());
            }
            let mut buckets = Vec::with_capacity(arr.len());
            for (i, b) in arr.iter().enumerate() {
                let bo = obj(b, &format!("cluster.mtbce.buckets[{i}]"))?;
                reject_unknown(
                    bo,
                    &format!("cluster.mtbce.buckets[{i}]"),
                    &["mtbce", "weight"],
                )?;
                let mtbce = parse_dur(
                    bo.get("mtbce").ok_or_else(|| {
                        format!("cluster.mtbce.buckets[{i}]: missing field \"mtbce\"")
                    })?,
                    &format!("cluster.mtbce.buckets[{i}].mtbce"),
                )?;
                let weight = field_f64(bo, "weight", 1.0)?;
                if !weight.is_finite() || weight <= 0.0 {
                    return Err(format!(
                        "cluster.mtbce.buckets[{i}].weight must be positive"
                    ));
                }
                buckets.push((mtbce, weight));
            }
            Ok(MtbceDist::Buckets(buckets))
        }
        other => Err(format!(
            "cluster.mtbce.dist must be \"uniform\", \"lognormal\" or \"buckets\" (got {other:?})"
        )),
    }
}

fn parse_cluster(v: &JsonValue) -> Result<ClusterSpec, String> {
    let o = obj(v, "cluster")?;
    reject_unknown(
        o,
        "cluster",
        &["nodes", "mode", "mtbce", "hot_fraction", "hot_scale"],
    )?;
    let nodes = field_u64(o, "nodes", 16)? as usize;
    if nodes == 0 {
        return Err("cluster.nodes must be at least 1".into());
    }
    let mode = match o.get("mode") {
        Some(v) => parse_mode(v, "cluster.mode")?,
        None => LoggingMode::Software,
    };
    let mtbce = parse_mtbce_dist(
        o.get("mtbce")
            .ok_or_else(|| "cluster: missing field \"mtbce\"".to_string())?,
    )?;
    let hot_fraction = field_f64(o, "hot_fraction", 0.0)?;
    if !(0.0..=1.0).contains(&hot_fraction) {
        return Err("cluster.hot_fraction must be in 0..=1".into());
    }
    let hot_scale = field_f64(o, "hot_scale", 1.0)?;
    if !hot_scale.is_finite() || hot_scale <= 0.0 {
        return Err("cluster.hot_scale must be positive".into());
    }
    Ok(ClusterSpec {
        nodes,
        mode,
        mtbce,
        hot_fraction,
        hot_scale,
    })
}

fn parse_job(v: &JsonValue, i: usize) -> Result<JobSpec, String> {
    let what = format!("jobs[{i}]");
    let o = obj(v, &what)?;
    reject_unknown(o, &what, &["app", "nodes", "count", "steps", "epochs"])?;
    let app_v = o
        .get("app")
        .ok_or_else(|| format!("{what}: missing field \"app\""))?;
    let name = app_v
        .as_str()
        .ok_or_else(|| format!("{what}.app must be a string"))?;
    let app = AppId::parse(name).ok_or_else(|| {
        let names: Vec<&str> = AppId::all().into_iter().map(|a| a.name()).collect();
        format!(
            "{what}.app: unknown app {name:?} (expected one of: {})",
            names.join(", ")
        )
    })?;
    let nodes = field_u64(o, "nodes", 8)? as usize;
    if nodes == 0 {
        return Err(format!("{what}.nodes must be at least 1"));
    }
    let count = field_u64(o, "count", 1)? as u32;
    if count == 0 {
        return Err(format!("{what}.count must be at least 1"));
    }
    let steps = match o.get("steps") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .filter(|&s| s >= 1)
                .ok_or_else(|| format!("{what}.steps must be a positive integer"))?
                as usize,
        ),
    };
    let epochs = field_u64(o, "epochs", 1)? as u32;
    if epochs == 0 {
        return Err(format!("{what}.epochs must be at least 1"));
    }
    Ok(JobSpec {
        app,
        nodes,
        count,
        steps,
        epochs,
    })
}

fn parse_placement(v: &JsonValue) -> Result<Placement, String> {
    let s = v
        .as_str()
        .ok_or_else(|| "placement must be a string".to_string())?;
    match s {
        "packed" => Ok(Placement::Packed),
        "spread" => Ok(Placement::Spread),
        "random" => Ok(Placement::Random),
        other => Err(format!(
            "placement must be \"packed\", \"spread\" or \"random\" (got {other:?})"
        )),
    }
}

fn parse_policy(v: &JsonValue) -> Result<PolicySpec, String> {
    let o = obj(v, "policy")?;
    let kind = o
        .get("kind")
        .ok_or_else(|| "policy: missing field \"kind\"".to_string())?
        .as_str()
        .ok_or_else(|| "policy.kind must be a string".to_string())?;
    match kind {
        "static" => {
            reject_unknown(o, "policy", &["kind"])?;
            Ok(PolicySpec::Static)
        }
        "threshold_offline" => {
            reject_unknown(o, "policy", &["kind", "ce_per_epoch", "max_offline_fraction"])?;
            let ce_per_epoch = field_u64(o, "ce_per_epoch", 1000)?;
            if ce_per_epoch == 0 {
                return Err("policy.ce_per_epoch must be at least 1".into());
            }
            let max_offline_fraction = field_f64(o, "max_offline_fraction", 0.25)?;
            if !(0.0..=1.0).contains(&max_offline_fraction) {
                return Err("policy.max_offline_fraction must be in 0..=1".into());
            }
            Ok(PolicySpec::ThresholdOffline {
                ce_per_epoch,
                max_offline_fraction,
            })
        }
        "mode_switch" => {
            reject_unknown(o, "policy", &["kind", "ce_per_epoch", "to_mode"])?;
            let ce_per_epoch = field_u64(o, "ce_per_epoch", 1000)?;
            if ce_per_epoch == 0 {
                return Err("policy.ce_per_epoch must be at least 1".into());
            }
            let to = match o.get("to_mode") {
                Some(v) => parse_mode(v, "policy.to_mode")?,
                None => LoggingMode::HardwareOnly,
            };
            Ok(PolicySpec::ModeSwitch { ce_per_epoch, to })
        }
        other => Err(format!(
            "policy.kind must be \"static\", \"threshold_offline\" or \"mode_switch\" (got {other:?})"
        )),
    }
}

impl FleetSpec {
    const KNOWN: &'static [&'static str] =
        &["seed", "epochs", "cluster", "jobs", "placement", "policy"];

    /// Parse and validate a fleet spec from its JSON form.
    pub fn from_json(v: &JsonValue) -> Result<FleetSpec, String> {
        let o = obj(v, "fleet spec")?;
        reject_unknown(o, "fleet spec", Self::KNOWN)?;
        let seed = field_u64(o, "seed", 0xF1EE7)?;
        let max_epochs = field_u64(o, "epochs", u64::from(DEFAULT_MAX_EPOCHS))? as u32;
        if max_epochs == 0 {
            return Err("epochs must be at least 1".into());
        }
        let cluster = parse_cluster(
            o.get("cluster")
                .ok_or_else(|| "fleet spec: missing field \"cluster\"".to_string())?,
        )?;
        let jobs_v = o
            .get("jobs")
            .ok_or_else(|| "fleet spec: missing field \"jobs\"".to_string())?
            .as_array()
            .ok_or_else(|| "jobs must be an array".to_string())?;
        if jobs_v.is_empty() {
            return Err("jobs must not be empty".into());
        }
        let jobs = jobs_v
            .iter()
            .enumerate()
            .map(|(i, v)| parse_job(v, i))
            .collect::<Result<Vec<_>, _>>()?;
        for (i, j) in jobs.iter().enumerate() {
            if j.nodes > cluster.nodes {
                return Err(format!(
                    "jobs[{i}] needs {} nodes but the cluster has {}",
                    j.nodes, cluster.nodes
                ));
            }
        }
        let placement = match o.get("placement") {
            Some(v) => parse_placement(v)?,
            None => Placement::Packed,
        };
        let policy = match o.get("policy") {
            Some(v) => parse_policy(v)?,
            None => PolicySpec::Static,
        };
        Ok(FleetSpec {
            seed,
            max_epochs,
            cluster,
            jobs,
            placement,
            policy,
        })
    }

    /// Parse a spec from JSON text (convenience for the CLI).
    pub fn parse(text: &str) -> Result<FleetSpec, String> {
        let v = JsonValue::parse(text).map_err(|e| format!("fleet spec: {e}"))?;
        FleetSpec::from_json(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<FleetSpec, String> {
        FleetSpec::parse(text)
    }

    const MINIMAL: &str = r#"{
        "cluster": {"nodes": 4, "mtbce": {"dist": "uniform", "min": "5ms", "max": "20ms"}},
        "jobs": [{"app": "LULESH", "nodes": 2}]
    }"#;

    #[test]
    fn minimal_spec_fills_defaults() {
        let s = parse(MINIMAL).unwrap();
        assert_eq!(s.seed, 0xF1EE7);
        assert_eq!(s.max_epochs, DEFAULT_MAX_EPOCHS);
        assert_eq!(s.cluster.nodes, 4);
        assert_eq!(s.cluster.mode, LoggingMode::Software);
        assert_eq!(s.cluster.hot_fraction, 0.0);
        assert_eq!(s.placement, Placement::Packed);
        assert_eq!(s.policy, PolicySpec::Static);
        assert_eq!(s.total_jobs(), 1);
        assert_eq!(s.jobs[0].epochs, 1);
    }

    #[test]
    fn full_spec_round_trips_fields() {
        let s = parse(
            r#"{
            "seed": 7, "epochs": 12, "placement": "spread",
            "cluster": {
                "nodes": 32, "mode": "fw",
                "mtbce": {"dist": "lognormal", "median": "10ms", "sigma": 0.8},
                "hot_fraction": 0.1, "hot_scale": 0.2
            },
            "jobs": [
                {"app": "HPCG", "nodes": 8, "count": 3, "steps": 5, "epochs": 2},
                {"app": "LULESH", "nodes": 4}
            ],
            "policy": {"kind": "threshold_offline", "ce_per_epoch": 500, "max_offline_fraction": 0.5}
        }"#,
        )
        .unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.max_epochs, 12);
        assert_eq!(s.cluster.mode, LoggingMode::Firmware);
        assert_eq!(
            s.cluster.mtbce,
            MtbceDist::LogNormal {
                median: Span::from_ms(10),
                sigma: 0.8
            }
        );
        assert_eq!(s.total_jobs(), 4);
        assert_eq!(
            s.policy,
            PolicySpec::ThresholdOffline {
                ce_per_epoch: 500,
                max_offline_fraction: 0.5
            }
        );
        assert_eq!(s.policy.name(), "threshold_offline");
    }

    #[test]
    fn buckets_and_mode_switch_parse() {
        let s = parse(
            r#"{
            "cluster": {"nodes": 8, "mtbce": {"dist": "buckets", "buckets": [
                {"mtbce": "1h", "weight": 9.0}, {"mtbce": "10ms", "weight": 1.0}
            ]}},
            "jobs": [{"app": "miniFE", "nodes": 2}],
            "policy": {"kind": "mode_switch", "ce_per_epoch": 100, "to_mode": "hw"}
        }"#,
        )
        .unwrap();
        assert_eq!(
            s.cluster.mtbce,
            MtbceDist::Buckets(vec![(Span::from_secs(3600), 9.0), (Span::from_ms(10), 1.0)])
        );
        assert_eq!(
            s.policy,
            PolicySpec::ModeSwitch {
                ce_per_epoch: 100,
                to: LoggingMode::HardwareOnly
            }
        );
    }

    #[test]
    fn errors_name_the_offending_field() {
        for (body, needle) in [
            (r#"{"jobs": [{"app":"HPCG"}]}"#, "cluster"),
            (r#"[1,2]"#, "must be a JSON object"),
            (
                r#"{"cluster": {"nodes": 4, "mtbce": {"dist": "zipf"}}, "jobs": [{"app":"HPCG","nodes":2}]}"#,
                "zipf",
            ),
            (
                r#"{"cluster": {"nodes": 4, "mtbce": {"dist":"uniform","min":"5ms","max":"1ms"}}, "jobs": [{"app":"HPCG","nodes":2}]}"#,
                "min must not exceed max",
            ),
            (
                r#"{"cluster": {"nodes": 2, "mtbce": {"dist":"uniform","min":"1ms","max":"2ms"}}, "jobs": [{"app":"HPCG","nodes":4}]}"#,
                "needs 4 nodes",
            ),
            (
                r#"{"cluster": {"nodes": 4, "mtbce": {"dist":"uniform","min":"1ms","max":"2ms"}}, "jobs": [{"app":"nope","nodes":2}]}"#,
                "unknown app",
            ),
            (
                r#"{"cluster": {"nodes": 4, "mtbce": {"dist":"uniform","min":"1ms","max":"2ms"}}, "jobs": [{"app":"HPCG","nodes":2}], "polcy": {}}"#,
                "polcy",
            ),
            (
                r#"{"cluster": {"nodes": 4, "mtbce": {"dist":"uniform","min":"1ms","max":"2ms"}}, "jobs": [{"app":"HPCG","nodes":2}], "policy": {"kind":"threshold_offline","max_offline_fraction":7}}"#,
                "max_offline_fraction",
            ),
            (r#"{"cluster""#, "fleet spec:"),
        ] {
            let err = parse(body).unwrap_err();
            assert!(
                err.contains(needle),
                "error for {body} must mention {needle:?}, got: {err}"
            );
        }
    }
}
