//! `POST /v1/fleet` request mapping.
//!
//! Lives here (not in `cesim_core::service`) because the fleet engine
//! depends on core; the daemon composes both. Follows the same
//! contract as the other endpoints: a response is a pure function of
//! the request (so the daemon's response cache is sound), bad requests
//! name the offending field, and phase spans (`fleet_place` /
//! `fleet_run` / `fleet_policy`) land in the process-wide telemetry
//! registry → `cesim_phase_seconds` on `/metrics`.

use crate::engine::run_fleet;
use crate::report::response_json;
use crate::spec::FleetSpec;
use cesim_core::{ServiceError, ServiceState};
use cesim_json::JsonValue;

/// Upper bound on cluster nodes per request — a fleet request fans out
/// one engine run per job slice, so these caps keep one request from
/// monopolizing the daemon.
pub const MAX_FLEET_NODES: usize = 1024;
/// Upper bound on total jobs per request.
pub const MAX_FLEET_JOBS: usize = 512;
/// Upper bound on epochs per request.
pub const MAX_FLEET_EPOCHS: u32 = 256;

/// A validated `POST /v1/fleet` body.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetRequest {
    /// The validated scenario.
    pub spec: FleetSpec,
}

impl FleetRequest {
    /// Validate a parsed `POST /v1/fleet` body: the spec grammar plus
    /// serving-side resource caps.
    pub fn from_json(v: &JsonValue) -> Result<Self, ServiceError> {
        let spec = FleetSpec::from_json(v).map_err(ServiceError::BadRequest)?;
        if spec.cluster.nodes > MAX_FLEET_NODES {
            return Err(ServiceError::BadRequest(format!(
                "cluster.nodes must be at most {MAX_FLEET_NODES} per request"
            )));
        }
        if spec.total_jobs() > MAX_FLEET_JOBS {
            return Err(ServiceError::BadRequest(format!(
                "job mix expands to {} jobs; at most {MAX_FLEET_JOBS} per request",
                spec.total_jobs()
            )));
        }
        if spec.max_epochs > MAX_FLEET_EPOCHS {
            return Err(ServiceError::BadRequest(format!(
                "epochs must be at most {MAX_FLEET_EPOCHS} per request"
            )));
        }
        Ok(FleetRequest { spec })
    }
}

/// Run one fleet request against the daemon's shared schedule cache and
/// render the response body.
pub fn handle_fleet(state: &ServiceState, req: &FleetRequest) -> Result<JsonValue, ServiceError> {
    let out = run_fleet(&req.spec, &state.schedules).map_err(ServiceError::Internal)?;
    Ok(response_json(&out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> JsonValue {
        JsonValue::parse(text).expect("test JSON is well-formed")
    }

    const SMALL: &str = r#"{
        "seed": 3, "epochs": 4,
        "cluster": {"nodes": 6, "mode": "sw",
                    "mtbce": {"dist": "uniform", "min": "8ms", "max": "15ms"}},
        "jobs": [{"app": "miniFE", "nodes": 3, "count": 2, "steps": 2}]
    }"#;

    #[test]
    fn caps_are_enforced() {
        let too_many_nodes = r#"{
            "cluster": {"nodes": 2048, "mtbce": {"dist": "uniform", "min": "1s", "max": "2s"}},
            "jobs": [{"app": "HPCG", "nodes": 2}]
        }"#;
        let err = FleetRequest::from_json(&parse(too_many_nodes)).unwrap_err();
        assert!(matches!(err, ServiceError::BadRequest(ref m) if m.contains("1024")));

        let too_many_jobs = r#"{
            "cluster": {"nodes": 8, "mtbce": {"dist": "uniform", "min": "1s", "max": "2s"}},
            "jobs": [{"app": "HPCG", "nodes": 2, "count": 1000}]
        }"#;
        let err = FleetRequest::from_json(&parse(too_many_jobs)).unwrap_err();
        assert!(matches!(err, ServiceError::BadRequest(ref m) if m.contains("512")));

        let too_many_epochs = r#"{
            "epochs": 10000,
            "cluster": {"nodes": 8, "mtbce": {"dist": "uniform", "min": "1s", "max": "2s"}},
            "jobs": [{"app": "HPCG", "nodes": 2}]
        }"#;
        let err = FleetRequest::from_json(&parse(too_many_epochs)).unwrap_err();
        assert!(matches!(err, ServiceError::BadRequest(ref m) if m.contains("256")));
    }

    #[test]
    fn spec_errors_surface_as_bad_requests() {
        let err = FleetRequest::from_json(&parse(r#"{"jobs": []}"#)).unwrap_err();
        assert!(matches!(err, ServiceError::BadRequest(_)));
    }

    #[test]
    fn handle_fleet_is_deterministic_and_shares_the_cache() {
        let state = ServiceState::new(8, 8);
        let req = FleetRequest::from_json(&parse(SMALL)).unwrap();
        let a = handle_fleet(&state, &req).unwrap().to_json();
        let b = handle_fleet(&state, &req).unwrap().to_json();
        assert_eq!(a, b, "same request → byte-identical body");
        assert!(a.contains("\"slowdown_p99_pct\""));
        assert!(a.contains("\"jobs\""));
        // Second run compiled nothing new.
        assert_eq!(state.schedules.misses(), 1);
        assert!(state.schedules.hits() > 0);
    }
}
