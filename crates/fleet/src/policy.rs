//! CE-mitigation policies.
//!
//! The BSC field study (arXiv 2407.16377) shows operators *act* on
//! observed CE streams rather than running a fixed configuration: pages
//! are offlined, logging verbosity is changed, noisy DIMMs are drained.
//! A [`MitigationPolicy`] models that feedback loop at node granularity:
//! between fleet epochs it sees every node's observed CE counts and may
//! offline nodes or switch their logging modes. The fleet engine applies
//! the returned actions, re-queuing any jobs displaced from offlined
//! nodes.
//!
//! Policies only see *observations* (CE counts the simulated runs
//! produced), never the ground-truth MTBCE a node drew — the same
//! information barrier a real operator faces.

use crate::cluster::Node;
use crate::spec::PolicySpec;
use cesim_model::LoggingMode;

/// One mitigation action, applied between epochs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Take a node out of service; jobs running on it are re-queued.
    Offline {
        /// Node to remove.
        node: usize,
    },
    /// Switch a node's logging mode for all subsequent epochs.
    SetMode {
        /// Node to reconfigure.
        node: usize,
        /// New logging mode.
        mode: LoggingMode,
    },
}

/// A mitigation policy: reacts to per-node CE observations between
/// epochs.
pub trait MitigationPolicy {
    /// Stable policy name (appears in reports and CSV columns).
    fn name(&self) -> &'static str;

    /// Decide actions after `epoch` finished. `nodes` carries per-node
    /// observations (`ce_last_epoch`, `ce_total`, current mode/offline
    /// state). Must be deterministic: same observations → same actions.
    fn react(&mut self, epoch: u32, nodes: &[Node]) -> Vec<Action>;
}

/// Never reacts — the paper's fixed-configuration setting.
pub struct Static;

impl MitigationPolicy for Static {
    fn name(&self) -> &'static str {
        "static"
    }

    fn react(&mut self, _epoch: u32, _nodes: &[Node]) -> Vec<Action> {
        Vec::new()
    }
}

/// Offlines nodes whose per-epoch CE count crosses a threshold, up to a
/// capacity cap.
pub struct ThresholdOffline {
    threshold: u64,
    /// Most nodes the policy may ever offline (capacity cost cap).
    max_offline: usize,
}

impl ThresholdOffline {
    /// A policy offlining nodes at `threshold` CEs/epoch, never removing
    /// more than `max_offline_fraction` of the `cluster_nodes`.
    pub fn new(threshold: u64, max_offline_fraction: f64, cluster_nodes: usize) -> Self {
        ThresholdOffline {
            threshold,
            max_offline: (cluster_nodes as f64 * max_offline_fraction).floor() as usize,
        }
    }
}

impl MitigationPolicy for ThresholdOffline {
    fn name(&self) -> &'static str {
        "threshold_offline"
    }

    fn react(&mut self, _epoch: u32, nodes: &[Node]) -> Vec<Action> {
        let already_off = nodes.iter().filter(|n| n.offline).count();
        let mut budget = self.max_offline.saturating_sub(already_off);
        // Worst offenders first; ties broken by node id so the action
        // list is a pure function of the observations.
        let mut candidates: Vec<&Node> = nodes
            .iter()
            .filter(|n| !n.offline && n.ce_last_epoch >= self.threshold)
            .collect();
        candidates.sort_by_key(|n| (std::cmp::Reverse(n.ce_last_epoch), n.id));
        let mut actions = Vec::new();
        for n in candidates {
            if budget == 0 {
                break;
            }
            actions.push(Action::Offline { node: n.id });
            budget -= 1;
        }
        actions
    }
}

/// Switches a node's logging mode once its per-epoch CE count crosses a
/// threshold — trading log fidelity for retained capacity instead of
/// draining the node.
pub struct LoggingModeSwitch {
    threshold: u64,
    to: LoggingMode,
}

impl LoggingModeSwitch {
    /// A policy switching nodes to `to` at `threshold` CEs/epoch.
    pub fn new(threshold: u64, to: LoggingMode) -> Self {
        LoggingModeSwitch { threshold, to }
    }
}

impl MitigationPolicy for LoggingModeSwitch {
    fn name(&self) -> &'static str {
        "mode_switch"
    }

    fn react(&mut self, _epoch: u32, nodes: &[Node]) -> Vec<Action> {
        nodes
            .iter()
            .filter(|n| !n.offline && n.mode != self.to && n.ce_last_epoch >= self.threshold)
            .map(|n| Action::SetMode {
                node: n.id,
                mode: self.to,
            })
            .collect()
    }
}

/// Instantiate the policy a spec asks for.
pub fn build_policy(spec: &PolicySpec, cluster_nodes: usize) -> Box<dyn MitigationPolicy> {
    match spec {
        PolicySpec::Static => Box::new(Static),
        PolicySpec::ThresholdOffline {
            ce_per_epoch,
            max_offline_fraction,
        } => Box::new(ThresholdOffline::new(
            *ce_per_epoch,
            *max_offline_fraction,
            cluster_nodes,
        )),
        PolicySpec::ModeSwitch { ce_per_epoch, to } => {
            Box::new(LoggingModeSwitch::new(*ce_per_epoch, *to))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesim_model::Span;

    fn node(id: usize, ce_last: u64) -> Node {
        Node {
            id,
            mtbce: Span::from_ms(10),
            mode: LoggingMode::Software,
            initial_mode: LoggingMode::Software,
            hot: false,
            offline: false,
            offline_epoch: None,
            ce_total: ce_last,
            ce_last_epoch: ce_last,
            busy_epochs: 0,
        }
    }

    #[test]
    fn static_never_acts() {
        let nodes = vec![node(0, u64::MAX)];
        assert!(Static.react(0, &nodes).is_empty());
    }

    #[test]
    fn threshold_offline_picks_worst_first_and_respects_cap() {
        // Cap: 25% of 8 nodes = 2 offlines, ever.
        let mut p = ThresholdOffline::new(100, 0.25, 8);
        let mut nodes: Vec<Node> = (0..8).map(|i| node(i, 0)).collect();
        nodes[3].ce_last_epoch = 500;
        nodes[5].ce_last_epoch = 900;
        nodes[6].ce_last_epoch = 120;
        let actions = p.react(0, &nodes);
        assert_eq!(
            actions,
            vec![Action::Offline { node: 5 }, Action::Offline { node: 3 }],
            "worst offender first, capped at 2"
        );
        // With both slots used, later epochs cannot offline more.
        nodes[5].offline = true;
        nodes[3].offline = true;
        let actions = p.react(1, &nodes);
        assert!(actions.is_empty(), "budget exhausted: {actions:?}");
    }

    #[test]
    fn threshold_offline_tie_breaks_by_node_id() {
        let mut p = ThresholdOffline::new(100, 1.0, 4);
        let mut nodes: Vec<Node> = (0..4).map(|i| node(i, 0)).collect();
        nodes[2].ce_last_epoch = 300;
        nodes[1].ce_last_epoch = 300;
        let actions = p.react(0, &nodes);
        assert_eq!(
            actions,
            vec![Action::Offline { node: 1 }, Action::Offline { node: 2 }]
        );
    }

    #[test]
    fn mode_switch_skips_already_switched_nodes() {
        let mut p = LoggingModeSwitch::new(100, LoggingMode::HardwareOnly);
        let mut nodes: Vec<Node> = (0..3).map(|i| node(i, 200)).collect();
        nodes[1].mode = LoggingMode::HardwareOnly;
        nodes[2].ce_last_epoch = 50;
        let actions = p.react(0, &nodes);
        assert_eq!(
            actions,
            vec![Action::SetMode {
                node: 0,
                mode: LoggingMode::HardwareOnly
            }]
        );
    }

    #[test]
    fn build_policy_maps_spec_kinds() {
        assert_eq!(build_policy(&PolicySpec::Static, 4).name(), "static");
        assert_eq!(
            build_policy(
                &PolicySpec::ThresholdOffline {
                    ce_per_epoch: 10,
                    max_offline_fraction: 0.5
                },
                4
            )
            .name(),
            "threshold_offline"
        );
        assert_eq!(
            build_policy(
                &PolicySpec::ModeSwitch {
                    ce_per_epoch: 10,
                    to: LoggingMode::Firmware
                },
                4
            )
            .name(),
            "mode_switch"
        );
    }
}
