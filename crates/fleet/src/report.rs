//! Fleet reports: per-job CSV (the slowdown distribution), per-node
//! CSV, per-epoch JSONL, and the summary JSON the daemon returns.
//!
//! Every rendering here is a pure function of a [`FleetOutcome`], which
//! is itself a pure function of the spec — so all of these artifacts
//! are byte-identical across `--threads N` (CI diffs them).

use crate::engine::{EpochRecord, FleetOutcome, JobOutcome};
use cesim_json::JsonValue;
use std::fmt::Write as _;

fn opt_u32(v: Option<u32>) -> String {
    v.map_or_else(|| "-".to_string(), |x| x.to_string())
}

fn opt_pct(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.4}"))
}

/// The per-job slowdown-distribution CSV (one row per job, ascending
/// id). This is the artifact the acceptance criteria diff across thread
/// counts.
pub fn jobs_csv(out: &FleetOutcome) -> String {
    let mut s = String::from(
        "job,app,nodes,policy,placement,start_epoch,end_epoch,displaced,completed,diverged,ce_events,baseline_s,finish_s,slowdown_pct\n",
    );
    for j in &out.jobs {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.6},{}",
            j.id,
            j.app.name(),
            j.nodes,
            out.policy,
            out.placement,
            opt_u32(j.start_epoch),
            opt_u32(j.end_epoch),
            j.displaced,
            j.completed,
            j.diverged,
            j.ce_events,
            j.baseline.as_secs_f64(),
            j.finish.as_secs_f64(),
            opt_pct(j.slowdown_pct),
        );
    }
    s
}

/// The per-node CSV: drawn rates, hot-spot membership, mode changes,
/// CE/offline accounting.
pub fn nodes_csv(out: &FleetOutcome) -> String {
    let mut s = String::from(
        "node,mtbce_s,hot,initial_mode,final_mode,offline_epoch,busy_epochs,ce_total\n",
    );
    for n in &out.nodes {
        let _ = writeln!(
            s,
            "{},{:.6},{},{},{},{},{},{}",
            n.id,
            n.mtbce.as_secs_f64(),
            n.hot,
            n.initial_mode.short_label(),
            n.mode.short_label(),
            opt_u32(n.offline_epoch),
            n.busy_epochs,
            n.ce_total,
        );
    }
    s
}

fn epoch_json(e: &EpochRecord) -> JsonValue {
    JsonValue::object([
        ("epoch", e.epoch.into()),
        ("queued", e.queued.into()),
        ("running", e.running.into()),
        ("completed", e.completed.into()),
        ("displaced_total", e.displaced_total.into()),
        ("offline_nodes", e.offline_nodes.into()),
        ("ce_events", e.ce_events.into()),
        (
            "actions",
            JsonValue::Array(e.actions.iter().map(|a| a.as_str().into()).collect()),
        ),
    ])
}

/// Fleet-level summary (percentiles, policy cost, totals) — the core of
/// the `/v1/fleet` response and the JSONL trailer.
pub fn summary_json(out: &FleetOutcome) -> JsonValue {
    let pct = |q: f64| {
        out.slowdown_percentile(q)
            .map_or(JsonValue::Null, Into::into)
    };
    JsonValue::object([
        ("policy", out.policy.as_str().into()),
        ("placement", out.placement.as_str().into()),
        ("seed", out.seed.into()),
        ("jobs", out.jobs.len().into()),
        ("completed", out.completed_jobs().into()),
        ("displaced", out.displaced_total().into()),
        (
            "diverged",
            out.jobs.iter().filter(|j| j.diverged).count().into(),
        ),
        ("epochs", out.epochs.len().into()),
        ("nodes", out.nodes.len().into()),
        (
            "offline_nodes",
            out.nodes.iter().filter(|n| n.offline).count().into(),
        ),
        ("offline_node_epochs", out.offline_node_epochs.into()),
        ("ce_events", out.total_ce_events().into()),
        ("slowdown_p50_pct", pct(50.0)),
        ("slowdown_p90_pct", pct(90.0)),
        ("slowdown_p99_pct", pct(99.0)),
        ("truncated", out.truncated.into()),
    ])
}

fn job_json(j: &JobOutcome) -> JsonValue {
    JsonValue::object([
        ("job", j.id.into()),
        ("app", j.app.name().into()),
        ("nodes", j.nodes.into()),
        (
            "start_epoch",
            j.start_epoch.map_or(JsonValue::Null, Into::into),
        ),
        ("end_epoch", j.end_epoch.map_or(JsonValue::Null, Into::into)),
        ("displaced", j.displaced.into()),
        ("completed", j.completed.into()),
        ("diverged", j.diverged.into()),
        ("ce_events", j.ce_events.into()),
        ("baseline_s", j.baseline.as_secs_f64().into()),
        ("finish_s", j.finish.as_secs_f64().into()),
        (
            "slowdown_pct",
            j.slowdown_pct.map_or(JsonValue::Null, Into::into),
        ),
    ])
}

/// Full response body for `POST /v1/fleet`: the summary plus per-job
/// rows.
pub fn response_json(out: &FleetOutcome) -> JsonValue {
    JsonValue::object([
        ("summary", summary_json(out)),
        (
            "jobs",
            JsonValue::Array(out.jobs.iter().map(job_json).collect()),
        ),
    ])
}

/// Per-epoch JSONL stream: one line per epoch, then a `summary` line.
pub fn epochs_jsonl(out: &FleetOutcome) -> String {
    let mut s = String::new();
    for e in &out.epochs {
        s.push_str(&epoch_json(e).to_json());
        s.push('\n');
    }
    s.push_str(&JsonValue::object([("summary", summary_json(out))]).to_json());
    s.push('\n');
    s
}

/// Human-readable summary table (stdout trailer of `cesim fleet`,
/// `#`-prefixed so the CSV stream stays machine-parseable).
pub fn summary_text(out: &FleetOutcome) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "# fleet: policy={} placement={} seed={}",
        out.policy, out.placement, out.seed
    );
    let _ = writeln!(
        s,
        "# jobs={} completed={} displaced={} diverged={} epochs={} truncated={}",
        out.jobs.len(),
        out.completed_jobs(),
        out.displaced_total(),
        out.jobs.iter().filter(|j| j.diverged).count(),
        out.epochs.len(),
        out.truncated,
    );
    let _ = writeln!(
        s,
        "# nodes={} offline={} offline_node_epochs={} ce_events={}",
        out.nodes.len(),
        out.nodes.iter().filter(|n| n.offline).count(),
        out.offline_node_epochs,
        out.total_ce_events(),
    );
    let _ = writeln!(
        s,
        "# slowdown_pct p50={} p90={} p99={}",
        opt_pct(out.slowdown_percentile(50.0)),
        opt_pct(out.slowdown_percentile(90.0)),
        opt_pct(out.slowdown_percentile(99.0)),
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_fleet;
    use crate::spec::FleetSpec;
    use cesim_core::ScheduleCache;

    fn outcome() -> FleetOutcome {
        let spec = FleetSpec::parse(
            r#"{
            "seed": 1, "epochs": 6,
            "cluster": {"nodes": 6, "mode": "sw",
                        "mtbce": {"dist": "uniform", "min": "8ms", "max": "15ms"}},
            "jobs": [{"app": "miniFE", "nodes": 3, "count": 2, "steps": 2}]
        }"#,
        )
        .unwrap();
        run_fleet(&spec, &ScheduleCache::new(4)).unwrap()
    }

    #[test]
    fn jobs_csv_has_one_row_per_job() {
        let out = outcome();
        let csv = jobs_csv(&out);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + out.jobs.len());
        assert!(lines[0].starts_with("job,app,nodes,policy"));
        assert!(lines[1].starts_with("0,miniFE,3,static,packed,"));
        // Every data row parses back to the right column count.
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols, "row {l:?}");
        }
    }

    #[test]
    fn nodes_csv_covers_the_cluster() {
        let out = outcome();
        let csv = nodes_csv(&out);
        assert_eq!(csv.lines().count(), 1 + out.nodes.len());
        assert!(csv.contains(",sw,sw,"), "modes rendered as short labels");
    }

    #[test]
    fn jsonl_lines_parse_and_end_with_summary() {
        let out = outcome();
        let jsonl = epochs_jsonl(&out);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), out.epochs.len() + 1);
        for l in &lines {
            cesim_json::JsonValue::parse(l).expect("every JSONL line parses");
        }
        let last = cesim_json::JsonValue::parse(lines[lines.len() - 1]).unwrap();
        assert!(last.get("summary").is_some());
    }

    #[test]
    fn summary_json_reports_percentiles() {
        let out = outcome();
        let s = summary_json(&out);
        assert_eq!(s.get("jobs").unwrap().as_u64(), Some(2));
        assert_eq!(s.get("completed").unwrap().as_u64(), Some(2));
        assert!(s.get("slowdown_p50_pct").unwrap().as_f64().is_some());
        assert!(s.get("slowdown_p99_pct").unwrap().as_f64().is_some());
        let resp = response_json(&out);
        assert_eq!(
            resp.get("jobs").unwrap().as_array().unwrap().len(),
            out.jobs.len()
        );
    }

    #[test]
    fn summary_text_is_hash_prefixed() {
        let out = outcome();
        for line in summary_text(&out).lines() {
            assert!(line.starts_with('#'), "summary line {line:?}");
        }
    }
}
