//! Compile-once / run-many schedule representation.
//!
//! The experiment layer sweeps the *same* application schedule across
//! many MTBCE × logging-mode cells with many replicas each. Before this
//! module existed, every replica paid `Simulator::new` again: per-rank
//! CSR dependent arrays, indegree vectors, `done` bitmaps and
//! match-queue maps were rebuilt and reallocated per run. The
//! [`CompiledSchedule`] is the immutable half of that work, built once
//! per `(app, ranks, workload)` and shared (via `Arc`) across the
//! baseline run, every replica, and every sweep cell; the mutable
//! per-run state lives in [`crate::sim::RunScratch`], which is reset in
//! place between runs instead of reallocated.
//!
//! Layout: a flat struct-of-arrays op table over the global op index
//! space `0..total_ops` (rank-major, see [`Schedule::flat_offsets`]) —
//! class / duration / peer / tag / bytes in parallel arrays — plus one
//! global CSR of dependency fan-out edges and the precomputed initial
//! indegrees and zero-indegree root set. This eliminates the per-`Op`
//! `Vec<OpId>` heap allocations of the pointer-y [`Schedule`] form and
//! gives the event loop cache-friendly sequential lookups.
//!
//! **Equivalence.** The compiled form is a pure re-layout: dependents
//! are recorded in the same order the legacy per-rank CSR build visited
//! them, and the root set preserves the legacy seeding order (rank-major,
//! then op order), so simulation results are bit-identical to the
//! rebuild-per-run path (`tests/compiled_equivalence.rs` property-checks
//! this over random DAGs including `MPI_ANY_SOURCE` and rendezvous).

use cesim_goal::{OpKind, Rank, Schedule, Tag};
use cesim_model::Span;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-unique compile counter backing [`CompiledSchedule::uid`].
static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// Operation class of a compiled op: the discriminant of [`OpKind`],
/// with the payload split into the parallel arrays of
/// [`CompiledSchedule`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum OpClass {
    /// Occupy the CPU for `dur[i]` of work.
    Calc,
    /// Transmit `bytes[i]` to rank `peer[i]` with `tag[i]`.
    Send,
    /// Receive from rank `peer[i]` (or any source if `peer[i]` is
    /// [`ANY_SOURCE`]) with `tag[i]`.
    Recv,
}

/// Sentinel in [`CompiledSchedule::peer`] for `MPI_ANY_SOURCE` receives
/// (a valid rank never reaches `u32::MAX`: ranks are dense indices).
pub(crate) const ANY_SOURCE: u32 = u32::MAX;

/// An immutable, flat, simulation-ready form of a [`Schedule`].
///
/// Build once with [`compile`](CompiledSchedule::compile), wrap in an
/// [`std::sync::Arc`], and share across runs: the baseline, every
/// perturbed replica, and every sweep cell that uses the same workload
/// scale. Run it with [`crate::simulate_compiled`] (pooled per-thread
/// scratch) or [`crate::Simulator::from_compiled`].
pub struct CompiledSchedule {
    /// Process-unique id of this compilation, used by
    /// [`crate::RunScratch`] to stamp (and cache) per-schedule dispatch
    /// plans across replica resets. Never reused within a process, so a
    /// stamp match guarantees the plan was built for this very table.
    pub(crate) uid: u64,
    /// `rank_off[r]..rank_off[r + 1]` is rank `r`'s slice of the flat op
    /// index space; `flat = rank_off[rank] + op`.
    pub(crate) rank_off: Vec<u32>,
    /// Op class, indexed by flat op id.
    pub(crate) class: Vec<OpClass>,
    /// Calc duration (zero for send/recv), indexed by flat op id.
    pub(crate) dur: Vec<Span>,
    /// Send destination / receive source ([`ANY_SOURCE`] = wildcard),
    /// indexed by flat op id; unused for calcs.
    pub(crate) peer: Vec<u32>,
    /// Message payload size, indexed by flat op id; unused for calcs.
    pub(crate) bytes: Vec<u64>,
    /// Message tag, indexed by flat op id; unused for calcs.
    pub(crate) tag: Vec<Tag>,
    /// Dependency fan-out CSR offsets over the flat op index space:
    /// completing flat op `f` enables `dep_tgt[dep_off[f]..dep_off[f+1]]`.
    pub(crate) dep_off: Vec<u32>,
    /// CSR targets as **rank-local** op ids (dependencies never cross
    /// ranks, so the rank is the completing op's rank).
    pub(crate) dep_tgt: Vec<u32>,
    /// Initial indegree of every flat op (its dependency count).
    pub(crate) indeg0: Vec<u32>,
    /// Zero-indegree `(rank, local op)` pairs in flat (= legacy seeding)
    /// order: the initial ready wavefront at `t = 0`.
    pub(crate) roots: Vec<(u32, u32)>,
}

impl CompiledSchedule {
    /// Compile `sched` into the flat run-many form.
    pub fn compile(sched: &Schedule) -> Self {
        let rank_off = sched.flat_offsets();
        let total = *rank_off.last().expect("offsets are never empty") as usize;

        let mut class = Vec::with_capacity(total);
        let mut dur = Vec::with_capacity(total);
        let mut peer = Vec::with_capacity(total);
        let mut bytes = Vec::with_capacity(total);
        let mut tag = Vec::with_capacity(total);
        let mut indeg0 = Vec::with_capacity(total);
        let mut roots = Vec::new();
        // Dependent counts per flat op, for the CSR offsets.
        let mut dep_cnt = vec![0u32; total];

        for (rank, op_id, op) in sched.iter_flat() {
            match op.kind {
                OpKind::Calc { dur: d } => {
                    class.push(OpClass::Calc);
                    dur.push(d);
                    peer.push(0);
                    bytes.push(0);
                    tag.push(Tag(0));
                }
                OpKind::Send {
                    dst,
                    bytes: b,
                    tag: t,
                } => {
                    class.push(OpClass::Send);
                    dur.push(Span::ZERO);
                    peer.push(dst.0);
                    bytes.push(b);
                    tag.push(t);
                }
                OpKind::Recv {
                    src,
                    bytes: b,
                    tag: t,
                } => {
                    class.push(OpClass::Recv);
                    dur.push(Span::ZERO);
                    peer.push(src.map_or(ANY_SOURCE, |r| r.0));
                    bytes.push(b);
                    tag.push(t);
                }
            }
            indeg0.push(op.deps.len() as u32);
            if op.deps.is_empty() {
                roots.push((rank.0, op_id.0));
            }
            let base = rank_off[rank.idx()] as usize;
            for d in &op.deps {
                dep_cnt[base + d.idx()] += 1;
            }
        }

        let mut dep_off = vec![0u32; total + 1];
        for f in 0..total {
            dep_off[f + 1] = dep_off[f] + dep_cnt[f];
        }
        let mut dep_tgt = vec![0u32; dep_off[total] as usize];
        let mut cursor = dep_off.clone();
        // Same visit order as the legacy per-rank CSR build: ops in
        // insertion order, each appending its own (local) id to every
        // dependency's fan-out list.
        for (rank, op_id, op) in sched.iter_flat() {
            let base = rank_off[rank.idx()] as usize;
            for d in &op.deps {
                let c = &mut cursor[base + d.idx()];
                dep_tgt[*c as usize] = op_id.0;
                *c += 1;
            }
        }

        CompiledSchedule {
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
            rank_off,
            class,
            dur,
            peer,
            bytes,
            tag,
            dep_off,
            dep_tgt,
            indeg0,
            roots,
        }
    }

    /// Number of ranks.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.rank_off.len() - 1
    }

    /// Total operation count over all ranks.
    #[inline]
    pub fn total_ops(&self) -> u64 {
        *self.rank_off.last().expect("offsets are never empty") as u64
    }

    /// Number of ops on `rank`.
    #[inline]
    pub fn ops_on(&self, rank: u32) -> usize {
        (self.rank_off[rank as usize + 1] - self.rank_off[rank as usize]) as usize
    }

    /// Total dependency edges.
    #[inline]
    pub fn total_deps(&self) -> u64 {
        self.dep_tgt.len() as u64
    }

    /// Flat index of `(rank, op)`.
    #[inline]
    pub(crate) fn flat(&self, rank: u32, op: u32) -> usize {
        self.rank_off[rank as usize] as usize + op as usize
    }

    /// Initial indegrees, indexed by flat op id (read-only view for
    /// equivalence checks and tooling).
    pub fn indeg0(&self) -> &[u32] {
        &self.indeg0
    }

    /// The zero-indegree `(rank, local op)` root set in rank-major
    /// seeding order.
    pub fn roots(&self) -> &[(u32, u32)] {
        &self.roots
    }

    /// Rank-local op ids enabled by the completion of flat op `f` (its
    /// CSR fan-out slice, in legacy visit order).
    pub fn dependents(&self, f: usize) -> &[u32] {
        &self.dep_tgt[self.dep_off[f] as usize..self.dep_off[f + 1] as usize]
    }

    /// Reconstruct the [`OpKind`] of a flat op (diagnostics: deadlock
    /// reports and equivalence checks; the hot loop reads the parallel
    /// arrays directly).
    pub fn op_kind(&self, f: usize) -> OpKind {
        match self.class[f] {
            OpClass::Calc => OpKind::Calc { dur: self.dur[f] },
            OpClass::Send => OpKind::Send {
                dst: Rank(self.peer[f]),
                bytes: self.bytes[f],
                tag: self.tag[f],
            },
            OpClass::Recv => OpKind::Recv {
                src: (self.peer[f] != ANY_SOURCE).then_some(Rank(self.peer[f])),
                bytes: self.bytes[f],
                tag: self.tag[f],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesim_goal::{ScheduleBuilder, Tag};
    use cesim_model::Span;

    #[test]
    fn compile_flattens_kinds_and_deps() {
        let mut b = ScheduleBuilder::new(2);
        let c = b.calc(Rank(0), Span::from_us(5), &[]);
        b.send(Rank(0), Rank(1), 64, Tag(3), &[c]);
        b.recv(Rank(1), None, 64, Tag(3), &[]);
        let s = b.build();
        let cs = CompiledSchedule::compile(&s);
        assert_eq!(cs.num_ranks(), 2);
        assert_eq!(cs.total_ops(), 3);
        assert_eq!(cs.ops_on(0), 2);
        assert_eq!(cs.total_deps(), 1);
        assert_eq!(cs.class, vec![OpClass::Calc, OpClass::Send, OpClass::Recv]);
        assert_eq!(cs.peer[2], ANY_SOURCE);
        // The calc fans out to the send (local op id 1 on rank 0).
        assert_eq!(cs.dep_off, vec![0, 1, 1, 1]);
        assert_eq!(cs.dep_tgt, vec![1]);
        assert_eq!(cs.indeg0, vec![0, 1, 0]);
        // Roots in legacy (rank-major) seeding order.
        assert_eq!(cs.roots, vec![(0, 0), (1, 0)]);
        // Kind reconstruction round-trips.
        for (rank, op, op_ref) in s.iter_flat() {
            assert_eq!(cs.op_kind(cs.flat(rank.0, op.0)), op_ref.kind);
        }
    }

    #[test]
    fn compile_handles_empty_ranks() {
        let mut b = ScheduleBuilder::new(3);
        b.calc(Rank(1), Span::from_us(1), &[]);
        let cs = CompiledSchedule::compile(&b.build());
        assert_eq!(cs.num_ranks(), 3);
        assert_eq!(cs.total_ops(), 1);
        assert_eq!(cs.ops_on(0), 0);
        assert_eq!(cs.ops_on(1), 1);
        assert_eq!(cs.roots, vec![(1, 0)]);
    }
}
