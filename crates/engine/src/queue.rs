//! The central event queue.
//!
//! A binary min-heap ordered by `(time, sequence)`. The monotonically
//! increasing sequence number breaks ties deterministically in insertion
//! order, which makes whole-simulation results bit-reproducible.

use cesim_model::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event of type `E`.
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
        }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            pushed: 0,
        }
    }

    /// Schedule `event` at `time`.
    #[inline]
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed (for statistics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(30), "c");
        q.push(Time::from_ps(10), "a");
        q.push(Time::from_ps(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Time::from_ps(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_ps(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_ps(30), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 3);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ps(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::with_capacity(4);
        q.push(Time::from_ps(10), 1);
        q.push(Time::from_ps(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(Time::from_ps(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }
}
