//! The central event queue.
//!
//! A binary min-heap ordered by `(time, sequence)`. The monotonically
//! increasing sequence number breaks ties deterministically in insertion
//! order, which makes whole-simulation results bit-reproducible.

use cesim_model::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event of type `E`.
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
        }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            pushed: 0,
        }
    }

    /// Schedule `event` at `time`.
    #[inline]
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Bulk-schedule `events` in one O(n) heapify instead of n·O(log n)
    /// pushes — the fast path for seeding the initial ready wavefront.
    ///
    /// Sequence numbers are assigned in iteration order, exactly as a
    /// loop of [`push`](EventQueue::push) calls would, and `(time, seq)`
    /// keys are unique, so the pop order is **identical** to the
    /// push-one-at-a-time path (a heap's pop order is fully determined
    /// by its comparator once keys are distinct).
    pub fn seed(&mut self, events: impl IntoIterator<Item = (Time, E)>) {
        // Reuse the heap's existing buffer: take it apart, extend, and
        // rebuild. `BinaryHeap::from(Vec)` is the linear-time heapify.
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        for (time, event) in events {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pushed += 1;
            entries.push(Entry { time, seq, event });
        }
        self.heap = BinaryHeap::from(entries);
    }

    /// Remove and return the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Remove all events and reset the sequence counter, retaining the
    /// allocated buffer — a cleared queue behaves exactly like a fresh
    /// one (tie-breaking restarts at sequence 0), without reallocating.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.pushed = 0;
    }

    /// Grow the backing buffer to hold at least `additional` more events
    /// (no-op when capacity is already there — reused queues keep their
    /// high-water allocation).
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed (for statistics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(30), "c");
        q.push(Time::from_ps(10), "a");
        q.push(Time::from_ps(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Time::from_ps(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_ps(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_ps(30), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 3);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ps(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    /// The bulk-heapify path must pop in exactly the order the
    /// push-one-at-a-time path would, including ties (broken by the
    /// sequence counter) — many distinct times collide on purpose here.
    #[test]
    fn seed_matches_sequential_pushes() {
        let times: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(7919) % 50).collect();
        let mut pushed = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            pushed.push(Time::from_ps(t), i);
        }
        let mut seeded = EventQueue::new();
        seeded.seed(
            times
                .iter()
                .enumerate()
                .map(|(i, &t)| (Time::from_ps(t), i)),
        );
        assert_eq!(seeded.len(), pushed.len());
        assert_eq!(seeded.total_pushed(), pushed.total_pushed());
        while !pushed.is_empty() {
            assert_eq!(seeded.pop(), pushed.pop());
        }
        assert_eq!(seeded.pop(), None);
    }

    /// Seeding a non-empty queue continues the sequence counter, so
    /// mixing push and seed stays equivalent to pushing everything.
    #[test]
    fn seed_after_pushes_continues_tie_order() {
        let mut mixed = EventQueue::new();
        mixed.push(Time::from_ps(5), 0);
        mixed.push(Time::from_ps(5), 1);
        mixed.seed([(Time::from_ps(5), 2), (Time::from_ps(3), 3)]);
        let mut plain = EventQueue::new();
        for (t, e) in [
            (Time::from_ps(5), 0),
            (Time::from_ps(5), 1),
            (Time::from_ps(5), 2),
            (Time::from_ps(3), 3),
        ] {
            plain.push(t, e);
        }
        while !plain.is_empty() {
            assert_eq!(mixed.pop(), plain.pop());
        }
        assert!(mixed.is_empty());
    }

    /// `clear` resets the sequence counter: a cleared queue breaks ties
    /// exactly like a fresh one.
    #[test]
    fn clear_behaves_like_fresh() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(1), 100);
        q.push(Time::from_ps(1), 200);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 0);
        q.push(Time::from_ps(9), 300);
        q.push(Time::from_ps(9), 400);
        assert_eq!(q.pop(), Some((Time::from_ps(9), 300)));
        assert_eq!(q.pop(), Some((Time::from_ps(9), 400)));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::with_capacity(4);
        q.push(Time::from_ps(10), 1);
        q.push(Time::from_ps(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(Time::from_ps(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }
}
