//! The central event queue.
//!
//! A binary min-heap ordered by `(time, creator rank, creator sequence)`.
//! The key is **content-computable**: it is derived from *which rank
//! created the event and how many events that rank had created before*,
//! never from global insertion order. Two consequences:
//!
//! * ties are still broken deterministically (keys are unique: a rank's
//!   sequence numbers are monotone), so whole-simulation results stay
//!   bit-reproducible, and
//! * the same set of events pops in the same relative order no matter
//!   which queue instance they pass through — the property the sharded
//!   engine ([`crate::shard`]) relies on to merge per-shard streams
//!   byte-identically with the serial engine.

use cesim_model::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Content-computable tie-break key: the rank that created the event and
/// that rank's private event-creation counter. Combined with the
/// timestamp this identifies an event uniquely, independent of which
/// heap (or how many heaps) it travels through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EvKey {
    /// Rank on which the event was created (the rank whose processing
    /// pushed it; for the initial wavefront, the root op's own rank).
    pub crank: u32,
    /// That rank's monotone creation counter at push time.
    pub cseq: u64,
}

/// A scheduled event of type `E`.
struct Entry<E> {
    time: Time,
    key: EvKey,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.key.cmp(&self.key))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic time-ordered event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    pushed: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pushed: 0,
        }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            pushed: 0,
        }
    }

    /// Schedule `event` at `time` under the tie-break `key`.
    ///
    /// Keys must be unique per queue — the caller derives them from
    /// per-rank creation counters, which guarantees it.
    #[inline]
    pub fn push(&mut self, time: Time, key: EvKey, event: E) {
        self.pushed += 1;
        self.heap.push(Entry { time, key, event });
    }

    /// Bulk-schedule `events` in one O(n) heapify instead of n·O(log n)
    /// pushes — the fast path for seeding the initial ready wavefront.
    ///
    /// Keys are explicit and unique, so the pop order is **identical**
    /// to the push-one-at-a-time path (a heap's pop order is fully
    /// determined by its comparator once keys are distinct).
    pub fn seed(&mut self, events: impl IntoIterator<Item = (Time, EvKey, E)>) {
        // Reuse the heap's existing buffer: take it apart, extend, and
        // rebuild. `BinaryHeap::from(Vec)` is the linear-time heapify.
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        for (time, key, event) in events {
            self.pushed += 1;
            entries.push(Entry { time, key, event });
        }
        self.heap = BinaryHeap::from(entries);
    }

    /// Remove and return the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, EvKey, E)> {
        self.heap.pop().map(|e| (e.time, e.key, e.event))
    }

    /// Timestamp of the earliest event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Remove all events, retaining the allocated buffer — a cleared
    /// queue behaves exactly like a fresh one without reallocating.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pushed = 0;
    }

    /// Grow the backing buffer to hold at least `additional` more events
    /// (no-op when capacity is already there — reused queues keep their
    /// high-water allocation).
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed (for statistics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(crank: u32, cseq: u64) -> EvKey {
        EvKey { crank, cseq }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(30), k(0, 0), "c");
        q.push(Time::from_ps(10), k(0, 1), "a");
        q.push(Time::from_ps(20), k(0, 2), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(Time::from_ps(10)));
        assert_eq!(q.pop(), Some((Time::from_ps(10), k(0, 1), "a")));
        assert_eq!(q.pop(), Some((Time::from_ps(20), k(0, 2), "b")));
        assert_eq!(q.pop(), Some((Time::from_ps(30), k(0, 0), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.total_pushed(), 3);
    }

    /// Same-time events pop ordered by `(crank, cseq)` — a stable FIFO
    /// per creating rank, ranks interleaved in rank order.
    #[test]
    fn ties_break_by_creator_key() {
        let mut q = EventQueue::new();
        // Insert deliberately scrambled.
        q.push(Time::from_ps(5), k(1, 0), (1u32, 0u64));
        q.push(Time::from_ps(5), k(0, 1), (0, 1));
        q.push(Time::from_ps(5), k(1, 7), (1, 7));
        q.push(Time::from_ps(5), k(0, 0), (0, 0));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (1, 7)]);
    }

    /// The pop order of a fixed event set is independent of insertion
    /// order — the property the sharded engine's mailbox drain relies on
    /// (cross-shard events are inserted at window boundaries in whatever
    /// order shards drained, yet must pop identically to serial).
    #[test]
    fn pop_order_is_insertion_order_independent() {
        let events: Vec<(Time, EvKey, usize)> = (0..200usize)
            .map(|i| {
                let t = Time::from_ps((i as u64).wrapping_mul(7919) % 50);
                (t, k((i % 7) as u32, (i / 7) as u64), i)
            })
            .collect();
        let mut fwd = EventQueue::new();
        for &(t, key, e) in &events {
            fwd.push(t, key, e);
        }
        let mut rev = EventQueue::new();
        for &(t, key, e) in events.iter().rev() {
            rev.push(t, key, e);
        }
        loop {
            let (a, b) = (fwd.pop(), rev.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// The bulk-heapify path must pop in exactly the order the
    /// push-one-at-a-time path would, including ties — many distinct
    /// times collide on purpose here.
    #[test]
    fn seed_matches_sequential_pushes() {
        let items: Vec<(Time, EvKey, usize)> = (0..500usize)
            .map(|i| {
                let t = Time::from_ps((i as u64).wrapping_mul(7919) % 50);
                (t, k((i % 3) as u32, (i / 3) as u64), i)
            })
            .collect();
        let mut pushed = EventQueue::new();
        for &(t, key, e) in &items {
            pushed.push(t, key, e);
        }
        let mut seeded = EventQueue::new();
        seeded.seed(items.iter().copied());
        assert_eq!(seeded.len(), pushed.len());
        assert_eq!(seeded.total_pushed(), pushed.total_pushed());
        while !pushed.is_empty() {
            assert_eq!(seeded.pop(), pushed.pop());
        }
        assert_eq!(seeded.pop(), None);
    }

    /// Seeding a non-empty queue merges with what is already there.
    #[test]
    fn seed_after_pushes_merges() {
        let mut mixed = EventQueue::new();
        mixed.push(Time::from_ps(5), k(0, 0), 0);
        mixed.push(Time::from_ps(5), k(0, 1), 1);
        mixed.seed([
            (Time::from_ps(5), k(1, 0), 2),
            (Time::from_ps(3), k(2, 0), 3),
        ]);
        let order: Vec<_> = std::iter::from_fn(|| mixed.pop())
            .map(|(_, _, e)| e)
            .collect();
        assert_eq!(order, vec![3, 0, 1, 2]);
    }

    /// `clear` leaves the queue indistinguishable from a fresh one.
    #[test]
    fn clear_behaves_like_fresh() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(1), k(0, 0), 100);
        q.push(Time::from_ps(1), k(0, 1), 200);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 0);
        q.push(Time::from_ps(9), k(0, 0), 300);
        q.push(Time::from_ps(9), k(0, 1), 400);
        assert_eq!(q.pop(), Some((Time::from_ps(9), k(0, 0), 300)));
        assert_eq!(q.pop(), Some((Time::from_ps(9), k(0, 1), 400)));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::with_capacity(4);
        q.push(Time::from_ps(10), k(0, 0), 1);
        q.push(Time::from_ps(5), k(0, 1), 0);
        assert_eq!(q.pop().unwrap().2, 0);
        q.push(Time::from_ps(7), k(0, 2), 2);
        assert_eq!(q.pop().unwrap().2, 2);
        assert_eq!(q.pop().unwrap().2, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Same-timestamp events pop in stable FIFO order: per creating
        /// rank they come out in creation order, ties across ranks break
        /// by rank id, and none of it depends on the order events were
        /// pushed into the heap (or whether they arrived via `push` or
        /// the O(n) `seed` heapify).
        #[test]
        fn same_time_pop_order_is_stable_fifo(
            // Few distinct timestamps + few ranks → dense tie collisions.
            items in proptest::collection::vec((0u64..4, 0u32..3), 1..64),
            shuffle in 0u64..=u64::MAX,
        ) {
            // Assign each event its creator's FIFO sequence number.
            let mut next_seq = [0u64; 3];
            let mut events: Vec<(Time, EvKey, usize)> = items
                .iter()
                .enumerate()
                .map(|(payload, &(t, crank))| {
                    let cseq = next_seq[crank as usize];
                    next_seq[crank as usize] += 1;
                    (Time::from_ps(t), EvKey { crank, cseq }, payload)
                })
                .collect();

            let mut expected = events.clone();
            expected.sort_by_key(|&(t, key, _)| (t, key));

            // Push in a shuffled order (deterministic xorshift walk).
            let mut order: Vec<usize> = (0..events.len()).collect();
            let mut s = shuffle | 1;
            for i in (1..order.len()).rev() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                order.swap(i, (s % (i as u64 + 1)) as usize);
            }

            let mut q = EventQueue::new();
            for &i in &order {
                let (t, key, p) = events[i];
                q.push(t, key, p);
            }
            let mut popped = Vec::new();
            while let Some(e) = q.pop() {
                popped.push(e);
            }
            prop_assert_eq!(&popped, &expected);

            // The bulk-seed path must agree with the push path exactly
            // (under yet another insertion order).
            for i in (1..events.len()).rev() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                events.swap(i, (s % (i as u64 + 1)) as usize);
            }
            let mut q2 = EventQueue::new();
            q2.seed(events);
            let mut popped2 = Vec::new();
            while let Some(e) = q2.pop() {
                popped2.push(e);
            }
            prop_assert_eq!(&popped2, &expected);
        }
    }
}
