//! The central event queue.
//!
//! A deterministic time-ordered queue over `(time, creator rank, creator
//! sequence)`. The key is **content-computable**: it is derived from
//! *which rank created the event and how many events that rank had
//! created before*, never from global insertion order. Two consequences:
//!
//! * ties are still broken deterministically (keys are unique: a rank's
//!   sequence numbers are monotone), so whole-simulation results stay
//!   bit-reproducible, and
//! * the same set of events pops in the same relative order no matter
//!   which queue instance they pass through — the property the sharded
//!   engine ([`crate::shard`]) relies on to merge per-shard streams
//!   byte-identically with the serial engine.
//!
//! # Layout: wavefront buckets, not a heap
//!
//! Lockstep collectives make the event population *wave-shaped*: at any
//! instant the queue holds a handful of distinct timestamps, each shared
//! by a large same-time run (hundreds of events — one per rank of the
//! current wavefront). A comparison heap pays `O(log n)` sift work per
//! event to maintain a total order it never needs: events are consumed
//! one whole timestamp at a time.
//!
//! So the queue buckets events by timestamp instead:
//!
//! * **Waves** — a short `Vec` of `(time, bucket)` pairs, sorted by
//!   time, one per distinct *future* timestamp. A push appends to its
//!   wave's bucket unordered in O(1) (plus a binary search over the
//!   handful of live times); each bucket memoizes its minimum key so
//!   peeking never scans.
//! * **The active run** — when the earliest wave is first *popped from*,
//!   its bucket is sorted once by the `(crank, cseq)` tie-break (a
//!   contiguous `u64` sort, unique keys, so the order is deterministic)
//!   and pops become cursor increments.
//! * **The side heap** — events pushed *at* the active timestamp while
//!   it is being drained (a completing op readying a dependent at the
//!   same instant) go to a small binary min-heap that the pop path
//!   merges with the run head. It stays tiny: such events are consumed
//!   almost immediately by the dispatch loop's ordered merge.
//!
//! Pop order is exactly ascending `(time, crank, cseq)` — identical to
//! the heap this replaces, which `proptests` below and the engine's
//! equivalence suites verify. Pushing a timestamp *below* the active one
//! (impossible in engine use, where pushes are causal, but legal API)
//! takes a slow path that demotes the active run back to a wave.

use cesim_model::Time;

/// Content-computable tie-break key: the rank that created the event and
/// that rank's private event-creation counter. Combined with the
/// timestamp this identifies an event uniquely, independent of which
/// queue (or how many queues) it travels through.
///
/// `cseq` is 32-bit so the whole tie-break packs into a single `u64`
/// (`crank << 32 | cseq`); a rank would need to create 4 billion events
/// in one run to wrap, orders of magnitude beyond any schedule here
/// (overflow is checked in debug builds at the increment site).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EvKey {
    /// Rank on which the event was created (the rank whose processing
    /// pushed it; for the initial wavefront, the root op's own rank).
    pub crank: u32,
    /// That rank's monotone creation counter at push time.
    pub cseq: u32,
}

/// Pack the tie-break into an order-preserving `u64`.
#[inline(always)]
fn pack_key(key: EvKey) -> u64 {
    ((key.crank as u64) << 32) | key.cseq as u64
}

/// Inverse of [`pack_key`].
#[inline(always)]
fn unpack_key(k: u64) -> EvKey {
    EvKey {
        crank: (k >> 32) as u32,
        cseq: k as u32,
    }
}

/// One future timestamp's unordered event bucket.
struct Wave<E> {
    /// Timestamp shared by every entry (ps).
    t: u64,
    /// Minimum packed key in `events`, memoized on push so
    /// [`EventQueue::peek_min`] is O(1) without sorting.
    min: u64,
    /// `(packed key, payload)` in arrival order; sorted only when this
    /// wave becomes the active run.
    events: Vec<(u64, E)>,
}

/// Deterministic time-ordered event queue (see module docs for the
/// wavefront-bucket layout).
pub struct EventQueue<E> {
    /// Future timestamps, ascending, all strictly above `active_t` when
    /// a run is active. Never contains an empty bucket.
    waves: Vec<Wave<E>>,
    /// The timestamp currently being drained (valid when `active`).
    active_t: u64,
    active: bool,
    /// The active timestamp's events, sorted by packed key; consumed by
    /// advancing `cursor`.
    run: Vec<(u64, E)>,
    cursor: usize,
    /// Min-heap of events pushed at `active_t` after activation.
    side: Vec<(u64, E)>,
    /// Retired bucket backings, kept for reuse — steady-state replicas
    /// allocate nothing.
    spare: Vec<Vec<(u64, E)>>,
    len: usize,
    pushed: u64,
}

// `E: Copy` is deliberate: event payloads are small index-like values
// (the arena reduced them to `Copy` refs), which keeps bucket sorting
// and the side heap's hole-style sifts to single moves of 16-byte pairs.
impl<E: Copy> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue with pre-reserved capacity (for the active run;
    /// wave buckets grow to their own high-water marks on first use).
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::default();
        q.run.reserve(cap);
        q
    }

    /// Schedule `event` at `time` under the tie-break `key`.
    ///
    /// Keys must be unique per queue — the caller derives them from
    /// per-rank creation counters, which guarantees it.
    #[inline]
    pub fn push(&mut self, time: Time, key: EvKey, event: E) {
        self.pushed += 1;
        self.len += 1;
        let t = time.as_ps();
        let k = pack_key(key);
        if self.active {
            if t == self.active_t {
                // Same-instant push while draining: the dispatch loop
                // will consume it almost immediately — keep it in the
                // small merge heap instead of disturbing any bucket.
                side_push(&mut self.side, (k, event));
                return;
            }
            if t < self.active_t {
                // Legal API, unreachable from the engine (pushes are
                // causal: never earlier than the time being dispatched).
                self.demote_active();
            }
        }
        self.wave_push(t, k, event);
    }

    /// File `(k, event)` under the wave for `t`, creating it in sorted
    /// position if absent. The wave list holds one entry per distinct
    /// live future timestamp — single digits in wave-shaped workloads —
    /// so the binary search and any insertion shuffle are cheap.
    #[inline]
    fn wave_push(&mut self, t: u64, k: u64, event: E) {
        match self.waves.binary_search_by_key(&t, |w| w.t) {
            Ok(i) => {
                let w = &mut self.waves[i];
                w.min = w.min.min(k);
                w.events.push((k, event));
            }
            Err(i) => {
                let mut events = self.spare.pop().unwrap_or_default();
                events.push((k, event));
                self.waves.insert(i, Wave { t, min: k, events });
            }
        }
    }

    /// Slow path: push below the active timestamp. Returns the active
    /// run (and side heap) to a wave bucket so the normal ordering
    /// machinery re-applies.
    #[cold]
    fn demote_active(&mut self) {
        let mut events = self.spare.pop().unwrap_or_default();
        events.extend_from_slice(&self.run[self.cursor..]);
        events.append(&mut self.side);
        self.run.clear();
        self.cursor = 0;
        self.active = false;
        if events.is_empty() {
            self.spare.push(events);
            return;
        }
        let min = events.iter().map(|&(k, _)| k).min().expect("non-empty");
        debug_assert!(self.waves.first().is_none_or(|w| w.t > self.active_t));
        self.waves.insert(
            0,
            Wave {
                t: self.active_t,
                min,
                events,
            },
        );
    }

    /// Make the earliest wave the active run: sort its bucket once by
    /// the packed tie-break (unique keys, so `sort_unstable` is
    /// deterministic) and drain it by cursor from then on.
    fn activate_next(&mut self) -> bool {
        debug_assert!(self.cursor == self.run.len() && self.side.is_empty());
        if self.waves.is_empty() {
            return false;
        }
        let wave = self.waves.remove(0);
        let mut retired = std::mem::replace(&mut self.run, wave.events);
        retired.clear();
        self.spare.push(retired);
        self.run.sort_unstable_by_key(|&(k, _)| k);
        self.cursor = 0;
        self.active_t = wave.t;
        self.active = true;
        true
    }

    /// Bulk-schedule `events` — the fast path for seeding the initial
    /// ready wavefront. Buckets make this plain appends; the per-wave
    /// sort on activation restores exactly the order one-at-a-time
    /// pushes would produce (pop order is fully determined by the key
    /// once keys are distinct).
    pub fn seed(&mut self, events: impl IntoIterator<Item = (Time, EvKey, E)>) {
        for (time, key, event) in events {
            self.push(time, key, event);
        }
    }

    /// Remove and return the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, EvKey, E)> {
        loop {
            let run_head = self.run.get(self.cursor);
            let (k, ev) = match (run_head, self.side.first()) {
                (Some(&r), Some(&s)) => {
                    if r.0 < s.0 {
                        self.cursor += 1;
                        r
                    } else {
                        side_pop(&mut self.side)
                    }
                }
                (Some(&r), None) => {
                    self.cursor += 1;
                    r
                }
                (None, Some(_)) => side_pop(&mut self.side),
                (None, None) => {
                    if !self.activate_next() {
                        return None;
                    }
                    continue;
                }
            };
            self.len -= 1;
            return Some((Time::from_ps(self.active_t), unpack_key(k), ev));
        }
    }

    /// Drain every event sharing the minimum timestamp into `out`
    /// (cleared first), in exactly the order repeated [`EventQueue::pop`]
    /// calls would yield them. Returns the number drained.
    ///
    /// The dispatch loop uses this to amortize per-event work across
    /// same-timestamp bursts (the common case: a whole wavefront of
    /// ranks acting at the identical instant). Buckets make it the
    /// natural operation: the active run *is* the batch.
    #[inline]
    pub fn pop_batch(&mut self, out: &mut Vec<(Time, EvKey, E)>) -> usize {
        out.clear();
        if self.cursor == self.run.len() && self.side.is_empty() && !self.activate_next() {
            return 0;
        }
        let t = Time::from_ps(self.active_t);
        if self.side.is_empty() {
            // Whole-run fast path: the sorted tail is the batch.
            out.extend(
                self.run[self.cursor..]
                    .iter()
                    .map(|&(k, ev)| (t, unpack_key(k), ev)),
            );
            self.cursor = self.run.len();
            self.len -= out.len();
        } else {
            // Rare: leftover same-instant pushes must merge in.
            while let Some((k, ev)) = self.pop_active() {
                out.push((t, unpack_key(k), ev));
                self.len -= 1;
            }
        }
        out.len()
    }

    /// Pop the next `(key, payload)` of the active timestamp only
    /// (`None` once the run and side heap are drained).
    #[inline]
    fn pop_active(&mut self) -> Option<(u64, E)> {
        match (self.run.get(self.cursor), self.side.first()) {
            (Some(&r), Some(&s)) => Some(if r.0 < s.0 {
                self.cursor += 1;
                r
            } else {
                side_pop(&mut self.side)
            }),
            (Some(&r), None) => {
                self.cursor += 1;
                Some(r)
            }
            (None, Some(_)) => Some(side_pop(&mut self.side)),
            (None, None) => None,
        }
    }

    /// Timestamp of the earliest event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        if self.cursor < self.run.len() || !self.side.is_empty() {
            return Some(Time::from_ps(self.active_t));
        }
        self.waves.first().map(|w| Time::from_ps(w.t))
    }

    /// `(time, key)` of the earliest event without removing it.
    #[inline]
    pub fn peek_min(&self) -> Option<(Time, EvKey)> {
        let run_head = self.run.get(self.cursor).map(|&(k, _)| k);
        let side_head = self.side.first().map(|&(k, _)| k);
        let k = match (run_head, side_head) {
            (Some(r), Some(s)) => r.min(s),
            (Some(r), None) => r,
            (None, Some(s)) => s,
            (None, None) => {
                // Wave buckets are unsorted but memoize their minimum.
                let w = self.waves.first()?;
                return Some((Time::from_ps(w.t), unpack_key(w.min)));
            }
        };
        Some((Time::from_ps(self.active_t), unpack_key(k)))
    }

    /// Remove all events, retaining the allocated buffers — a cleared
    /// queue behaves exactly like a fresh one without reallocating.
    pub fn clear(&mut self) {
        for mut w in self.waves.drain(..) {
            w.events.clear();
            self.spare.push(w.events);
        }
        self.run.clear();
        self.side.clear();
        self.cursor = 0;
        self.active = false;
        self.len = 0;
        self.pushed = 0;
    }

    /// Grow the active-run buffer to hold at least `additional` more
    /// events (no-op when capacity is already there — reused queues keep
    /// their high-water allocation).
    pub fn reserve(&mut self, additional: usize) {
        self.run.reserve(additional);
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events ever pushed (for statistics).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            waves: Vec::new(),
            active_t: 0,
            active: false,
            run: Vec::new(),
            cursor: 0,
            side: Vec::new(),
            spare: Vec::new(),
            len: 0,
            pushed: 0,
        }
    }
}

/// Binary min-heap push for the side buffer (hole-based sift-up).
#[inline]
fn side_push<E: Copy>(heap: &mut Vec<(u64, E)>, entry: (u64, E)) {
    let mut i = heap.len();
    heap.push(entry);
    while i > 0 {
        let p = (i - 1) / 2;
        if heap[p].0 <= entry.0 {
            break;
        }
        heap[i] = heap[p];
        i = p;
    }
    heap[i] = entry;
}

/// Binary min-heap pop for the side buffer. Caller ensures non-empty.
#[inline]
fn side_pop<E: Copy>(heap: &mut Vec<(u64, E)>) -> (u64, E) {
    let top = heap[0];
    let last = heap.pop().expect("side heap non-empty");
    let n = heap.len();
    if n > 0 {
        let mut i = 0;
        loop {
            let mut c = 2 * i + 1;
            if c >= n {
                break;
            }
            if c + 1 < n && heap[c + 1].0 < heap[c].0 {
                c += 1;
            }
            if last.0 <= heap[c].0 {
                break;
            }
            heap[i] = heap[c];
            i = c;
        }
        heap[i] = last;
    }
    top
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(crank: u32, cseq: u32) -> EvKey {
        EvKey { crank, cseq }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(30), k(0, 0), "c");
        q.push(Time::from_ps(10), k(0, 1), "a");
        q.push(Time::from_ps(20), k(0, 2), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(Time::from_ps(10)));
        assert_eq!(q.peek_min(), Some((Time::from_ps(10), k(0, 1))));
        assert_eq!(q.pop(), Some((Time::from_ps(10), k(0, 1), "a")));
        assert_eq!(q.pop(), Some((Time::from_ps(20), k(0, 2), "b")));
        assert_eq!(q.pop(), Some((Time::from_ps(30), k(0, 0), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.peek_min(), None);
        assert_eq!(q.total_pushed(), 3);
    }

    /// Same-time events pop ordered by `(crank, cseq)` — a stable FIFO
    /// per creating rank, ranks interleaved in rank order.
    #[test]
    fn ties_break_by_creator_key() {
        let mut q = EventQueue::new();
        // Insert deliberately scrambled.
        q.push(Time::from_ps(5), k(1, 0), (1u32, 0u64));
        q.push(Time::from_ps(5), k(0, 1), (0, 1));
        q.push(Time::from_ps(5), k(1, 7), (1, 7));
        q.push(Time::from_ps(5), k(0, 0), (0, 0));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (1, 7)]);
    }

    /// The packed `u64` tie-break must order exactly like the
    /// `(crank, cseq)` pair, including at field boundaries.
    #[test]
    fn packed_key_orders_like_tuple() {
        let samples = [
            k(0, 0),
            k(0, 1),
            k(1, 0),
            k(1, u32::MAX),
            k(u32::MAX, 0),
            k(u32::MAX, u32::MAX),
        ];
        for &ka in &samples {
            for &kb in &samples {
                let tuple = ka.cmp(&kb);
                let packed = pack_key(ka).cmp(&pack_key(kb));
                assert_eq!(tuple, packed, "{ka:?} vs {kb:?}");
                assert_eq!(unpack_key(pack_key(ka)), ka);
            }
        }
    }

    /// The pop order of a fixed event set is independent of insertion
    /// order — the property the sharded engine's mailbox drain relies on
    /// (cross-shard events are inserted at window boundaries in whatever
    /// order shards drained, yet must pop identically to serial).
    #[test]
    fn pop_order_is_insertion_order_independent() {
        let events: Vec<(Time, EvKey, usize)> = (0..200usize)
            .map(|i| {
                let t = Time::from_ps((i as u64).wrapping_mul(7919) % 50);
                (t, k((i % 7) as u32, (i / 7) as u32), i)
            })
            .collect();
        let mut fwd = EventQueue::new();
        for &(t, key, e) in &events {
            fwd.push(t, key, e);
        }
        let mut rev = EventQueue::new();
        for &(t, key, e) in events.iter().rev() {
            rev.push(t, key, e);
        }
        loop {
            let (a, b) = (fwd.pop(), rev.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// The bulk-seed path must pop in exactly the order the
    /// push-one-at-a-time path would, including ties — many distinct
    /// times collide on purpose here.
    #[test]
    fn seed_matches_sequential_pushes() {
        let items: Vec<(Time, EvKey, usize)> = (0..500usize)
            .map(|i| {
                let t = Time::from_ps((i as u64).wrapping_mul(7919) % 50);
                (t, k((i % 3) as u32, (i / 3) as u32), i)
            })
            .collect();
        let mut pushed = EventQueue::new();
        for &(t, key, e) in &items {
            pushed.push(t, key, e);
        }
        let mut seeded = EventQueue::new();
        seeded.seed(items.iter().copied());
        assert_eq!(seeded.len(), pushed.len());
        assert_eq!(seeded.total_pushed(), pushed.total_pushed());
        while !pushed.is_empty() {
            assert_eq!(seeded.pop(), pushed.pop());
        }
        assert_eq!(seeded.pop(), None);
    }

    /// Seeding a non-empty queue merges with what is already there.
    #[test]
    fn seed_after_pushes_merges() {
        let mut mixed = EventQueue::new();
        mixed.push(Time::from_ps(5), k(0, 0), 0);
        mixed.push(Time::from_ps(5), k(0, 1), 1);
        mixed.seed([
            (Time::from_ps(5), k(1, 0), 2),
            (Time::from_ps(3), k(2, 0), 3),
        ]);
        let order: Vec<_> = std::iter::from_fn(|| mixed.pop())
            .map(|(_, _, e)| e)
            .collect();
        assert_eq!(order, vec![3, 0, 1, 2]);
    }

    /// `clear` leaves the queue indistinguishable from a fresh one.
    #[test]
    fn clear_behaves_like_fresh() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(1), k(0, 0), 100);
        q.push(Time::from_ps(1), k(0, 1), 200);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 0);
        q.push(Time::from_ps(9), k(0, 0), 300);
        q.push(Time::from_ps(9), k(0, 1), 400);
        assert_eq!(q.pop(), Some((Time::from_ps(9), k(0, 0), 300)));
        assert_eq!(q.pop(), Some((Time::from_ps(9), k(0, 1), 400)));
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::with_capacity(4);
        q.push(Time::from_ps(10), k(0, 0), 1);
        q.push(Time::from_ps(5), k(0, 1), 0);
        assert_eq!(q.pop().unwrap().2, 0);
        q.push(Time::from_ps(7), k(0, 2), 2);
        assert_eq!(q.pop().unwrap().2, 2);
        assert_eq!(q.pop().unwrap().2, 1);
    }

    /// Pushing below the drained-but-active timestamp (the demotion slow
    /// path — unreachable from the engine, legal for the API).
    #[test]
    fn push_below_active_timestamp() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(10), k(0, 0), "b");
        q.push(Time::from_ps(20), k(0, 1), "d");
        assert_eq!(q.pop(), Some((Time::from_ps(10), k(0, 0), "b")));
        // 10 is now the active (exhausted) run; push both below it and
        // at it, then above it.
        q.push(Time::from_ps(5), k(0, 2), "a");
        q.push(Time::from_ps(10), k(0, 3), "c");
        assert_eq!(q.peek_min(), Some((Time::from_ps(5), k(0, 2))));
        assert_eq!(q.pop(), Some((Time::from_ps(5), k(0, 2), "a")));
        assert_eq!(q.pop(), Some((Time::from_ps(10), k(0, 3), "c")));
        assert_eq!(q.pop(), Some((Time::from_ps(20), k(0, 1), "d")));
        assert_eq!(q.pop(), None);
    }

    /// Demotion with the active run only partially consumed.
    #[test]
    fn push_below_partially_drained_run() {
        let mut q = EventQueue::new();
        for i in 0..4 {
            q.push(Time::from_ps(10), k(0, i), i);
        }
        assert_eq!(q.pop(), Some((Time::from_ps(10), k(0, 0), 0)));
        // Same-instant push lands in the side heap, then an earlier
        // push demotes run + side together.
        q.push(Time::from_ps(10), k(1, 0), 100);
        q.push(Time::from_ps(3), k(0, 4), 99);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, vec![99, 1, 2, 3, 100]);
    }

    /// `pop_batch` drains exactly the leading same-timestamp run, in
    /// pop order, and leaves the next timestamp intact.
    #[test]
    fn pop_batch_drains_one_timestamp() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(5), k(1, 0), "b");
        q.push(Time::from_ps(5), k(0, 0), "a");
        q.push(Time::from_ps(7), k(0, 1), "c");
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), 2);
        assert_eq!(
            out,
            vec![
                (Time::from_ps(5), k(0, 0), "a"),
                (Time::from_ps(5), k(1, 0), "b"),
            ]
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_batch(&mut out), 1);
        assert_eq!(out, vec![(Time::from_ps(7), k(0, 1), "c")]);
        assert_eq!(q.pop_batch(&mut out), 0);
        assert!(out.is_empty());
    }

    /// `pop_batch` must include side-heap entries (same-instant pushes
    /// after partial drains) merged into key order.
    #[test]
    fn pop_batch_merges_side_heap() {
        let mut q = EventQueue::new();
        q.push(Time::from_ps(5), k(0, 0), 0);
        q.push(Time::from_ps(5), k(2, 0), 3);
        assert_eq!(q.pop(), Some((Time::from_ps(5), k(0, 0), 0)));
        // Land two more at the active instant: one ahead of the run
        // head, one behind it.
        q.push(Time::from_ps(5), k(1, 0), 2);
        q.push(Time::from_ps(5), k(0, 1), 1);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), 3);
        let got: Vec<_> = out.iter().map(|&(_, _, e)| e).collect();
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(q.pop_batch(&mut out), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Same-timestamp events pop in stable FIFO order: per creating
        /// rank they come out in creation order, ties across ranks break
        /// by rank id, and none of it depends on the order events were
        /// pushed into the queue (or whether they arrived via `push` or
        /// the bulk `seed` path).
        #[test]
        fn same_time_pop_order_is_stable_fifo(
            // Few distinct timestamps + few ranks → dense tie collisions.
            items in proptest::collection::vec((0u64..4, 0u32..3), 1..64),
            shuffle in 0u64..=u64::MAX,
        ) {
            // Assign each event its creator's FIFO sequence number.
            let mut next_seq = [0u32; 3];
            let mut events: Vec<(Time, EvKey, usize)> = items
                .iter()
                .enumerate()
                .map(|(payload, &(t, crank))| {
                    let cseq = next_seq[crank as usize];
                    next_seq[crank as usize] += 1;
                    (Time::from_ps(t), EvKey { crank, cseq }, payload)
                })
                .collect();

            let mut expected = events.clone();
            expected.sort_by_key(|&(t, key, _)| (t, key));

            // Push in a shuffled order (deterministic xorshift walk).
            let mut order: Vec<usize> = (0..events.len()).collect();
            let mut s = shuffle | 1;
            for i in (1..order.len()).rev() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                order.swap(i, (s % (i as u64 + 1)) as usize);
            }

            let mut q = EventQueue::new();
            for &i in &order {
                let (t, key, p) = events[i];
                q.push(t, key, p);
            }
            let mut popped = Vec::new();
            while let Some(e) = q.pop() {
                popped.push(e);
            }
            prop_assert_eq!(&popped, &expected);

            // The bulk-seed path must agree with the push path exactly
            // (under yet another insertion order).
            for i in (1..events.len()).rev() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                events.swap(i, (s % (i as u64 + 1)) as usize);
            }
            let mut q2 = EventQueue::new();
            q2.seed(events);
            let mut popped2 = Vec::new();
            while let Some(e) = q2.pop() {
                popped2.push(e);
            }
            prop_assert_eq!(&popped2, &expected);
        }

        /// Flattening successive `pop_batch` calls yields exactly the
        /// sequence repeated `pop` would — including same-timestamp FIFO
        /// ties — and each batch covers one whole timestamp run.
        #[test]
        fn pop_batch_flattens_to_pop_sequence(
            items in proptest::collection::vec((0u64..4, 0u32..3), 1..64),
        ) {
            let mut next_seq = [0u32; 3];
            let events: Vec<(Time, EvKey, usize)> = items
                .iter()
                .enumerate()
                .map(|(payload, &(t, crank))| {
                    let cseq = next_seq[crank as usize];
                    next_seq[crank as usize] += 1;
                    (Time::from_ps(t), EvKey { crank, cseq }, payload)
                })
                .collect();

            let mut a = EventQueue::new();
            let mut b = EventQueue::new();
            for &(t, key, p) in &events {
                a.push(t, key, p);
                b.push(t, key, p);
            }

            let mut by_pop = Vec::new();
            while let Some(e) = a.pop() {
                by_pop.push(e);
            }

            let mut by_batch = Vec::new();
            let mut scratch = Vec::new();
            loop {
                let n = b.pop_batch(&mut scratch);
                prop_assert_eq!(n, scratch.len());
                if n == 0 {
                    break;
                }
                // A batch is exactly one timestamp run: uniform inside,
                // strictly earlier than whatever remains queued.
                let t0 = scratch[0].0;
                prop_assert!(scratch.iter().all(|&(t, _, _)| t == t0));
                if let Some(next) = b.peek_time() {
                    prop_assert!(next > t0);
                }
                by_batch.extend_from_slice(&scratch);
            }
            prop_assert_eq!(&by_batch, &by_pop);
        }

        /// Interleaved pushes and pops — including pushes at and below
        /// the timestamp currently being drained — always produce the
        /// globally sorted `(time, crank, cseq)` sequence. This walks
        /// the activation, side-heap, and demotion paths randomly.
        #[test]
        fn interleaved_ops_stay_sorted(
            script in proptest::collection::vec((0u64..6, 0u32..3, 0u8..2), 1..80),
        ) {
            let mut next_seq = [0u32; 3];
            let mut q = EventQueue::new();
            let mut live: Vec<(Time, EvKey, usize)> = Vec::new();
            for (i, &(t, crank, do_pop)) in script.iter().enumerate() {
                let do_pop = do_pop == 1;
                let cseq = next_seq[crank as usize];
                next_seq[crank as usize] += 1;
                let key = EvKey { crank, cseq };
                q.push(Time::from_ps(t), key, i);
                live.push((Time::from_ps(t), key, i));
                if do_pop {
                    let got = q.pop().expect("queue non-empty");
                    live.sort_by_key(|&(t, key, _)| (t, key));
                    let expect = live.remove(0);
                    prop_assert_eq!(got, expect);
                }
            }
            live.sort_by_key(|&(t, key, _)| (t, key));
            for expect in live {
                prop_assert_eq!(q.pop(), Some(expect));
            }
            prop_assert_eq!(q.pop(), None);
        }
    }
}
