//! The noise-injection interface.
//!
//! The engine funnels **every** interval of CPU work through
//! [`NoiseModel::stretch`]. An implementation may extend the interval by
//! inserting detours (CE handling, OS jitter, …). The CE detour model
//! itself lives in `cesim-noise`; the engine only defines the contract:
//!
//! * calls for a given rank have non-decreasing `start` values (the
//!   engine's per-rank CPU cursor guarantees this), so implementations can
//!   keep per-rank cursors of their own;
//! * `stretch` must return `>= start + work` — noise can only delay.

use cesim_goal::Rank;
use cesim_model::{Span, Time};

/// Injects CPU detours into the simulation.
pub trait NoiseModel {
    /// A CPU interval on `rank` begins at `start` and needs `work` of
    /// useful computation. Return the time at which the work completes,
    /// including any injected detours.
    fn stretch(&mut self, rank: Rank, start: Time, work: Span) -> Time;

    /// Total detour events injected so far (for reporting).
    fn events_injected(&self) -> u64 {
        0
    }
}

/// The identity model: no noise, CPU intervals take exactly their work.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoNoise;

impl NoiseModel for NoNoise {
    #[inline]
    fn stretch(&mut self, _rank: Rank, start: Time, work: Span) -> Time {
        start + work
    }
}

/// A deterministic test model: a fixed list of `(rank, at, detour)`
/// triples; each detour is inserted into the first CPU interval on that
/// rank that covers (or follows) `at`. Useful for reproducing the paper's
/// Fig. 1 hand-example and for unit tests.
///
/// Detours are grouped per rank at construction and consumed through a
/// monotone cursor: `stretch` only ever advances past detours it injects,
/// so each call is O(detours injected) rather than a rescan of the whole
/// script (the previous implementation `Vec::remove`d out of one flat
/// list, O(script length) per CPU interval).
#[derive(Clone, Debug, Default)]
pub struct ScriptedNoise {
    /// Per-rank scripts; ranks are sparse, so a map rather than a Vec.
    scripts: std::collections::HashMap<Rank, RankScript>,
    injected: u64,
}

/// One rank's detours, time-sorted, with the next-unapplied cursor.
#[derive(Clone, Debug, Default)]
struct RankScript {
    /// `(at, detour)` pairs sorted by `at` (stable, preserving input
    /// order among equal times).
    detours: Vec<(Time, Span)>,
    /// Index of the first detour not yet injected.
    cursor: usize,
}

impl ScriptedNoise {
    /// Build from `(rank, at, detour)` triples.
    pub fn new(detours: Vec<(Rank, Time, Span)>) -> Self {
        let mut scripts: std::collections::HashMap<Rank, RankScript> =
            std::collections::HashMap::new();
        for (r, t, d) in detours {
            scripts.entry(r).or_default().detours.push((t, d));
        }
        for script in scripts.values_mut() {
            // Stable: equal-time detours keep their scripted order.
            script.detours.sort_by_key(|&(t, _)| t);
        }
        ScriptedNoise {
            scripts,
            injected: 0,
        }
    }
}

impl NoiseModel for ScriptedNoise {
    fn stretch(&mut self, rank: Rank, start: Time, work: Span) -> Time {
        let mut end = start + work;
        // Inject every not-yet-applied detour due by `end`; each injection
        // extends the interval, which may pull in further detours
        // (cascading, same as the original scan-until-fixpoint).
        if let Some(script) = self.scripts.get_mut(&rank) {
            while let Some(&(at, d)) = script.detours.get(script.cursor) {
                if at > end {
                    break;
                }
                end += d;
                script.cursor += 1;
                self.injected += 1;
            }
        }
        end
    }

    fn events_injected(&self) -> u64 {
        self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_noise_is_identity() {
        let mut n = NoNoise;
        let t = n.stretch(Rank(0), Time::from_ps(100), Span::from_ps(50));
        assert_eq!(t, Time::from_ps(150));
        assert_eq!(n.events_injected(), 0);
    }

    #[test]
    fn scripted_noise_applies_in_window() {
        let mut n = ScriptedNoise::new(vec![
            (Rank(0), Time::from_ps(10), Span::from_ps(5)),
            (Rank(1), Time::from_ps(0), Span::from_ps(100)),
        ]);
        // Rank 0 interval [0, 20) covers t=10: stretched by 5.
        let end = n.stretch(Rank(0), Time::ZERO, Span::from_ps(20));
        assert_eq!(end, Time::from_ps(25));
        // Rank 0 has no more detours.
        let end = n.stretch(Rank(0), end, Span::from_ps(20));
        assert_eq!(end, Time::from_ps(45));
        // Rank 1's detour applies to its first interval.
        let end = n.stretch(Rank(1), Time::from_ps(7), Span::from_ps(3));
        assert_eq!(end, Time::from_ps(110));
        assert_eq!(n.events_injected(), 2);
    }

    #[test]
    fn scripted_noise_defers_future_detours() {
        let mut n = ScriptedNoise::new(vec![(Rank(0), Time::from_ps(1_000), Span::from_ps(7))]);
        // Interval ends before the detour is due: unchanged.
        let end = n.stretch(Rank(0), Time::ZERO, Span::from_ps(10));
        assert_eq!(end, Time::from_ps(10));
        // A later interval that covers it picks it up.
        let end = n.stretch(Rank(0), Time::from_ps(995), Span::from_ps(10));
        assert_eq!(end, Time::from_ps(1_012));
    }
}
