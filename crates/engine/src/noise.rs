//! The noise-injection interface.
//!
//! The engine funnels **every** interval of CPU work through
//! [`NoiseModel::stretch`]. An implementation may extend the interval by
//! inserting detours (CE handling, OS jitter, …). The CE detour model
//! itself lives in `cesim-noise`; the engine only defines the contract:
//!
//! * calls for a given rank have non-decreasing `start` values (the
//!   engine's per-rank CPU cursor guarantees this), so implementations can
//!   keep per-rank cursors of their own;
//! * `stretch` must return `>= start + work` — noise can only delay.

use cesim_goal::Rank;
use cesim_model::{Span, Time};

/// Injects CPU detours into the simulation.
pub trait NoiseModel {
    /// A CPU interval on `rank` begins at `start` and needs `work` of
    /// useful computation. Return the time at which the work completes,
    /// including any injected detours.
    fn stretch(&mut self, rank: Rank, start: Time, work: Span) -> Time;

    /// Total detour events injected so far (for reporting).
    fn events_injected(&self) -> u64 {
        0
    }
}

/// The identity model: no noise, CPU intervals take exactly their work.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoNoise;

impl NoiseModel for NoNoise {
    #[inline]
    fn stretch(&mut self, _rank: Rank, start: Time, work: Span) -> Time {
        start + work
    }
}

/// A deterministic test model: a fixed list of `(rank, at, detour)`
/// triples; each detour is inserted into the first CPU interval on that
/// rank that covers (or follows) `at`. Useful for reproducing the paper's
/// Fig. 1 hand-example and for unit tests.
#[derive(Clone, Debug, Default)]
pub struct ScriptedNoise {
    /// Pending detours, consumed in order per rank.
    pending: Vec<(Rank, Time, Span)>,
    injected: u64,
}

impl ScriptedNoise {
    /// Build from `(rank, at, detour)` triples.
    pub fn new(mut detours: Vec<(Rank, Time, Span)>) -> Self {
        detours.sort_by_key(|&(r, t, _)| (r, t));
        ScriptedNoise {
            pending: detours,
            injected: 0,
        }
    }
}

impl NoiseModel for ScriptedNoise {
    fn stretch(&mut self, rank: Rank, start: Time, work: Span) -> Time {
        let mut end = start + work;
        // Apply every pending detour for this rank scheduled before `end`.
        let mut i = 0;
        while i < self.pending.len() {
            let (r, at, d) = self.pending[i];
            if r == rank && at <= end {
                end += d;
                self.pending.remove(i);
                self.injected += 1;
            } else {
                i += 1;
            }
        }
        end
    }

    fn events_injected(&self) -> u64 {
        self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_noise_is_identity() {
        let mut n = NoNoise;
        let t = n.stretch(Rank(0), Time::from_ps(100), Span::from_ps(50));
        assert_eq!(t, Time::from_ps(150));
        assert_eq!(n.events_injected(), 0);
    }

    #[test]
    fn scripted_noise_applies_in_window() {
        let mut n = ScriptedNoise::new(vec![
            (Rank(0), Time::from_ps(10), Span::from_ps(5)),
            (Rank(1), Time::from_ps(0), Span::from_ps(100)),
        ]);
        // Rank 0 interval [0, 20) covers t=10: stretched by 5.
        let end = n.stretch(Rank(0), Time::ZERO, Span::from_ps(20));
        assert_eq!(end, Time::from_ps(25));
        // Rank 0 has no more detours.
        let end = n.stretch(Rank(0), end, Span::from_ps(20));
        assert_eq!(end, Time::from_ps(45));
        // Rank 1's detour applies to its first interval.
        let end = n.stretch(Rank(1), Time::from_ps(7), Span::from_ps(3));
        assert_eq!(end, Time::from_ps(110));
        assert_eq!(n.events_injected(), 2);
    }

    #[test]
    fn scripted_noise_defers_future_detours() {
        let mut n = ScriptedNoise::new(vec![(Rank(0), Time::from_ps(1_000), Span::from_ps(7))]);
        // Interval ends before the detour is due: unchanged.
        let end = n.stretch(Rank(0), Time::ZERO, Span::from_ps(10));
        assert_eq!(end, Time::from_ps(10));
        // A later interval that covers it picks it up.
        let end = n.stretch(Rank(0), Time::from_ps(995), Span::from_ps(10));
        assert_eq!(end, Time::from_ps(1_012));
    }
}
