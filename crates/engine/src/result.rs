//! Simulation outcomes and errors.

use cesim_model::{Span, Time};
use std::error::Error;
use std::fmt;

/// The outcome of a completed simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct SimResult {
    /// Application completion time: the latest op completion over all
    /// ranks.
    pub finish: Time,
    /// Per-rank completion times.
    pub per_rank_finish: Vec<Time>,
    /// Per-rank CPU-occupied time (useful work plus injected detours).
    pub per_rank_busy: Vec<Span>,
    /// Per-rank useful work (busy minus detours).
    pub per_rank_work: Vec<Span>,
    /// Total operations executed.
    pub ops_executed: u64,
    /// Messages delivered (payload-bearing; RTS/CTS control messages are
    /// counted separately).
    pub msgs_delivered: u64,
    /// Rendezvous control messages (RTS + CTS) delivered.
    pub control_msgs: u64,
    /// Detour events the noise model injected during the run.
    pub noise_events: u64,
    /// High-water mark of any rank's unexpected-message queue.
    pub max_unexpected: usize,
    /// High-water mark of any rank's posted-receive queue.
    pub max_posted: usize,
    /// Total events processed by the event loop.
    pub events_processed: u64,
}

impl SimResult {
    /// Earliest-finishing rank (load-imbalance diagnostics).
    pub fn min_rank_finish(&self) -> Time {
        self.per_rank_finish
            .iter()
            .copied()
            .min()
            .unwrap_or(Time::ZERO)
    }

    /// Slowdown of this run relative to a baseline completion time, as a
    /// percentage (`0.0` = identical, `100.0` = twice as slow). Returns
    /// `None` for a non-positive baseline, where the ratio is undefined.
    pub fn slowdown_pct(&self, baseline: Time) -> Option<f64> {
        if baseline <= Time::ZERO {
            return None;
        }
        Some((self.finish.as_secs_f64() / baseline.as_secs_f64() - 1.0) * 100.0)
    }

    /// Spread between the last and first rank to finish.
    pub fn finish_skew(&self) -> Span {
        self.finish.saturating_since(self.min_rank_finish())
    }

    /// Total CPU time stolen by detours across all ranks
    /// (`Σ busy − work`).
    pub fn total_stolen(&self) -> Span {
        self.per_rank_busy
            .iter()
            .zip(&self.per_rank_work)
            .map(|(&b, &w)| b.saturating_sub(w))
            .sum()
    }

    /// Time a rank spent neither computing nor in detours (blocked on
    /// messages or done early). Returns `None` for an out-of-range rank.
    pub fn blocked_time(&self, rank: usize) -> Option<Span> {
        let finish = self.per_rank_finish.get(rank)?;
        let busy = self.per_rank_busy.get(rank)?;
        Some(finish.since(Time::ZERO).saturating_sub(*busy))
    }

    /// Noise amplification: wall-clock time added per second of CPU time
    /// stolen on the *average* rank. 1.0 means detours fully serialize
    /// into the critical path on every rank; values above the per-rank
    /// average indicate propagation/amplification, values below indicate
    /// absorption. Returns `None` when nothing was stolen.
    pub fn amplification(&self, baseline: Time) -> Option<f64> {
        let stolen = self.total_stolen().as_secs_f64();
        if stolen == 0.0 || self.per_rank_finish.is_empty() {
            return None;
        }
        let added = self.finish.saturating_since(baseline).as_secs_f64();
        let per_rank_stolen = stolen / self.per_rank_finish.len() as f64;
        if per_rank_stolen == 0.0 {
            return None;
        }
        Some(added / per_rank_stolen)
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "finished at {} ({} ops, {} msgs, {} control, {} noise events)",
            self.finish,
            self.ops_executed,
            self.msgs_delivered,
            self.control_msgs,
            self.noise_events
        )
    }
}

/// Why a simulation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The event queue drained with operations still incomplete — the
    /// schedule deadlocks (e.g. a receive whose message is never sent).
    Deadlock {
        /// Operations that did complete.
        completed: u64,
        /// Total operations in the schedule.
        total: u64,
        /// A few human-readable examples of stuck operations.
        stuck_examples: Vec<String>,
    },
    /// The schedule was empty (no ranks).
    EmptySchedule,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock {
                completed,
                total,
                stuck_examples,
            } => {
                writeln!(
                    f,
                    "simulation deadlocked: {completed}/{total} ops completed; stuck ops:"
                )?;
                for e in stuck_examples {
                    writeln!(f, "  - {e}")?;
                }
                Ok(())
            }
            SimError::EmptySchedule => write!(f, "schedule has no ranks"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> SimResult {
        SimResult {
            finish: Time::from_ps(2_000),
            per_rank_finish: vec![Time::from_ps(1_500), Time::from_ps(2_000)],
            per_rank_busy: vec![Span::from_ps(1_200), Span::from_ps(1_000)],
            per_rank_work: vec![Span::from_ps(1_000), Span::from_ps(1_000)],
            ops_executed: 4,
            msgs_delivered: 1,
            control_msgs: 0,
            noise_events: 0,
            max_unexpected: 1,
            max_posted: 1,
            events_processed: 5,
        }
    }

    #[test]
    fn slowdown_math() {
        let r = result();
        assert!((r.slowdown_pct(Time::from_ps(1_000)).unwrap() - 100.0).abs() < 1e-9);
        assert!((r.slowdown_pct(Time::from_ps(2_000)).unwrap()).abs() < 1e-9);
        // Undefined against a zero baseline, not a panic.
        assert_eq!(r.slowdown_pct(Time::ZERO), None);
    }

    #[test]
    fn skew_and_min() {
        let r = result();
        assert_eq!(r.min_rank_finish(), Time::from_ps(1_500));
        assert_eq!(r.finish_skew(), Span::from_ps(500));
    }

    #[test]
    fn accounting_metrics() {
        let r = result();
        assert_eq!(r.total_stolen(), Span::from_ps(200));
        assert_eq!(r.blocked_time(0), Some(Span::from_ps(300)));
        assert_eq!(r.blocked_time(1), Some(Span::from_ps(1_000)));
        // Out-of-range rank is None, not a panic.
        assert_eq!(r.blocked_time(2), None);
        // 2000 finish vs 1800 baseline: 200 ps added; stolen/rank = 100 ps.
        let amp = r.amplification(Time::from_ps(1_800)).unwrap();
        assert!((amp - 2.0).abs() < 1e-9);
        // Nothing stolen -> None.
        let mut clean = result();
        clean.per_rank_busy = clean.per_rank_work.clone();
        assert_eq!(clean.amplification(Time::from_ps(1_800)), None);
    }

    #[test]
    fn error_display() {
        let e = SimError::Deadlock {
            completed: 1,
            total: 3,
            stuck_examples: vec!["rank 0 op 2: recv ...".into()],
        };
        let s = format!("{e}");
        assert!(s.contains("1/3"));
        assert!(s.contains("recv"));
        assert_eq!(
            format!("{}", SimError::EmptySchedule),
            "schedule has no ranks"
        );
    }
}
