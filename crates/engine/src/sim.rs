//! The LogGOPS discrete-event simulation loop.
//!
//! See the crate docs for the cost model. Implementation notes:
//!
//! * Per-rank **CPU** and **NIC** cursors (`cpu_free`, `nic_free`)
//!   serialize overheads; the event queue only carries *op readiness* and
//!   *message arrival* — resource waiting is folded into start-time
//!   computation (`start = max(ready, cpu_free)`), which keeps the event
//!   count at O(ops + messages).
//! * Dependency fan-out uses the global CSR of the immutable
//!   [`CompiledSchedule`], built **once** per schedule and shared across
//!   runs; all mutable per-run state lives in a [`RunScratch`] that is
//!   reset in place (no reallocation) between runs.
//! * All CPU intervals pass through the [`NoiseModel`], in non-decreasing
//!   start order per rank.
//! * Rendezvous transfers are three chained messages (RTS → CTS →
//!   payload); RTS matches like a normal message, the payload is routed
//!   directly to the matched receive.

use crate::compile::{CompiledSchedule, OpClass, ANY_SOURCE};
use crate::matchq::TagQueue;
use crate::noise::NoiseModel;
use crate::queue::{EvKey, EventQueue};
use crate::record::{MsgClass, NullRecorder, Recorder, SegKind, SimEvent};
use crate::result::{SimError, SimResult};
use crate::topology::{FlatCrossbar, Topology};
use cesim_goal::{Rank, Schedule, Tag};
use cesim_model::{LogGopsParams, Span, Time};
use std::cell::RefCell;
use std::sync::Arc;

#[derive(Clone, Copy, Debug)]
pub(crate) enum MsgKind {
    /// Eagerly buffered payload.
    Eager,
    /// Rendezvous request-to-send; `send_op` identifies the sender's op.
    Rts { send_op: u32 },
    /// Rendezvous clear-to-send; echoes the sender's op and names the
    /// matched receive.
    Cts { send_op: u32, recv_op: u32 },
    /// Rendezvous payload, routed directly to the matched receive.
    Payload { recv_op: u32 },
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Msg {
    /// Unique id tying a recorder's `MsgSend` to its `MsgDeliver`.
    id: u64,
    src: u32,
    /// Destination rank — the shard router's only lookup.
    pub(crate) dst: u32,
    tag: Tag,
    bytes: u64,
    /// The op on `src` this message serves (recorder attribution; for a
    /// CTS this is the *receive* op answering the RTS).
    src_op: u32,
    kind: MsgKind,
}

impl Msg {
    fn class(&self) -> MsgClass {
        match self.kind {
            MsgKind::Eager => MsgClass::Eager,
            MsgKind::Rts { .. } => MsgClass::Rts,
            MsgKind::Cts { .. } => MsgClass::Cts,
            MsgKind::Payload { .. } => MsgClass::Payload,
        }
    }
}

/// Index of an in-flight message in the [`MsgSlab`] arena. The
/// generation makes stale copies detectable: a ref is valid for exactly
/// one `alloc`-to-`take` lifetime of its slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct MsgRef {
    slot: u32,
    gen: u32,
}

/// Generational arena for in-flight messages.
///
/// Between its send-side injection and its arrival dispatch a message
/// used to ride inside the `Event` enum, making every heap entry
/// `Msg`-sized. The slab keeps the one live copy here and hands the
/// queue an 8-byte [`MsgRef`] instead, so heap sift swaps move a
/// quarter of the bytes. Slots are recycled through a free list;
/// generations only ever increase (per slot), so a ref leaked across
/// [`MsgSlab::reset`] can never alias a later message.
#[derive(Default)]
pub(crate) struct MsgSlab {
    msgs: Vec<Msg>,
    gens: Vec<u32>,
    free: Vec<u32>,
}

impl MsgSlab {
    /// Park `msg` in the arena until its arrival; returns its ref.
    #[inline]
    fn alloc(&mut self, msg: Msg) -> MsgRef {
        match self.free.pop() {
            Some(slot) => {
                self.msgs[slot as usize] = msg;
                MsgRef {
                    slot,
                    gen: self.gens[slot as usize],
                }
            }
            None => {
                let slot = self.msgs.len() as u32;
                self.msgs.push(msg);
                self.gens.push(0);
                MsgRef { slot, gen: 0 }
            }
        }
    }

    /// Retire `r` and return its message. The slot's generation is
    /// bumped, so `r` (and any copy of it) is dead from here on.
    #[inline]
    fn take(&mut self, r: MsgRef) -> Msg {
        let i = r.slot as usize;
        debug_assert_eq!(self.gens[i], r.gen, "stale MsgRef dereferenced");
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.free.push(r.slot);
        self.msgs[i]
    }

    /// Messages currently in flight.
    #[cfg(test)]
    fn live(&self) -> usize {
        self.msgs.len() - self.free.len()
    }

    /// Would `r` still resolve to the message it was issued for?
    #[cfg(test)]
    fn is_current(&self, r: MsgRef) -> bool {
        self.gens[r.slot as usize] == r.gen
    }

    /// Reset for a new replica, keeping all allocations: every slot
    /// becomes free and every generation is bumped, so refs issued
    /// before the reset can never alias messages allocated after it
    /// (generations stay monotone across resets).
    fn reset(&mut self) {
        for g in &mut self.gens {
            *g = g.wrapping_add(1);
        }
        self.free.clear();
        self.free.extend((0..self.msgs.len() as u32).rev());
    }
}

#[derive(Clone, Copy, Debug)]
pub(crate) enum Event {
    OpReady { rank: u32, op: u32 },
    Arrive(MsgRef),
}

// The matching tag is the `TagQueue` bucket key, not repeated in the
// queued records.
#[derive(Clone, Copy, Debug)]
struct PostedRecv {
    op: u32,
    src: Option<u32>,
    posted_at: Time,
}

#[derive(Clone, Copy, Debug)]
enum UnexKind {
    Eager,
    Rts { send_op: u32 },
}

#[derive(Clone, Copy, Debug)]
struct UnexMsg {
    /// Message id (recorder attribution, see [`Msg::id`]).
    id: u64,
    src: u32,
    /// Sender-side op (recorder attribution).
    src_op: u32,
    bytes: u64,
    arrived: Time,
    kind: UnexKind,
}

/// All mutable per-run simulation state, reusable across runs.
///
/// The immutable half of a prepared simulation is the
/// [`CompiledSchedule`]; everything the event loop mutates — CPU/NIC
/// cursors, the indegree working copy, done bits, match queues, the
/// event heap, statistics counters — lives here. [`reset`](RunScratch::reset)
/// clears it in O(touched) **without freeing**: vectors keep their
/// capacity, the heap keeps its buffer, and [`TagQueue`]s park drained
/// buckets for reuse, so repeated runs of the same schedule reach a
/// steady state with near-zero allocator traffic.
///
/// [`simulate_compiled`] maintains one scratch per thread automatically;
/// hold one explicitly (via [`RunScratch::new`] +
/// [`simulate_compiled_with`]) to control reuse yourself.
#[derive(Default)]
pub struct RunScratch {
    // Per-rank resource cursors and accounting (indexed by rank minus
    // `rank_lo` — the serial engine owns every rank, so `rank_lo` is 0
    // and the index is the rank itself; a shard owns `[rank_lo, rank_hi)`).
    cpu_free: Vec<Time>,
    nic_free: Vec<Time>,
    pub(crate) finish: Vec<Time>,
    /// CPU-occupied time (useful work + injected detours).
    pub(crate) busy: Vec<Span>,
    /// Useful work requested (busy minus detours).
    pub(crate) work: Vec<Span>,
    /// Per-rank event-creation counters — the `cseq` half of [`EvKey`].
    push_seq: Vec<u32>,
    // Per-op state (indexed by flat op id minus `op_base`).
    pub(crate) indeg: Vec<u32>,
    pub(crate) done: Vec<bool>,
    /// Per-op dispatch records (see [`RunScratch::plan_dispatch`]),
    /// cached under `plan_stamp` across resets.
    ops: Vec<PackedOp>,
    /// `(schedule uid, eager threshold, rank_lo, rank_hi)` the current
    /// `ops` table was planned for.
    plan_stamp: Option<(u64, u64, u32, u32)>,
    // Per-rank MPI match queues.
    posted: Vec<TagQueue<PostedRecv>>,
    unexpected: Vec<TagQueue<UnexMsg>>,
    /// In-flight message arena; `Event::Arrive` holds refs into it.
    slab: MsgSlab,
    pub(crate) queue: EventQueue<Event>,
    /// Reused buffer for the batch dispatch loop ([`EventQueue::pop_batch`]).
    pub(crate) batch: Vec<(Time, EvKey, Event)>,
    /// Messages created here but owned by another shard, staged until
    /// the next window boundary. Always empty on the serial path.
    /// (Only `Arrive` events ever cross shards — dependencies are
    /// rank-local, so `OpReady` always lands on the creating shard.)
    pub(crate) outbox: Vec<(Time, EvKey, Msg)>,
    /// First rank this scratch owns (0 on the serial path).
    pub(crate) rank_lo: u32,
    /// One past the last rank this scratch owns.
    pub(crate) rank_hi: u32,
    /// Flat-op offset of `rank_lo` (0 on the serial path).
    pub(crate) op_base: usize,
    // Run statistics.
    pub(crate) completed: u64,
    pub(crate) msgs_delivered: u64,
    pub(crate) control_msgs: u64,
    pub(crate) max_unexpected: usize,
    pub(crate) max_posted: usize,
    pub(crate) next_msg_id: u64,
    /// Next detour id (bumped only when a recorder is enabled, so the
    /// default path never touches it past reset).
    pub(crate) next_detour_id: u64,
}

impl RunScratch {
    /// An empty scratch; sized lazily by the first
    /// [`reset`](RunScratch::reset).
    pub fn new() -> Self {
        RunScratch::default()
    }

    /// Re-initialize for a run of `cs`, retaining every allocation:
    /// vectors are cleared and refilled in place, the event heap keeps
    /// its buffer, and the match queues recycle their bucket `VecDeque`s.
    /// A reset scratch is indistinguishable from a fresh one (event
    /// creation counters restart at zero), which is what keeps reuse
    /// byte-identical to fresh-per-run simulation.
    pub fn reset(&mut self, cs: &CompiledSchedule) {
        self.reset_range(cs, 0, cs.num_ranks() as u32);
    }

    /// [`reset`](RunScratch::reset) restricted to the rank range
    /// `[lo, hi)` — the per-shard form. All per-rank and per-op state is
    /// sized for the owned slice only; `rank_lo`/`op_base` shift global
    /// ids into it.
    pub(crate) fn reset_range(&mut self, cs: &CompiledSchedule, lo: u32, hi: u32) {
        debug_assert!(lo < hi && hi as usize <= cs.num_ranks());
        let nranks = (hi - lo) as usize;
        let op_base = cs.rank_off[lo as usize] as usize;
        let op_end = if (hi as usize) == cs.num_ranks() {
            cs.total_ops() as usize
        } else {
            cs.rank_off[hi as usize] as usize
        };
        let total = op_end - op_base;
        self.rank_lo = lo;
        self.rank_hi = hi;
        self.op_base = op_base;
        reset_fill(&mut self.cpu_free, nranks, Time::ZERO);
        reset_fill(&mut self.nic_free, nranks, Time::ZERO);
        reset_fill(&mut self.finish, nranks, Time::ZERO);
        reset_fill(&mut self.busy, nranks, Span::ZERO);
        reset_fill(&mut self.work, nranks, Span::ZERO);
        reset_fill(&mut self.push_seq, nranks, 0);
        self.indeg.clear();
        self.indeg.extend_from_slice(&cs.indeg0[op_base..op_end]);
        reset_fill(&mut self.done, total, false);
        self.posted.resize_with(nranks, TagQueue::new);
        self.unexpected.resize_with(nranks, TagQueue::new);
        for q in &mut self.posted {
            q.clear();
        }
        for q in &mut self.unexpected {
            q.clear();
        }
        self.slab.reset();
        self.queue.clear();
        self.batch.clear();
        self.outbox.clear();
        // Pre-size for the initial ready wavefront plus in-flight
        // messages, from the *owned slice's* op count (not the global
        // total — a shard's queue only ever sees its own ranks' events)
        // so large sharded runs avoid repeated buffer regrowth without
        // over-allocating per shard. No-op once the buffer is warm.
        self.queue.reserve(total.clamp(64, 1 << 22));
        self.completed = 0;
        self.msgs_delivered = 0;
        self.control_msgs = 0;
        self.max_unexpected = 0;
        self.max_posted = 0;
        self.next_msg_id = 0;
        self.next_detour_id = 0;
    }

    /// Seed the initial ready wavefront: every root op on an owned rank,
    /// in `cs.roots` (rank-major) order, keyed by its own rank's creation
    /// counter. One O(n) heapify (see [`EventQueue::seed`]).
    pub(crate) fn seed_roots(&mut self, cs: &CompiledSchedule) {
        let (lo, hi) = (self.rank_lo, self.rank_hi);
        let push_seq = &mut self.push_seq;
        self.queue.seed(
            cs.roots
                .iter()
                .filter(|&&(rank, _)| rank >= lo && rank < hi)
                .map(|&(rank, op)| {
                    let i = (rank - lo) as usize;
                    let cseq = push_seq[i];
                    push_seq[i] = cseq + 1;
                    (
                        Time::ZERO,
                        EvKey { crank: rank, cseq },
                        Event::OpReady { rank, op },
                    )
                }),
        );
    }

    /// Start provisional message/detour ids at `base` — each shard of a
    /// recorded run gets a distinct high-bits base so provisional ids
    /// never collide before the merge renumbers them densely.
    pub(crate) fn offset_ids(&mut self, base: u64) {
        self.next_msg_id = base;
        self.next_detour_id = base;
    }

    /// (Re)build the per-op dispatch table for the owned slice: every
    /// field the hot loop needs — op class with the eager-vs-rendezvous
    /// protocol decision folded into the opcode, the size/duration
    /// argument, peer, tag, and the dependency fan-out range —
    /// interleaved into one 32-byte record. The [`CompiledSchedule`]'s
    /// parallel arrays are laid out column-major; dispatch visits ops in
    /// data-dependent order across ranks, so reading five columns per op
    /// means up to five cache misses where the packed record pays one.
    /// The table depends only on `(schedule, eager threshold, rank
    /// slice)` and is cached across resets under that stamp — replica
    /// reuse of a warm scratch never replans.
    pub(crate) fn plan_dispatch(&mut self, cs: &CompiledSchedule, params: &LogGopsParams) {
        let stamp = (cs.uid, params.eager_threshold, self.rank_lo, self.rank_hi);
        if self.plan_stamp == Some(stamp) {
            return;
        }
        let lo = self.op_base;
        let hi = lo + self.done.len();
        self.ops.clear();
        self.ops.reserve(hi - lo);
        for f in lo..hi {
            let (opcode, arg) = match cs.class[f] {
                OpClass::Calc => (OPC_CALC, cs.dur[f].as_ps()),
                // Branch-free protocol selection: the threshold
                // comparison's boolean is the opcode offset.
                OpClass::Send => (
                    OPC_SEND_EAGER + params.is_rendezvous(cs.bytes[f]) as u32,
                    cs.bytes[f],
                ),
                OpClass::Recv => (OPC_RECV, cs.bytes[f]),
            };
            self.ops.push(PackedOp {
                arg,
                dep_lo: cs.dep_off[f],
                dep_cnt: cs.dep_off[f + 1] - cs.dep_off[f],
                peer: cs.peer[f],
                tag: cs.tag[f],
                opcode,
            });
        }
        self.plan_stamp = Some(stamp);
    }

    /// Accept a cross-shard message routed here by the sharded driver:
    /// park it in the local arena and enqueue its arrival under the key
    /// its creator assigned (never re-keyed — the content-computable
    /// key is what keeps the merged pop order serial).
    pub(crate) fn deliver(&mut self, time: Time, key: EvKey, msg: Msg) {
        let r = self.slab.alloc(msg);
        self.queue.push(time, key, Event::Arrive(r));
    }
}

// Dispatch opcodes: `OpClass` with the send-protocol choice precomputed.
const OPC_CALC: u32 = 0;
const OPC_SEND_EAGER: u32 = 1;
const OPC_SEND_REND: u32 = 2;
const OPC_RECV: u32 = 3;

/// One op's dispatch-hot fields in a single 32-byte record (two per
/// cache line): opcode with the send protocol pre-decided, the
/// class-dependent argument, peer/tag, and the dependency fan-out range
/// of [`CompiledSchedule::dep_tgt`] — everything [`Engine::exec_op`] and
/// [`Engine::complete`] read per dispatched op.
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct PackedOp {
    /// Calc: duration in ps. Send/Recv: payload bytes.
    arg: u64,
    /// First dependent edge in `dep_tgt` (completion fan-out).
    dep_lo: u32,
    /// Dependent-edge count.
    dep_cnt: u32,
    /// Send destination / receive source filter ([`ANY_SOURCE`] =
    /// wildcard); unused for calcs.
    peer: u32,
    /// Message tag; unused for calcs.
    tag: Tag,
    /// One of the `OPC_*` dispatch codes.
    opcode: u32,
}

/// Clear + refill a vector in place, keeping its capacity.
fn reset_fill<T: Copy>(v: &mut Vec<T>, n: usize, val: T) {
    v.clear();
    v.resize(n, val);
}

/// A configured simulation, ready to [`run`](Simulator::run).
///
/// Owns an [`Arc`]-shared [`CompiledSchedule`] plus one [`RunScratch`].
/// Generic over a [`Recorder`]; the default [`NullRecorder`] compiles all
/// instrumentation away (see [`crate::record`]). Attach a live recorder
/// with [`Simulator::with_recorder`].
///
/// For many runs of one schedule prefer [`simulate_compiled`] (pooled
/// per-thread scratch) — this type pays a fresh scratch per simulator.
pub struct Simulator<R: Recorder = NullRecorder> {
    cs: Arc<CompiledSchedule>,
    params: LogGopsParams,
    topology: Box<dyn Topology>,
    scratch: RunScratch,
    rec: R,
}

/// Simulate `sched` under `params`, injecting noise from `noise`.
///
/// Convenience wrapper around [`Simulator::new`] + [`Simulator::run`].
pub fn simulate<N: NoiseModel + ?Sized>(
    sched: &Schedule,
    params: &LogGopsParams,
    noise: &mut N,
) -> Result<SimResult, SimError> {
    Simulator::new(sched, *params).run(noise)
}

/// Simulate a [`CompiledSchedule`] under `params`, reusing a per-thread
/// [`RunScratch`] pool — the fast path for replica sweeps: compile once,
/// wrap in an [`Arc`], and call this from every worker. Results are
/// byte-identical to [`simulate`] on the source [`Schedule`].
pub fn simulate_compiled<N: NoiseModel + ?Sized>(
    cs: &CompiledSchedule,
    params: &LogGopsParams,
    noise: &mut N,
) -> Result<SimResult, SimError> {
    thread_local! {
        static SCRATCH: RefCell<RunScratch> = RefCell::new(RunScratch::new());
    }
    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        simulate_compiled_with(cs, params, &mut scratch, noise)
    })
}

/// [`simulate_compiled`] with caller-managed scratch: resets `scratch`
/// and runs `cs` in it. Reusing one scratch across runs (any mix of
/// schedules and noise seeds) gives results identical to a fresh scratch
/// per run.
pub fn simulate_compiled_with<N: NoiseModel + ?Sized>(
    cs: &CompiledSchedule,
    params: &LogGopsParams,
    scratch: &mut RunScratch,
    noise: &mut N,
) -> Result<SimResult, SimError> {
    run_engine(cs, *params, &FlatCrossbar, scratch, NullRecorder, noise)
}

impl Simulator {
    /// Prepare a simulation of `sched` under `params` (instrumentation
    /// disabled; see [`Simulator::with_recorder`]).
    ///
    /// Thin wrapper over [`CompiledSchedule::compile`] +
    /// [`Simulator::from_compiled`]: compiles the schedule privately and
    /// runs it once.
    pub fn new(sched: &Schedule, params: LogGopsParams) -> Self {
        Simulator::from_compiled(Arc::new(CompiledSchedule::compile(sched)), params)
    }

    /// Prepare a simulation of an already-compiled schedule, sharing the
    /// [`Arc`] instead of recompiling.
    pub fn from_compiled(cs: Arc<CompiledSchedule>, params: LogGopsParams) -> Self {
        Simulator {
            cs,
            params,
            topology: Box::new(FlatCrossbar),
            scratch: RunScratch::new(),
            rec: NullRecorder,
        }
    }
}

impl<R: Recorder> Simulator<R> {
    /// Attach a recorder, enabling instrumentation for this run.
    ///
    /// Pass `&mut recorder` to keep ownership and inspect the recorder
    /// after [`run`](Simulator::run) consumes the simulator.
    pub fn with_recorder<R2: Recorder>(self, rec: R2) -> Simulator<R2> {
        Simulator {
            cs: self.cs,
            params: self.params,
            topology: self.topology,
            scratch: self.scratch,
            rec,
        }
    }

    /// Replace the network topology (default: the paper's flat crossbar).
    /// Only has an effect when `params.hop_latency` is non-zero.
    pub fn with_topology(mut self, topology: Box<dyn Topology>) -> Self {
        self.topology = topology;
        self
    }

    /// Run to completion (or deadlock).
    pub fn run<N: NoiseModel + ?Sized>(mut self, noise: &mut N) -> Result<SimResult, SimError> {
        run_engine(
            &self.cs,
            self.params,
            self.topology.as_ref(),
            &mut self.scratch,
            self.rec,
            noise,
        )
    }
}

/// The event loop: run `cs` in `scratch` (reset first) to completion.
pub(crate) fn run_engine<R: Recorder, N: NoiseModel + ?Sized>(
    cs: &CompiledSchedule,
    params: LogGopsParams,
    topology: &dyn Topology,
    scratch: &mut RunScratch,
    rec: R,
    noise: &mut N,
) -> Result<SimResult, SimError> {
    if cs.num_ranks() == 0 {
        return Err(SimError::EmptySchedule);
    }
    scratch.reset(cs);
    scratch.plan_dispatch(cs, &params);
    // Seed the initial ready wavefront in one O(n) heapify; root keys
    // reproduce the legacy rank-major seeding order (time 0, rank-major
    // `crank`, in-rank `cseq` in root order).
    scratch.seed_roots(cs);
    let mut batch = std::mem::take(&mut scratch.batch);
    let mut eng = Engine {
        cs,
        params,
        topology,
        s: scratch,
        rec,
    };
    let mut events_processed = 0u64;
    // Batched delivery: drain whole same-timestamp runs in one heap
    // operation, then dispatch them in order. Dispatching an entry can
    // push events that sort *before* a later batch entry (zero-duration
    // completions ready dependents at the same timestamp under a lower
    // creator key), so the inner loop re-checks the heap minimum before
    // every batch entry — the dispatched sequence is exactly the one
    // repeated `pop` would produce.
    while eng.s.queue.pop_batch(&mut batch) > 0 {
        for &(bt, bkey, bev) in &batch {
            while let Some((qt, qkey)) = eng.s.queue.peek_min() {
                if (qt, qkey) < (bt, bkey) {
                    let (t, _key, ev) = eng.s.queue.pop().expect("peeked entry exists");
                    events_processed += 1;
                    eng.dispatch(noise, ev, t);
                } else {
                    break;
                }
            }
            events_processed += 1;
            eng.dispatch(noise, bev, bt);
        }
    }
    eng.s.batch = batch;
    if eng.s.completed != cs.total_ops() {
        return Err(eng.deadlock_report());
    }
    let per_rank_finish = eng.s.finish.clone();
    let finish = per_rank_finish.iter().copied().max().unwrap_or(Time::ZERO);
    Ok(SimResult {
        finish,
        per_rank_finish,
        per_rank_busy: eng.s.busy.clone(),
        per_rank_work: eng.s.work.clone(),
        ops_executed: eng.s.completed,
        msgs_delivered: eng.s.msgs_delivered,
        control_msgs: eng.s.control_msgs,
        noise_events: noise.events_injected(),
        max_unexpected: eng.s.max_unexpected,
        max_posted: eng.s.max_posted,
        events_processed,
    })
}

/// The hot-loop view: immutable compiled schedule + mutable scratch.
pub(crate) struct Engine<'e, R: Recorder> {
    pub(crate) cs: &'e CompiledSchedule,
    pub(crate) params: LogGopsParams,
    pub(crate) topology: &'e dyn Topology,
    pub(crate) s: &'e mut RunScratch,
    pub(crate) rec: R,
}

impl<'e, R: Recorder> Engine<'e, R> {
    /// Process one popped event (the body of the serial loop; the
    /// sharded window loop calls it directly).
    #[inline]
    pub(crate) fn dispatch<N: NoiseModel + ?Sized>(&mut self, noise: &mut N, ev: Event, t: Time) {
        match ev {
            Event::OpReady { rank, op } => self.exec_op(noise, rank, op, t),
            Event::Arrive(mref) => {
                let msg = self.s.slab.take(mref);
                self.arrive(noise, msg, t)
            }
        }
    }

    /// Local (owned-slice) index of rank `rank`.
    #[inline]
    fn li(&self, rank: u32) -> usize {
        debug_assert!(rank >= self.s.rank_lo && rank < self.s.rank_hi);
        (rank - self.s.rank_lo) as usize
    }

    /// Local (owned-slice) index of global flat op id `f`.
    #[inline]
    fn lf(&self, f: usize) -> usize {
        f - self.s.op_base
    }

    /// Creating rank `crank`'s next event key (its private monotone
    /// creation counter — the content-computable half of determinism).
    #[inline]
    fn next_key(&mut self, crank: u32) -> EvKey {
        let i = self.li(crank);
        let cseq = self.s.push_seq[i];
        debug_assert!(cseq < u32::MAX, "per-rank event-creation counter overflow");
        self.s.push_seq[i] = cseq + 1;
        EvKey { crank, cseq }
    }

    /// Schedule op readiness at `time`. Dependencies never cross ranks,
    /// so an `OpReady` is always local to the creating shard.
    #[inline]
    fn push_op_ready(&mut self, rank: u32, time: Time, op: u32) {
        let key = self.next_key(rank);
        self.s.queue.push(time, key, Event::OpReady { rank, op });
    }

    /// Schedule `msg`'s arrival at `time`, keyed by creating rank
    /// `crank`'s next creation counter. Messages for ranks this scratch
    /// owns are parked in the local arena and enqueued; anything else is
    /// staged (as the full `Msg` — the ref would be meaningless in
    /// another slab) in the outbox for the sharded driver to route at
    /// the next window boundary. (The serial engine owns every rank, so
    /// the outbox arm is dead there.)
    #[inline]
    fn push_arrive(&mut self, crank: u32, time: Time, msg: Msg) {
        let key = self.next_key(crank);
        if msg.dst >= self.s.rank_lo && msg.dst < self.s.rank_hi {
            let r = self.s.slab.alloc(msg);
            self.s.queue.push(time, key, Event::Arrive(r));
        } else {
            self.s.outbox.push((time, key, msg));
        }
    }

    /// Next unique message id (ties `MsgSend` to `MsgDeliver` records).
    #[inline]
    fn new_msg_id(&mut self) -> u64 {
        let id = self.s.next_msg_id;
        self.s.next_msg_id += 1;
        id
    }

    /// Record a message injection (recorder enabled only).
    #[inline]
    fn record_send(&mut self, msg: &Msg, inject: Time, arrive: Time) {
        if R::ENABLED {
            self.rec.record(SimEvent::MsgSend {
                id: msg.id,
                src: msg.src,
                dst: msg.dst,
                src_op: msg.src_op,
                class: msg.class(),
                bytes: msg.bytes,
                tag: msg.tag,
                inject,
                arrive,
            });
        }
    }

    /// Record queue depths on `rank` after a match-queue mutation.
    #[inline]
    fn record_queues(&mut self, rank: u32, at: Time) {
        if R::ENABLED {
            self.rec.record(SimEvent::QueueDepth {
                rank,
                at,
                unexpected: self.s.unexpected[self.li(rank)].len() as u32,
                posted: self.s.posted[self.li(rank)].len() as u32,
            });
        }
    }

    /// Per-hop latency surcharge for a `src → dst` message:
    /// `hop_latency · (hops − 1)`.
    #[inline]
    fn wire_extra(&self, src: u32, dst: u32) -> cesim_model::Span {
        if self.params.hop_latency.is_zero() {
            return cesim_model::Span::ZERO;
        }
        let hops = self.topology.hops(Rank(src), Rank(dst));
        self.params.hop_latency * hops.saturating_sub(1) as u64
    }

    /// Occupy `rank`'s CPU with `work` on behalf of `op`, starting no
    /// earlier than `ready`, routing the interval through the noise model
    /// and accounting busy / useful time.
    fn occupy_cpu<N: NoiseModel + ?Sized>(
        &mut self,
        noise: &mut N,
        rank: u32,
        op: u32,
        seg: SegKind,
        ready: Time,
        work: Span,
    ) -> Time {
        let r = self.li(rank);
        let start = ready.max(self.s.cpu_free[r]);
        let end = noise.stretch(Rank(rank), start, work);
        self.s.cpu_free[r] = end;
        self.s.busy[r] += end.since(start);
        self.s.work[r] += work;
        if R::ENABLED {
            self.rec.record(SimEvent::Exec {
                rank,
                op,
                seg,
                start,
                end,
                work,
            });
            let detour = end.since(start).saturating_sub(work);
            if !detour.is_zero() {
                let id = self.s.next_detour_id;
                self.s.next_detour_id += 1;
                // Tail-placement convention: the noise model reports only
                // the stretched end, so place the detour at the segment
                // tail (`start + work .. end`).
                self.rec.record(SimEvent::Detour {
                    id,
                    rank,
                    op,
                    at: start + work,
                    dur: detour,
                });
            }
        }
        end
    }

    fn exec_op<N: NoiseModel + ?Sized>(&mut self, noise: &mut N, rank: u32, op: u32, t: Time) {
        let f = self.cs.flat(rank, op);
        // Table-driven dispatch: one 32-byte record per op, class and
        // send protocol precomputed by `plan_dispatch` — the hot loop
        // never re-derives the eager-vs-rendezvous decision and touches
        // a single cache line per op instead of one per schedule column.
        let o = self.s.ops[self.lf(f)];
        match o.opcode {
            OPC_CALC => {
                let dur = Span::from_ps(o.arg);
                let end = self.occupy_cpu(noise, rank, op, SegKind::Calc, t, dur);
                self.complete(rank, op, end);
            }
            OPC_SEND_REND => {
                let dst = o.peer;
                let bytes = o.arg;
                let tag = o.tag;
                // RTS control message; the send op stays open until the
                // CTS returns and the payload is injected.
                let cpu_end =
                    self.occupy_cpu(noise, rank, op, SegKind::Rts, t, self.params.overhead);
                let r = self.li(rank);
                let inject = cpu_end.max(self.s.nic_free[r]);
                self.s.nic_free[r] = inject + self.params.gap;
                let arrive = inject + self.params.latency + self.wire_extra(rank, dst);
                let msg = Msg {
                    id: self.new_msg_id(),
                    src: rank,
                    dst,
                    tag,
                    bytes,
                    src_op: op,
                    kind: MsgKind::Rts { send_op: op },
                };
                self.record_send(&msg, inject, arrive);
                self.push_arrive(rank, arrive, msg);
            }
            OPC_SEND_EAGER => {
                let dst = o.peer;
                let bytes = o.arg;
                let tag = o.tag;
                let cpu_end = self.occupy_cpu(
                    noise,
                    rank,
                    op,
                    SegKind::SendCpu,
                    t,
                    self.params.cpu_cost(bytes),
                );
                let r = self.li(rank);
                let inject = cpu_end.max(self.s.nic_free[r]);
                self.s.nic_free[r] = inject + self.params.nic_cost(bytes);
                let arrive = inject + self.params.wire_time(bytes) + self.wire_extra(rank, dst);
                let msg = Msg {
                    id: self.new_msg_id(),
                    src: rank,
                    dst,
                    tag,
                    bytes,
                    src_op: op,
                    kind: MsgKind::Eager,
                };
                self.record_send(&msg, inject, arrive);
                self.push_arrive(rank, arrive, msg);
                // Eager sends complete locally once buffered.
                self.complete(rank, op, cpu_end);
            }
            _ => {
                debug_assert_eq!(o.opcode, OPC_RECV);
                let peer = o.peer;
                let tag = o.tag;
                let srcf = (peer != ANY_SOURCE).then_some(peer);
                if let Some(u) = self.take_unexpected(rank, srcf, tag) {
                    if R::ENABLED {
                        self.rec.record(SimEvent::MsgDeliver {
                            id: u.id,
                            src: u.src,
                            dst: rank,
                            src_op: u.src_op,
                            dst_op: op,
                            class: match u.kind {
                                UnexKind::Eager => MsgClass::Eager,
                                UnexKind::Rts { .. } => MsgClass::Rts,
                            },
                            bytes: u.bytes,
                            at: t,
                        });
                        self.record_queues(rank, t);
                    }
                    match u.kind {
                        UnexKind::Eager => self.finish_recv(noise, rank, op, u.arrived, u.bytes, t),
                        UnexKind::Rts { send_op } => self.send_cts(
                            noise,
                            rank,
                            u.src,
                            tag,
                            u.bytes,
                            send_op,
                            op,
                            t.max(u.arrived),
                        ),
                    }
                } else {
                    let r = self.li(rank);
                    let posted = &mut self.s.posted[r];
                    posted.push(
                        tag,
                        PostedRecv {
                            op,
                            src: srcf,
                            posted_at: t,
                        },
                    );
                    self.s.max_posted = self.s.max_posted.max(posted.len());
                    if R::ENABLED {
                        self.rec.record(SimEvent::RecvPosted { rank, op, at: t });
                        self.record_queues(rank, t);
                    }
                }
            }
        }
    }

    fn arrive<N: NoiseModel + ?Sized>(&mut self, noise: &mut N, msg: Msg, t: Time) {
        match msg.kind {
            MsgKind::Eager | MsgKind::Rts { .. } => {
                if matches!(msg.kind, MsgKind::Eager) {
                    self.s.msgs_delivered += 1;
                } else {
                    self.s.control_msgs += 1;
                }
                if let Some(p) = self.take_posted(msg.dst, msg.src, msg.tag) {
                    if R::ENABLED {
                        self.rec.record(SimEvent::MsgDeliver {
                            id: msg.id,
                            src: msg.src,
                            dst: msg.dst,
                            src_op: msg.src_op,
                            dst_op: p.op,
                            class: msg.class(),
                            bytes: msg.bytes,
                            at: t,
                        });
                        self.record_queues(msg.dst, t);
                    }
                    match msg.kind {
                        MsgKind::Eager => {
                            self.finish_recv(noise, msg.dst, p.op, t, msg.bytes, p.posted_at)
                        }
                        MsgKind::Rts { send_op } => self.send_cts(
                            noise, msg.dst, msg.src, msg.tag, msg.bytes, send_op, p.op, t,
                        ),
                        _ => unreachable!(),
                    }
                } else {
                    let kind = match msg.kind {
                        MsgKind::Eager => UnexKind::Eager,
                        MsgKind::Rts { send_op } => UnexKind::Rts { send_op },
                        _ => unreachable!(),
                    };
                    let d = self.li(msg.dst);
                    let unexpected = &mut self.s.unexpected[d];
                    unexpected.push(
                        msg.tag,
                        UnexMsg {
                            id: msg.id,
                            src: msg.src,
                            src_op: msg.src_op,
                            bytes: msg.bytes,
                            arrived: t,
                            kind,
                        },
                    );
                    self.s.max_unexpected = self.s.max_unexpected.max(unexpected.len());
                    self.record_queues(msg.dst, t);
                }
            }
            MsgKind::Cts { send_op, recv_op } => {
                // Back at the original sender: inject the payload.
                self.s.control_msgs += 1;
                if R::ENABLED {
                    self.rec.record(SimEvent::MsgDeliver {
                        id: msg.id,
                        src: msg.src,
                        dst: msg.dst,
                        src_op: msg.src_op,
                        dst_op: send_op,
                        class: MsgClass::Cts,
                        bytes: msg.bytes,
                        at: t,
                    });
                }
                let sender = msg.dst;
                let cpu_end = self.occupy_cpu(
                    noise,
                    sender,
                    send_op,
                    SegKind::RendPayload,
                    t,
                    self.params.cpu_cost(msg.bytes),
                );
                let si = self.li(sender);
                let inject = cpu_end.max(self.s.nic_free[si]);
                self.s.nic_free[si] = inject + self.params.nic_cost(msg.bytes);
                let arrive =
                    inject + self.params.wire_time(msg.bytes) + self.wire_extra(sender, msg.src);
                let payload = Msg {
                    id: self.new_msg_id(),
                    src: sender,
                    dst: msg.src,
                    tag: msg.tag,
                    bytes: msg.bytes,
                    src_op: send_op,
                    kind: MsgKind::Payload { recv_op },
                };
                self.record_send(&payload, inject, arrive);
                self.push_arrive(sender, arrive, payload);
                self.complete(sender, send_op, cpu_end);
            }
            MsgKind::Payload { recv_op } => {
                self.s.msgs_delivered += 1;
                if R::ENABLED {
                    self.rec.record(SimEvent::MsgDeliver {
                        id: msg.id,
                        src: msg.src,
                        dst: msg.dst,
                        src_op: msg.src_op,
                        dst_op: recv_op,
                        class: MsgClass::Payload,
                        bytes: msg.bytes,
                        at: t,
                    });
                }
                self.finish_recv(noise, msg.dst, recv_op, t, msg.bytes, t);
            }
        }
    }

    /// Complete a receive once its message is available at `avail`.
    #[allow(clippy::too_many_arguments)]
    fn finish_recv<N: NoiseModel + ?Sized>(
        &mut self,
        noise: &mut N,
        rank: u32,
        op: u32,
        avail: Time,
        bytes: u64,
        posted_at: Time,
    ) {
        let ready = avail.max(posted_at);
        let end = self.occupy_cpu(
            noise,
            rank,
            op,
            SegKind::RecvCpu,
            ready,
            self.params.cpu_cost(bytes),
        );
        self.complete(rank, op, end);
    }

    /// Receiver side of rendezvous: answer an RTS with a CTS.
    #[allow(clippy::too_many_arguments)]
    fn send_cts<N: NoiseModel + ?Sized>(
        &mut self,
        noise: &mut N,
        rank: u32,
        sender: u32,
        tag: Tag,
        payload_bytes: u64,
        send_op: u32,
        recv_op: u32,
        t: Time,
    ) {
        let cpu_end = self.occupy_cpu(
            noise,
            rank,
            recv_op,
            SegKind::CtsReply,
            t,
            self.params.overhead,
        );
        let r = self.li(rank);
        let inject = cpu_end.max(self.s.nic_free[r]);
        self.s.nic_free[r] = inject + self.params.gap;
        let arrive = inject + self.params.latency + self.wire_extra(rank, sender);
        let msg = Msg {
            id: self.new_msg_id(),
            src: rank,
            dst: sender,
            tag,
            bytes: payload_bytes,
            src_op: recv_op,
            kind: MsgKind::Cts { send_op, recv_op },
        };
        self.record_send(&msg, inject, arrive);
        self.push_arrive(rank, arrive, msg);
    }

    /// First posted receive at `dst` matching `(src, tag)`, FIFO order.
    ///
    /// Tag match is exact, so only `tag`'s bucket needs scanning; the
    /// `src == None` wildcard on a posted receive is handled in the
    /// predicate (see [`TagQueue::take_first`] for the order argument).
    fn take_posted(&mut self, dst: u32, src: u32, tag: Tag) -> Option<PostedRecv> {
        let d = self.li(dst);
        self.s.posted[d].take_first(tag, |p| p.src.is_none() || p.src == Some(src))
    }

    /// First unexpected message at `rank` matching the receive's filter.
    fn take_unexpected(&mut self, rank: u32, srcf: Option<u32>, tag: Tag) -> Option<UnexMsg> {
        let r = self.li(rank);
        self.s.unexpected[r].take_first(tag, |u| srcf.is_none() || srcf == Some(u.src))
    }

    fn complete(&mut self, rank: u32, op: u32, t: Time) {
        let f = self.cs.flat(rank, op);
        let fl = self.lf(f);
        debug_assert!(!self.s.done[fl], "op completed twice");
        self.s.done[fl] = true;
        let ri = self.li(rank);
        let finish = &mut self.s.finish[ri];
        *finish = (*finish).max(t);
        self.s.completed += 1;
        if R::ENABLED {
            self.rec.record(SimEvent::OpDone { rank, op, at: t });
        }
        // Dependency fan-out: CSR targets are rank-local op ids (deps
        // never cross ranks), so the dependent's flat id shares this
        // rank's base offset. The edge range comes from the packed
        // dispatch record — still warm from `exec_op` — instead of two
        // `dep_off` column reads.
        let base = self.cs.rank_off[rank as usize] as usize - self.s.op_base;
        let o = self.s.ops[fl];
        let lo = o.dep_lo as usize;
        let hi = lo + o.dep_cnt as usize;
        for i in lo..hi {
            let d = self.cs.dep_tgt[i];
            let indeg = &mut self.s.indeg[base + d as usize];
            *indeg -= 1;
            if *indeg == 0 {
                if R::ENABLED {
                    self.rec.record(SimEvent::DepEdge {
                        rank,
                        from: op,
                        to: d,
                        at: t,
                    });
                }
                self.push_op_ready(rank, t, d);
            }
        }
    }

    fn deadlock_report(&self) -> SimError {
        SimError::Deadlock {
            completed: self.s.completed,
            total: self.cs.total_ops(),
            stuck_examples: stuck_ops(self.cs, std::slice::from_ref(&&*self.s), 8),
        }
    }
}

/// Up to `cap` formatted stuck-op examples, scanning the scratches'
/// owned rank slices in rank order. Shared between the serial engine
/// (one full-range scratch) and the sharded driver (one scratch per
/// shard, contiguous and rank-ordered), so the deadlock message is
/// byte-identical in both modes.
pub(crate) fn stuck_ops(cs: &CompiledSchedule, parts: &[&RunScratch], cap: usize) -> Vec<String> {
    let mut stuck = Vec::new();
    'outer: for s in parts {
        for r in s.rank_lo..s.rank_hi {
            let base = cs.rank_off[r as usize] as usize;
            for i in 0..cs.ops_on(r) {
                let f = base + i;
                if !s.done[f - s.op_base] {
                    stuck.push(format!(
                        "rank {r} op {i}: {} (unmet deps: {})",
                        cs.op_kind(f),
                        s.indeg[f - s.op_base]
                    ));
                    if stuck.len() >= cap {
                        break 'outer;
                    }
                }
            }
        }
    }
    stuck
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{NoNoise, ScriptedNoise};
    use cesim_goal::{Rank, ScheduleBuilder, Tag};
    use cesim_model::Span;

    fn xc40() -> LogGopsParams {
        LogGopsParams::xc40()
    }

    #[test]
    fn single_calc() {
        let mut b = ScheduleBuilder::new(1);
        b.calc(Rank(0), Span::from_us(5), &[]);
        let s = b.build();
        let r = simulate(&s, &xc40(), &mut NoNoise).unwrap();
        assert_eq!(r.finish, Time::ZERO + Span::from_us(5));
        assert_eq!(r.ops_executed, 1);
        assert_eq!(r.msgs_delivered, 0);
    }

    #[test]
    fn chained_calcs_serialize() {
        let mut b = ScheduleBuilder::new(1);
        let a = b.calc(Rank(0), Span::from_us(2), &[]);
        b.calc(Rank(0), Span::from_us(3), &[a]);
        // Independent op with no deps still serializes on the CPU.
        b.calc(Rank(0), Span::from_us(4), &[]);
        let s = b.build();
        let r = simulate(&s, &xc40(), &mut NoNoise).unwrap();
        assert_eq!(r.finish, Time::ZERO + Span::from_us(9));
    }

    /// Analytic check of the eager path:
    /// receiver finishes at (o + bO) + (L + bG) + (o + bO).
    #[test]
    fn eager_ping_analytic() {
        let p = xc40();
        let bytes = 8u64;
        let mut b = ScheduleBuilder::new(2);
        b.send(Rank(0), Rank(1), bytes, Tag(1), &[]);
        b.recv(Rank(1), Some(Rank(0)), bytes, Tag(1), &[]);
        let s = b.build();
        let r = simulate(&s, &p, &mut NoNoise).unwrap();
        let expect = Time::ZERO
            + p.cpu_cost(bytes) // sender o + bO
            + p.wire_time(bytes) // L + bG
            + p.cpu_cost(bytes); // receiver o + bO
        assert_eq!(r.per_rank_finish[1], expect);
        assert_eq!(r.per_rank_finish[0], Time::ZERO + p.cpu_cost(bytes));
        assert_eq!(r.msgs_delivered, 1);
        assert_eq!(r.control_msgs, 0);
    }

    /// Analytic check of the rendezvous path:
    /// RTS(o, L) → CTS(o, L) → payload(o+bO, L+bG, o+bO).
    #[test]
    fn rendezvous_ping_analytic() {
        let p = xc40();
        let bytes = 32 * 1024u64; // > 16 KiB threshold
        assert!(p.is_rendezvous(bytes));
        let mut b = ScheduleBuilder::new(2);
        b.send(Rank(0), Rank(1), bytes, Tag(1), &[]);
        b.recv(Rank(1), Some(Rank(0)), bytes, Tag(1), &[]);
        let s = b.build();
        let r = simulate(&s, &p, &mut NoNoise).unwrap();

        let rts_at_recv = Time::ZERO + p.overhead + p.latency;
        let cts_at_sender = rts_at_recv + p.overhead + p.latency;
        let sender_done = cts_at_sender + p.cpu_cost(bytes);
        let payload_at_recv = sender_done + p.wire_time(bytes);
        let recv_done = payload_at_recv + p.cpu_cost(bytes);

        assert_eq!(r.per_rank_finish[0], sender_done);
        assert_eq!(r.per_rank_finish[1], recv_done);
        assert_eq!(r.msgs_delivered, 1);
        assert_eq!(r.control_msgs, 2);
    }

    /// Rendezvous where the send starts before the recv is posted: the RTS
    /// sits in the unexpected queue until the receiver posts.
    #[test]
    fn rendezvous_late_recv() {
        let p = xc40();
        let bytes = 64 * 1024u64;
        let delay = Span::from_ms(1);
        let mut b = ScheduleBuilder::new(2);
        b.send(Rank(0), Rank(1), bytes, Tag(1), &[]);
        let c = b.calc(Rank(1), delay, &[]);
        b.recv(Rank(1), Some(Rank(0)), bytes, Tag(1), &[c]);
        let s = b.build();
        let r = simulate(&s, &p, &mut NoNoise).unwrap();
        // CTS leaves the receiver only after its delay calc.
        let cts_at_sender = Time::ZERO + delay + p.overhead + p.latency;
        let sender_done = cts_at_sender + p.cpu_cost(bytes);
        assert_eq!(r.per_rank_finish[0], sender_done);
        assert_eq!(r.max_unexpected, 1);
    }

    #[test]
    fn unexpected_eager_message() {
        let p = xc40();
        let mut b = ScheduleBuilder::new(2);
        b.send(Rank(0), Rank(1), 8, Tag(1), &[]);
        let c = b.calc(Rank(1), Span::from_ms(2), &[]);
        b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[c]);
        let s = b.build();
        let r = simulate(&s, &p, &mut NoNoise).unwrap();
        // Message arrived long before the recv posted; recv completes right
        // after the calc plus processing overhead.
        let expect = Time::ZERO + Span::from_ms(2) + p.cpu_cost(8);
        assert_eq!(r.per_rank_finish[1], expect);
        assert_eq!(r.max_unexpected, 1);
    }

    #[test]
    fn any_source_matches_first_arrival() {
        let p = xc40();
        let mut b = ScheduleBuilder::new(3);
        // Rank 1 sends immediately; rank 0 sends after a long calc.
        let c = b.calc(Rank(0), Span::from_ms(5), &[]);
        b.send(Rank(0), Rank(2), 8, Tag(1), &[c]);
        b.send(Rank(1), Rank(2), 8, Tag(1), &[]);
        let r1 = b.recv(Rank(2), None, 8, Tag(1), &[]);
        b.recv(Rank(2), None, 8, Tag(1), &[r1]);
        let s = b.build();
        let r = simulate(&s, &p, &mut NoNoise).unwrap();
        // First recv completes well before rank 0's message exists.
        assert!(r.per_rank_finish[2] > Time::ZERO + Span::from_ms(5));
        assert_eq!(r.msgs_delivered, 2);
    }

    #[test]
    fn fifo_matching_same_src_tag() {
        let p = xc40();
        let mut b = ScheduleBuilder::new(2);
        let s1 = b.send(Rank(0), Rank(1), 100, Tag(1), &[]);
        b.send(Rank(0), Rank(1), 200, Tag(1), &[s1]);
        let r1 = b.recv(Rank(1), Some(Rank(0)), 100, Tag(1), &[]);
        b.recv(Rank(1), Some(Rank(0)), 200, Tag(1), &[r1]);
        let s = b.build();
        // Must complete without deadlock; FIFO keeps pairs aligned.
        let r = simulate(&s, &p, &mut NoNoise).unwrap();
        assert_eq!(r.msgs_delivered, 2);
    }

    #[test]
    fn nic_gap_serializes_injections() {
        let p = xc40();
        let bytes = 1024u64;
        // Two sends back-to-back: second arrival is delayed by max(cpu, gap)
        // serialization.
        let mut b = ScheduleBuilder::new(2);
        let s1 = b.send(Rank(0), Rank(1), bytes, Tag(1), &[]);
        b.send(Rank(0), Rank(1), bytes, Tag(2), &[s1]);
        let r1 = b.recv(Rank(1), Some(Rank(0)), bytes, Tag(1), &[]);
        b.recv(Rank(1), Some(Rank(0)), bytes, Tag(2), &[r1]);
        let s = b.build();
        let r = simulate(&s, &p, &mut NoNoise).unwrap();
        // Sender CPU: two cpu_cost intervals; second injection must wait
        // for NIC: inject2 = max(2*cpu_cost, inject1 + nic_cost).
        let cpu = p.cpu_cost(bytes);
        let inject1 = Time::ZERO + cpu;
        let inject2 = (inject1 + cpu).max(inject1 + p.nic_cost(bytes));
        let arrive2 = inject2 + p.wire_time(bytes);
        let expect = arrive2 + p.cpu_cost(bytes);
        assert_eq!(r.per_rank_finish[1], expect);
    }

    #[test]
    fn deadlock_detected() {
        let mut b = ScheduleBuilder::new(2);
        b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[]);
        let s = b.build();
        let e = simulate(&s, &xc40(), &mut NoNoise).unwrap_err();
        match e {
            SimError::Deadlock {
                completed,
                total,
                stuck_examples,
            } => {
                assert_eq!(completed, 0);
                assert_eq!(total, 1);
                assert!(stuck_examples[0].contains("recv"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn empty_schedule_rejected() {
        let s = Schedule::default();
        assert_eq!(
            simulate(&s, &xc40(), &mut NoNoise).unwrap_err(),
            SimError::EmptySchedule
        );
    }

    /// The Fig. 1 scenario: three ranks chained by two messages; a detour
    /// on rank 0 delays rank 2, which rank 0 never talks to.
    #[test]
    fn fig1_delay_propagates_transitively() {
        let p = xc40();
        let work = Span::from_us(100);
        let build = || {
            let mut b = ScheduleBuilder::new(3);
            let c0 = b.calc(Rank(0), work, &[]);
            b.send(Rank(0), Rank(1), 8, Tag(1), &[c0]);
            let r1 = b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[]);
            let c1 = b.calc(Rank(1), work, &[r1]);
            b.send(Rank(1), Rank(2), 8, Tag(2), &[c1]);
            let r2 = b.recv(Rank(2), Some(Rank(1)), 8, Tag(2), &[]);
            b.calc(Rank(2), work, &[r2]);
            b.build()
        };
        let base = simulate(&build(), &p, &mut NoNoise).unwrap();
        let detour = Span::from_ms(10);
        let mut noise = ScriptedNoise::new(vec![(Rank(0), Time::ZERO, detour)]);
        let pert = simulate(&build(), &p, &mut noise).unwrap();
        assert_eq!(pert.noise_events, 1);
        // Rank 2's finish shifts by exactly the rank-0 detour.
        assert_eq!(pert.per_rank_finish[2], base.per_rank_finish[2] + detour);
        assert_eq!(pert.finish, base.finish + detour);
    }

    #[test]
    fn noise_on_uninvolved_rank_is_harmless() {
        let p = xc40();
        let build = || {
            let mut b = ScheduleBuilder::new(3);
            b.send(Rank(0), Rank(1), 8, Tag(1), &[]);
            b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[]);
            b.calc(Rank(2), Span::from_us(1), &[]);
            b.build()
        };
        let base = simulate(&build(), &p, &mut NoNoise).unwrap();
        // A detour on rank 2 smaller than the communication time of ranks
        // 0/1 does not move the app finish time.
        let mut noise = ScriptedNoise::new(vec![(Rank(2), Time::ZERO, Span::from_ns(10))]);
        let pert = simulate(&build(), &p, &mut noise).unwrap();
        assert_eq!(pert.finish, base.finish);
    }

    #[test]
    fn determinism_same_inputs_same_result() {
        let mut b = ScheduleBuilder::new(4);
        let mut tags = cesim_goal::builder::TagPool::new();
        let entry: Vec<_> = (0..4)
            .map(|r| b.calc(Rank::from(r), Span::from_us(3), &[]))
            .collect();
        cesim_goal::collectives::allreduce_recursive_doubling(
            &mut b,
            &mut tags,
            64,
            &cesim_goal::collectives::CollectiveCosts::default(),
            &entry,
        );
        let s = b.build();
        let r1 = simulate(&s, &xc40(), &mut NoNoise).unwrap();
        let r2 = simulate(&s, &xc40(), &mut NoNoise).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn collective_schedules_complete() {
        use cesim_goal::builder::TagPool;
        use cesim_goal::collectives as coll;
        for n in [2usize, 3, 5, 8, 13] {
            let mut b = ScheduleBuilder::new(n);
            let mut tags = TagPool::new();
            let entry: Vec<_> = (0..n)
                .map(|r| b.calc(Rank::from(r), Span::from_us(1), &[]))
                .collect();
            let e1 = coll::barrier_dissemination(&mut b, &mut tags, &entry);
            let e2 = coll::allreduce_recursive_doubling(
                &mut b,
                &mut tags,
                8,
                &coll::CollectiveCosts::default(),
                &e1,
            );
            let e3 = coll::bcast_binomial(&mut b, &mut tags, Rank(1 % n as u32), 1 << 20, &e2);
            let e4 = coll::reduce_binomial(
                &mut b,
                &mut tags,
                Rank(0),
                4096,
                &coll::CollectiveCosts::default(),
                &e3,
            );
            let e5 = coll::allgather_ring(&mut b, &mut tags, 256, &e4);
            coll::alltoall_pairwise(&mut b, &mut tags, 64, &e5);
            let s = b.build();
            s.validate().unwrap();
            let r = simulate(&s, &xc40(), &mut NoNoise).unwrap();
            assert!(r.finish > Time::ZERO, "n = {n}");
        }
    }

    #[test]
    fn rendezvous_inside_collective_completes() {
        use cesim_goal::builder::TagPool;
        use cesim_goal::collectives as coll;
        let n = 6;
        let mut b = ScheduleBuilder::new(n);
        let mut tags = TagPool::new();
        let entry: Vec<_> = (0..n)
            .map(|r| b.calc(Rank::from(r), Span::ZERO, &[]))
            .collect();
        // 1 MiB payload: forces the rendezvous path inside the collective.
        coll::allreduce_recursive_doubling(
            &mut b,
            &mut tags,
            1 << 20,
            &coll::CollectiveCosts::default(),
            &entry,
        );
        let s = b.build();
        let r = simulate(&s, &xc40(), &mut NoNoise).unwrap();
        assert!(r.control_msgs > 0);
        assert_eq!(r.ops_executed, s.total_ops() as u64);
    }

    #[test]
    fn topology_hop_latency_delays_distant_pairs() {
        use crate::topology::{FlatCrossbar, Torus3D};
        let hop = Span::from_us(1);
        let p = xc40().with_hop_latency(hop);
        // A 4x4x4 torus: rank 0 -> 1 is adjacent; rank 0 -> 42 ([2,2,2])
        // is 6 hops away.
        let ping = |dst: u32| {
            let mut b = ScheduleBuilder::new(64);
            b.send(Rank(0), Rank(dst), 8, Tag(1), &[]);
            b.recv(Rank(dst), Some(Rank(0)), 8, Tag(1), &[]);
            b.build()
        };
        let run = |dst: u32| {
            Simulator::new(&ping(dst), p)
                .with_topology(Box::new(Torus3D::new([4, 4, 4])))
                .run(&mut NoNoise)
                .unwrap()
                .per_rank_finish[dst as usize]
        };
        let near = run(1);
        let far = run(42);
        assert_eq!(far.since(Time::ZERO) - near.since(Time::ZERO), hop * 5);
        // Flat topology (or zero hop latency) reproduces the default.
        let base = simulate(&ping(42), &xc40(), &mut NoNoise).unwrap();
        let flat = Simulator::new(&ping(42), xc40())
            .with_topology(Box::new(FlatCrossbar))
            .run(&mut NoNoise)
            .unwrap();
        assert_eq!(base, flat);
        let torus_no_hop = Simulator::new(&ping(42), xc40())
            .with_topology(Box::new(Torus3D::new([4, 4, 4])))
            .run(&mut NoNoise)
            .unwrap();
        assert_eq!(base, torus_no_hop);
    }

    #[test]
    fn rendezvous_pays_hop_latency_on_all_three_messages() {
        use crate::topology::Dragonfly;
        let hop = Span::from_us(10);
        let p = xc40().with_hop_latency(hop);
        let bytes = 64 * 1024u64;
        let build = || {
            let mut b = ScheduleBuilder::new(32);
            b.send(Rank(0), Rank(31), bytes, Tag(1), &[]);
            b.recv(Rank(31), Some(Rank(0)), bytes, Tag(1), &[]);
            b.build()
        };
        let flat = simulate(&build(), &xc40(), &mut NoNoise).unwrap();
        let df = Simulator::new(&build(), p)
            .with_topology(Box::new(Dragonfly::new(16)))
            .run(&mut NoNoise)
            .unwrap();
        // Ranks 0 and 31 are in different groups: 3 hops, surcharge
        // 2 * hop per message, RTS + CTS + payload = 3 messages.
        assert_eq!(
            df.per_rank_finish[31].since(Time::ZERO) - flat.per_rank_finish[31].since(Time::ZERO),
            hop * 2 * 3
        );
    }

    #[test]
    fn busy_work_accounting() {
        let p = xc40();
        let bytes = 8u64;
        let build = || {
            let mut b = ScheduleBuilder::new(2);
            let c = b.calc(Rank(0), Span::from_us(10), &[]);
            b.send(Rank(0), Rank(1), bytes, Tag(1), &[c]);
            b.recv(Rank(1), Some(Rank(0)), bytes, Tag(1), &[]);
            b.build()
        };
        // Without noise: busy == work on both ranks; rank 1 is blocked
        // while the message is in flight.
        let r = simulate(&build(), &p, &mut NoNoise).unwrap();
        assert_eq!(r.per_rank_busy, r.per_rank_work);
        assert_eq!(r.total_stolen(), Span::ZERO);
        assert_eq!(r.per_rank_work[0], Span::from_us(10) + p.cpu_cost(bytes));
        assert_eq!(r.per_rank_work[1], p.cpu_cost(bytes));
        assert!(r.blocked_time(1).unwrap() > Span::ZERO);
        assert_eq!(r.blocked_time(99), None);
        // With one scripted detour on rank 0: exactly that much stolen.
        let d = Span::from_ms(3);
        let mut noise = ScriptedNoise::new(vec![(Rank(0), Time::ZERO, d)]);
        let rn = simulate(&build(), &p, &mut noise).unwrap();
        assert_eq!(rn.total_stolen(), d);
        assert_eq!(rn.per_rank_work, r.per_rank_work);
        // The detour lands on both ranks' critical paths: amplification
        // is (added wall) / (stolen per rank) = d / (d/2) = 2.
        let amp = rn.amplification(r.finish).unwrap();
        assert!((amp - 2.0).abs() < 0.01, "amp = {amp}");
    }

    #[test]
    fn recorder_captures_eager_ping() {
        use crate::record::{MsgClass, SegKind, SimEvent, VecRecorder};
        let p = xc40();
        let bytes = 8u64;
        let mut b = ScheduleBuilder::new(2);
        b.send(Rank(0), Rank(1), bytes, Tag(7), &[]);
        b.recv(Rank(1), Some(Rank(0)), bytes, Tag(7), &[]);
        let s = b.build();
        let mut rec = VecRecorder::default();
        let r = Simulator::new(&s, p)
            .with_recorder(&mut rec)
            .run(&mut NoNoise)
            .unwrap();
        let send_end = Time::ZERO + p.cpu_cost(bytes);
        let arrive = send_end + p.wire_time(bytes);
        // One send segment, one recv segment, a matching MsgSend/MsgDeliver
        // pair, two OpDones, and queue-depth samples.
        let execs: Vec<_> = rec
            .events
            .iter()
            .filter(|e| matches!(e, SimEvent::Exec { .. }))
            .collect();
        assert_eq!(execs.len(), 2);
        assert!(matches!(
            execs[0],
            SimEvent::Exec {
                rank: 0,
                op: 0,
                seg: SegKind::SendCpu,
                start: Time::ZERO,
                ..
            }
        ));
        let sends: Vec<_> = rec
            .events
            .iter()
            .filter_map(|e| match *e {
                SimEvent::MsgSend {
                    id,
                    class,
                    inject,
                    arrive,
                    ..
                } => Some((id, class, inject, arrive)),
                _ => None,
            })
            .collect();
        assert_eq!(sends, vec![(0, MsgClass::Eager, send_end, arrive)]);
        let delivers: Vec<_> = rec
            .events
            .iter()
            .filter_map(|e| match *e {
                SimEvent::MsgDeliver {
                    id,
                    src_op,
                    dst_op,
                    at,
                    ..
                } => Some((id, src_op, dst_op, at)),
                _ => None,
            })
            .collect();
        // Recv posted at t=0, message arrives later: delivered at arrival.
        assert_eq!(delivers, vec![(0, 0, 0, arrive)]);
        let dones: Vec<_> = rec
            .events
            .iter()
            .filter_map(|e| match *e {
                SimEvent::OpDone { rank, at, .. } => Some((rank, at)),
                _ => None,
            })
            .collect();
        assert_eq!(dones, vec![(0, send_end), (1, r.per_rank_finish[1])]);
        // Detour-free run records no detours; events are time-ordered
        // per rank.
        assert!(!rec
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::Detour { .. })));
    }

    #[test]
    fn recorder_detour_event_matches_script() {
        use crate::record::{SimEvent, VecRecorder};
        let mut b = ScheduleBuilder::new(1);
        b.calc(Rank(0), Span::from_us(10), &[]);
        let s = b.build();
        let d = Span::from_us(3);
        let mut noise = ScriptedNoise::new(vec![(Rank(0), Time::ZERO, d)]);
        let mut rec = VecRecorder::default();
        Simulator::new(&s, xc40())
            .with_recorder(&mut rec)
            .run(&mut noise)
            .unwrap();
        let detours: Vec<_> = rec
            .events
            .iter()
            .filter_map(|e| match *e {
                SimEvent::Detour {
                    id, rank, at, dur, ..
                } => Some((id, rank, at, dur)),
                _ => None,
            })
            .collect();
        // Tail placement: detour sits after the 10 us of useful work;
        // the first detour of the run gets id 0.
        assert_eq!(detours, vec![(0, 0, Time::ZERO + Span::from_us(10), d)]);
        let stolen: Span = detours.iter().map(|&(_, _, _, dur)| dur).sum();
        assert_eq!(stolen, d);
    }

    /// Detour ids are dense, sequential in emission order, and restart at
    /// zero on every run — including scratch reuse.
    #[test]
    fn detour_ids_are_sequential_and_reset() {
        use crate::compile::CompiledSchedule;
        use crate::record::{SimEvent, VecRecorder};
        let mut b = ScheduleBuilder::new(2);
        let a = b.calc(Rank(0), Span::from_us(10), &[]);
        b.calc(Rank(0), Span::from_us(10), &[a]);
        b.calc(Rank(1), Span::from_us(10), &[]);
        let s = b.build();
        let script = || {
            // The second rank-0 event lands strictly inside the second
            // calc ([11us, 21us) after the first 1us detour): at 11us
            // exactly it would cascade into the *first* segment
            // (`stretch` absorbs everything due by the extended end).
            ScriptedNoise::new(vec![
                (Rank(0), Time::ZERO, Span::from_us(1)),
                (Rank(0), Time::from_ps(15_000_000), Span::from_us(2)),
                (Rank(1), Time::ZERO, Span::from_us(3)),
            ])
        };
        let ids_of = |rec: &VecRecorder| -> Vec<u64> {
            rec.events
                .iter()
                .filter_map(|e| match *e {
                    SimEvent::Detour { id, .. } => Some(id),
                    _ => None,
                })
                .collect()
        };
        let cs = Arc::new(CompiledSchedule::compile(&s));
        let mut rec = VecRecorder::default();
        Simulator::from_compiled(Arc::clone(&cs), xc40())
            .with_recorder(&mut rec)
            .run(&mut script())
            .unwrap();
        assert_eq!(ids_of(&rec), vec![0, 1, 2]);
        // A second run (fresh simulator, same compiled schedule) restarts
        // the sequence and emits the identical stream.
        let mut rec2 = VecRecorder::default();
        Simulator::from_compiled(cs, xc40())
            .with_recorder(&mut rec2)
            .run(&mut script())
            .unwrap();
        assert_eq!(rec.events, rec2.events);
    }

    /// The recorder must not perturb simulation results.
    #[test]
    fn recorder_does_not_change_results() {
        use crate::record::VecRecorder;
        let mut b = ScheduleBuilder::new(2);
        let c = b.calc(Rank(0), Span::from_us(5), &[]);
        b.send(Rank(0), Rank(1), 64 * 1024, Tag(1), &[c]);
        b.recv(Rank(1), Some(Rank(0)), 64 * 1024, Tag(1), &[]);
        let s = b.build();
        let plain = simulate(&s, &xc40(), &mut NoNoise).unwrap();
        let mut rec = VecRecorder::default();
        let traced = Simulator::new(&s, xc40())
            .with_recorder(&mut rec)
            .run(&mut NoNoise)
            .unwrap();
        assert_eq!(plain, traced);
        assert!(!rec.events.is_empty());
    }

    /// The compiled fast path and the legacy wrapper agree exactly, and
    /// one scratch reused across schedules and error cases never bleeds
    /// state into later runs.
    #[test]
    fn compiled_path_matches_legacy_and_scratch_reuse_is_clean() {
        use crate::compile::CompiledSchedule;
        let p = xc40();
        // A communication mix: eager + rendezvous + ANY_SOURCE + calc.
        let mut b = ScheduleBuilder::new(3);
        let c = b.calc(Rank(0), Span::from_us(2), &[]);
        b.send(Rank(0), Rank(2), 8, Tag(1), &[c]);
        b.send(Rank(1), Rank(2), 64 * 1024, Tag(2), &[]);
        let r1 = b.recv(Rank(2), None, 8, Tag(1), &[]);
        b.recv(Rank(2), Some(Rank(1)), 64 * 1024, Tag(2), &[r1]);
        let s = b.build();
        let legacy = simulate(&s, &p, &mut NoNoise).unwrap();

        let cs = CompiledSchedule::compile(&s);
        assert_eq!(simulate_compiled(&cs, &p, &mut NoNoise).unwrap(), legacy);

        let mut scratch = RunScratch::new();
        // Run a *different* schedule through the scratch first, then a
        // deadlocking one — neither may affect the next result.
        let mut b2 = ScheduleBuilder::new(2);
        b2.send(Rank(0), Rank(1), 8, Tag(9), &[]);
        b2.recv(Rank(1), Some(Rank(0)), 8, Tag(9), &[]);
        let other = CompiledSchedule::compile(&b2.build());
        simulate_compiled_with(&other, &p, &mut scratch, &mut NoNoise).unwrap();
        let mut b3 = ScheduleBuilder::new(1);
        b3.recv(Rank(0), None, 8, Tag(1), &[]);
        let stuck = CompiledSchedule::compile(&b3.build());
        simulate_compiled_with(&stuck, &p, &mut scratch, &mut NoNoise).unwrap_err();
        assert_eq!(
            simulate_compiled_with(&cs, &p, &mut scratch, &mut NoNoise).unwrap(),
            legacy
        );
        // And again: back-to-back reuse of the (now warm) scratch.
        assert_eq!(
            simulate_compiled_with(&cs, &p, &mut scratch, &mut NoNoise).unwrap(),
            legacy
        );
    }

    /// `Simulator::from_compiled` shares one Arc across runs (including
    /// a recorded one) and matches `Simulator::new`.
    #[test]
    fn from_compiled_shares_schedule_across_runs() {
        use crate::compile::CompiledSchedule;
        use crate::record::VecRecorder;
        let p = xc40();
        let mut b = ScheduleBuilder::new(2);
        let c = b.calc(Rank(0), Span::from_us(5), &[]);
        b.send(Rank(0), Rank(1), 32 * 1024, Tag(4), &[c]);
        b.recv(Rank(1), Some(Rank(0)), 32 * 1024, Tag(4), &[]);
        let s = b.build();
        let cs = Arc::new(CompiledSchedule::compile(&s));
        let base = Simulator::new(&s, p).run(&mut NoNoise).unwrap();
        let a = Simulator::from_compiled(Arc::clone(&cs), p)
            .run(&mut NoNoise)
            .unwrap();
        let mut rec = VecRecorder::default();
        let traced = Simulator::from_compiled(Arc::clone(&cs), p)
            .with_recorder(&mut rec)
            .run(&mut NoNoise)
            .unwrap();
        assert_eq!(a, base);
        assert_eq!(traced, base);
        assert!(!rec.events.is_empty());
    }

    /// Arena-reuse equivalence: slab indices never alias live messages
    /// across replica resets. Refs held from any earlier round — both
    /// consumed and still-nominally-live ones — are stale after a
    /// reset (generations are monotone per slot), while refs issued in
    /// the current round resolve to exactly their own message.
    #[test]
    fn msg_slab_never_aliases_across_100_resets() {
        let mk = |id: u64| Msg {
            id,
            src: 0,
            dst: 1,
            tag: Tag(0),
            bytes: 8,
            src_op: 0,
            kind: MsgKind::Eager,
        };
        let mut slab = MsgSlab::default();
        let mut stale: Vec<MsgRef> = Vec::new();
        for round in 0..100u64 {
            let refs: Vec<MsgRef> = (0..8).map(|i| slab.alloc(mk(round * 8 + i))).collect();
            // Current-round refs are live and resolve to their own
            // message; take half, leave half in flight.
            for (i, &r) in refs.iter().enumerate().take(4) {
                assert!(slab.is_current(r));
                assert_eq!(slab.take(r).id, round * 8 + i as u64);
                assert!(!slab.is_current(r), "taken ref stayed live");
            }
            assert_eq!(slab.live(), 4);
            // Every ref from every earlier round is dead, even though
            // its slot has long been recycled for new messages.
            for &old in &stale {
                assert!(!slab.is_current(old), "pre-reset ref aliases a slot");
            }
            stale.extend(refs);
            // Reset with messages still in flight (the deadlock case):
            // the arena empties and the leftover refs go stale.
            slab.reset();
            assert_eq!(slab.live(), 0);
        }
    }

    /// Engine-level arena reuse: 100 replicas through one warm scratch
    /// give byte-identical results, and every run consumes exactly the
    /// messages it created (the arena is drained when the run ends).
    #[test]
    fn scratch_arena_reuse_is_clean_across_replicas() {
        use crate::compile::CompiledSchedule;
        let p = xc40();
        let mut b = ScheduleBuilder::new(4);
        let mut tags = cesim_goal::builder::TagPool::new();
        let entry: Vec<_> = (0..4)
            .map(|r| b.calc(Rank::from(r), Span::from_us(2), &[]))
            .collect();
        // Eager + rendezvous traffic so the arena sees both protocols.
        let e1 = cesim_goal::collectives::allreduce_recursive_doubling(
            &mut b,
            &mut tags,
            64,
            &cesim_goal::collectives::CollectiveCosts::default(),
            &entry,
        );
        cesim_goal::collectives::bcast_binomial(&mut b, &mut tags, Rank(0), 1 << 20, &e1);
        let cs = CompiledSchedule::compile(&b.build());
        let mut scratch = RunScratch::new();
        let first = simulate_compiled_with(&cs, &p, &mut scratch, &mut NoNoise).unwrap();
        assert_eq!(scratch.slab.live(), 0, "messages leaked past the run");
        let high_water = scratch.slab.msgs.len();
        assert!(high_water > 0, "schedule produced no messages");
        for _ in 0..99 {
            let again = simulate_compiled_with(&cs, &p, &mut scratch, &mut NoNoise).unwrap();
            assert_eq!(again, first);
            assert_eq!(scratch.slab.live(), 0);
            // Steady state: replica reuse never grows the arena.
            assert_eq!(scratch.slab.msgs.len(), high_water);
        }
    }

    #[test]
    fn slowdown_is_monotone_in_detour_size() {
        let p = xc40();
        let build = || {
            let mut b = ScheduleBuilder::new(2);
            let c = b.calc(Rank(0), Span::from_us(50), &[]);
            b.send(Rank(0), Rank(1), 8, Tag(1), &[c]);
            b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[]);
            b.build()
        };
        let base = simulate(&build(), &p, &mut NoNoise).unwrap().finish;
        let mut prev = base;
        for us in [1u64, 10, 100, 1000] {
            let mut n = ScriptedNoise::new(vec![(Rank(0), Time::ZERO, Span::from_us(us))]);
            let f = simulate(&build(), &p, &mut n).unwrap().finish;
            assert!(f >= prev);
            prev = f;
        }
        assert_eq!(prev, base + Span::from_us(1000));
    }
}
