//! The LogGOPS discrete-event simulation loop.
//!
//! See the crate docs for the cost model. Implementation notes:
//!
//! * Per-rank **CPU** and **NIC** cursors (`cpu_free`, `nic_free`)
//!   serialize overheads; the event queue only carries *op readiness* and
//!   *message arrival* — resource waiting is folded into start-time
//!   computation (`start = max(ready, cpu_free)`), which keeps the event
//!   count at O(ops + messages).
//! * Dependency fan-out uses a CSR adjacency built once per run.
//! * All CPU intervals pass through the [`NoiseModel`], in non-decreasing
//!   start order per rank.
//! * Rendezvous transfers are three chained messages (RTS → CTS →
//!   payload); RTS matches like a normal message, the payload is routed
//!   directly to the matched receive.

use crate::matchq::TagQueue;
use crate::noise::NoiseModel;
use crate::queue::EventQueue;
use crate::record::{MsgClass, NullRecorder, Recorder, SegKind, SimEvent};
use crate::result::{SimError, SimResult};
use crate::topology::{FlatCrossbar, Topology};
use cesim_goal::{OpKind, Rank, Schedule, Tag};
use cesim_model::{LogGopsParams, Span, Time};

#[derive(Clone, Copy, Debug)]
enum MsgKind {
    /// Eagerly buffered payload.
    Eager,
    /// Rendezvous request-to-send; `send_op` identifies the sender's op.
    Rts { send_op: u32 },
    /// Rendezvous clear-to-send; echoes the sender's op and names the
    /// matched receive.
    Cts { send_op: u32, recv_op: u32 },
    /// Rendezvous payload, routed directly to the matched receive.
    Payload { recv_op: u32 },
}

#[derive(Clone, Copy, Debug)]
struct Msg {
    /// Unique id tying a recorder's `MsgSend` to its `MsgDeliver`.
    id: u64,
    src: u32,
    dst: u32,
    tag: Tag,
    bytes: u64,
    /// The op on `src` this message serves (recorder attribution; for a
    /// CTS this is the *receive* op answering the RTS).
    src_op: u32,
    kind: MsgKind,
}

impl Msg {
    fn class(&self) -> MsgClass {
        match self.kind {
            MsgKind::Eager => MsgClass::Eager,
            MsgKind::Rts { .. } => MsgClass::Rts,
            MsgKind::Cts { .. } => MsgClass::Cts,
            MsgKind::Payload { .. } => MsgClass::Payload,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Event {
    OpReady { rank: u32, op: u32 },
    Arrive(Msg),
}

// The matching tag is the `TagQueue` bucket key, not repeated in the
// queued records.
#[derive(Clone, Copy, Debug)]
struct PostedRecv {
    op: u32,
    src: Option<u32>,
    posted_at: Time,
}

#[derive(Clone, Copy, Debug)]
enum UnexKind {
    Eager,
    Rts { send_op: u32 },
}

#[derive(Clone, Copy, Debug)]
struct UnexMsg {
    /// Message id (recorder attribution, see [`Msg::id`]).
    id: u64,
    src: u32,
    /// Sender-side op (recorder attribution).
    src_op: u32,
    bytes: u64,
    arrived: Time,
    kind: UnexKind,
}

#[derive(Clone, Debug, Default)]
struct RankState {
    cpu_free: Time,
    nic_free: Time,
    indeg: Vec<u32>,
    posted: TagQueue<PostedRecv>,
    unexpected: TagQueue<UnexMsg>,
    finish: Time,
    done: Vec<bool>,
    /// CPU-occupied time (useful work + injected detours).
    busy: Span,
    /// Useful work requested (busy minus detours).
    work: Span,
}

/// Immutable dependency fan-out for one rank (CSR layout).
#[derive(Clone, Debug, Default)]
struct DepCsr {
    off: Vec<u32>,
    tgt: Vec<u32>,
}

/// A configured simulation, ready to [`run`](Simulator::run).
///
/// Generic over a [`Recorder`]; the default [`NullRecorder`] compiles all
/// instrumentation away (see [`crate::record`]). Attach a live recorder
/// with [`Simulator::with_recorder`].
pub struct Simulator<'a, R: Recorder = NullRecorder> {
    sched: &'a Schedule,
    params: LogGopsParams,
    topology: Box<dyn Topology>,
    deps: Vec<DepCsr>,
    state: Vec<RankState>,
    queue: EventQueue<Event>,
    total_ops: u64,
    completed: u64,
    msgs_delivered: u64,
    control_msgs: u64,
    max_unexpected: usize,
    max_posted: usize,
    events_processed: u64,
    next_msg_id: u64,
    rec: R,
}

/// Simulate `sched` under `params`, injecting noise from `noise`.
///
/// Convenience wrapper around [`Simulator::new`] + [`Simulator::run`].
pub fn simulate<N: NoiseModel + ?Sized>(
    sched: &Schedule,
    params: &LogGopsParams,
    noise: &mut N,
) -> Result<SimResult, SimError> {
    Simulator::new(sched, *params).run(noise)
}

impl<'a> Simulator<'a> {
    /// Prepare a simulation of `sched` under `params` (instrumentation
    /// disabled; see [`Simulator::with_recorder`]).
    pub fn new(sched: &'a Schedule, params: LogGopsParams) -> Self {
        let nranks = sched.num_ranks();
        let mut deps = Vec::with_capacity(nranks);
        let mut state = Vec::with_capacity(nranks);
        let mut total_ops = 0u64;
        for rank in &sched.ranks {
            let n = rank.ops.len();
            total_ops += n as u64;
            // Build CSR of dependents: edges dep -> op.
            let mut counts = vec![0u32; n];
            let mut indeg = vec![0u32; n];
            for op in &rank.ops {
                for d in &op.deps {
                    counts[d.idx()] += 1;
                }
            }
            for (i, op) in rank.ops.iter().enumerate() {
                indeg[i] = op.deps.len() as u32;
            }
            let mut off = vec![0u32; n + 1];
            for i in 0..n {
                off[i + 1] = off[i] + counts[i];
            }
            let mut tgt = vec![0u32; off[n] as usize];
            let mut cursor = off.clone();
            for (i, op) in rank.ops.iter().enumerate() {
                for d in &op.deps {
                    let c = &mut cursor[d.idx()];
                    tgt[*c as usize] = i as u32;
                    *c += 1;
                }
            }
            deps.push(DepCsr { off, tgt });
            state.push(RankState {
                indeg,
                done: vec![false; n],
                ..RankState::default()
            });
        }
        Simulator {
            sched,
            params,
            topology: Box::new(FlatCrossbar),
            deps,
            state,
            // Pre-size for the initial ready wavefront plus in-flight
            // messages; bounded by the op count rather than a fixed guess
            // so large schedules avoid repeated heap regrowth.
            queue: EventQueue::with_capacity((total_ops as usize).clamp(64, 1 << 22)),
            total_ops,
            completed: 0,
            msgs_delivered: 0,
            control_msgs: 0,
            max_unexpected: 0,
            max_posted: 0,
            events_processed: 0,
            next_msg_id: 0,
            rec: NullRecorder,
        }
    }
}

impl<'a, R: Recorder> Simulator<'a, R> {
    /// Attach a recorder, enabling instrumentation for this run.
    ///
    /// Pass `&mut recorder` to keep ownership and inspect the recorder
    /// after [`run`](Simulator::run) consumes the simulator.
    pub fn with_recorder<R2: Recorder>(self, rec: R2) -> Simulator<'a, R2> {
        Simulator {
            sched: self.sched,
            params: self.params,
            topology: self.topology,
            deps: self.deps,
            state: self.state,
            queue: self.queue,
            total_ops: self.total_ops,
            completed: self.completed,
            msgs_delivered: self.msgs_delivered,
            control_msgs: self.control_msgs,
            max_unexpected: self.max_unexpected,
            max_posted: self.max_posted,
            events_processed: self.events_processed,
            next_msg_id: self.next_msg_id,
            rec,
        }
    }

    /// Replace the network topology (default: the paper's flat crossbar).
    /// Only has an effect when `params.hop_latency` is non-zero.
    pub fn with_topology(mut self, topology: Box<dyn Topology>) -> Self {
        self.topology = topology;
        self
    }

    /// Next unique message id (ties `MsgSend` to `MsgDeliver` records).
    #[inline]
    fn new_msg_id(&mut self) -> u64 {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        id
    }

    /// Record a message injection (recorder enabled only).
    #[inline]
    fn record_send(&mut self, msg: &Msg, inject: Time, arrive: Time) {
        if R::ENABLED {
            self.rec.record(SimEvent::MsgSend {
                id: msg.id,
                src: msg.src,
                dst: msg.dst,
                src_op: msg.src_op,
                class: msg.class(),
                bytes: msg.bytes,
                tag: msg.tag,
                inject,
                arrive,
            });
        }
    }

    /// Record queue depths on `rank` after a match-queue mutation.
    #[inline]
    fn record_queues(&mut self, rank: u32, at: Time) {
        if R::ENABLED {
            let st = &self.state[rank as usize];
            self.rec.record(SimEvent::QueueDepth {
                rank,
                at,
                unexpected: st.unexpected.len() as u32,
                posted: st.posted.len() as u32,
            });
        }
    }

    /// Per-hop latency surcharge for a `src → dst` message:
    /// `hop_latency · (hops − 1)`.
    #[inline]
    fn wire_extra(&self, src: u32, dst: u32) -> cesim_model::Span {
        if self.params.hop_latency.is_zero() {
            return cesim_model::Span::ZERO;
        }
        let hops = self.topology.hops(Rank(src), Rank(dst));
        self.params.hop_latency * hops.saturating_sub(1) as u64
    }

    /// Run to completion (or deadlock).
    pub fn run<N: NoiseModel + ?Sized>(mut self, noise: &mut N) -> Result<SimResult, SimError> {
        if self.sched.num_ranks() == 0 {
            return Err(SimError::EmptySchedule);
        }
        // Seed: every op with no dependencies is ready at t = 0.
        for (r, st) in self.state.iter().enumerate() {
            for (i, &d) in st.indeg.iter().enumerate() {
                if d == 0 {
                    self.queue.push(
                        Time::ZERO,
                        Event::OpReady {
                            rank: r as u32,
                            op: i as u32,
                        },
                    );
                }
            }
        }
        while let Some((t, ev)) = self.queue.pop() {
            self.events_processed += 1;
            match ev {
                Event::OpReady { rank, op } => self.exec_op(noise, rank, op, t),
                Event::Arrive(msg) => self.arrive(noise, msg, t),
            }
        }
        if self.completed != self.total_ops {
            return Err(self.deadlock_report());
        }
        let per_rank_finish: Vec<Time> = self.state.iter().map(|s| s.finish).collect();
        let finish = per_rank_finish.iter().copied().max().unwrap_or(Time::ZERO);
        Ok(SimResult {
            finish,
            per_rank_finish,
            per_rank_busy: self.state.iter().map(|s| s.busy).collect(),
            per_rank_work: self.state.iter().map(|s| s.work).collect(),
            ops_executed: self.completed,
            msgs_delivered: self.msgs_delivered,
            control_msgs: self.control_msgs,
            noise_events: noise.events_injected(),
            max_unexpected: self.max_unexpected,
            max_posted: self.max_posted,
            events_processed: self.events_processed,
        })
    }

    /// Occupy `rank`'s CPU with `work` on behalf of `op`, starting no
    /// earlier than `ready`, routing the interval through the noise model
    /// and accounting busy / useful time.
    fn occupy_cpu<N: NoiseModel + ?Sized>(
        &mut self,
        noise: &mut N,
        rank: u32,
        op: u32,
        seg: SegKind,
        ready: Time,
        work: Span,
    ) -> Time {
        let st = &mut self.state[rank as usize];
        let start = ready.max(st.cpu_free);
        let end = noise.stretch(Rank(rank), start, work);
        st.cpu_free = end;
        st.busy += end.since(start);
        st.work += work;
        if R::ENABLED {
            self.rec.record(SimEvent::Exec {
                rank,
                op,
                seg,
                start,
                end,
                work,
            });
            let detour = end.since(start).saturating_sub(work);
            if !detour.is_zero() {
                // Tail-placement convention: the noise model reports only
                // the stretched end, so place the detour at the segment
                // tail (`start + work .. end`).
                self.rec.record(SimEvent::Detour {
                    rank,
                    op,
                    at: start + work,
                    dur: detour,
                });
            }
        }
        end
    }

    fn exec_op<N: NoiseModel + ?Sized>(&mut self, noise: &mut N, rank: u32, op: u32, t: Time) {
        let kind = self.sched.ranks[rank as usize].ops[op as usize].kind;
        match kind {
            OpKind::Calc { dur } => {
                let end = self.occupy_cpu(noise, rank, op, SegKind::Calc, t, dur);
                self.complete(rank, op, end);
            }
            OpKind::Send { dst, bytes, tag } => {
                if self.params.is_rendezvous(bytes) {
                    // RTS control message; the send op stays open until the
                    // CTS returns and the payload is injected.
                    let cpu_end =
                        self.occupy_cpu(noise, rank, op, SegKind::Rts, t, self.params.overhead);
                    let st = &mut self.state[rank as usize];
                    let inject = cpu_end.max(st.nic_free);
                    st.nic_free = inject + self.params.gap;
                    let arrive = inject + self.params.latency + self.wire_extra(rank, dst.0);
                    let msg = Msg {
                        id: self.new_msg_id(),
                        src: rank,
                        dst: dst.0,
                        tag,
                        bytes,
                        src_op: op,
                        kind: MsgKind::Rts { send_op: op },
                    };
                    self.record_send(&msg, inject, arrive);
                    self.queue.push(arrive, Event::Arrive(msg));
                } else {
                    let cpu_end = self.occupy_cpu(
                        noise,
                        rank,
                        op,
                        SegKind::SendCpu,
                        t,
                        self.params.cpu_cost(bytes),
                    );
                    let st = &mut self.state[rank as usize];
                    let inject = cpu_end.max(st.nic_free);
                    st.nic_free = inject + self.params.nic_cost(bytes);
                    let arrive =
                        inject + self.params.wire_time(bytes) + self.wire_extra(rank, dst.0);
                    let msg = Msg {
                        id: self.new_msg_id(),
                        src: rank,
                        dst: dst.0,
                        tag,
                        bytes,
                        src_op: op,
                        kind: MsgKind::Eager,
                    };
                    self.record_send(&msg, inject, arrive);
                    self.queue.push(arrive, Event::Arrive(msg));
                    // Eager sends complete locally once buffered.
                    self.complete(rank, op, cpu_end);
                }
            }
            OpKind::Recv { src, tag, .. } => {
                let srcf = src.map(|r| r.0);
                if let Some(u) = self.take_unexpected(rank, srcf, tag) {
                    if R::ENABLED {
                        self.rec.record(SimEvent::MsgDeliver {
                            id: u.id,
                            src: u.src,
                            dst: rank,
                            src_op: u.src_op,
                            dst_op: op,
                            class: match u.kind {
                                UnexKind::Eager => MsgClass::Eager,
                                UnexKind::Rts { .. } => MsgClass::Rts,
                            },
                            bytes: u.bytes,
                            at: t,
                        });
                        self.record_queues(rank, t);
                    }
                    match u.kind {
                        UnexKind::Eager => self.finish_recv(noise, rank, op, u.arrived, u.bytes, t),
                        UnexKind::Rts { send_op } => self.send_cts(
                            noise,
                            rank,
                            u.src,
                            tag,
                            u.bytes,
                            send_op,
                            op,
                            t.max(u.arrived),
                        ),
                    }
                } else {
                    let st = &mut self.state[rank as usize];
                    st.posted.push(
                        tag,
                        PostedRecv {
                            op,
                            src: srcf,
                            posted_at: t,
                        },
                    );
                    self.max_posted = self.max_posted.max(st.posted.len());
                    if R::ENABLED {
                        self.rec.record(SimEvent::RecvPosted { rank, op, at: t });
                        self.record_queues(rank, t);
                    }
                }
            }
        }
    }

    fn arrive<N: NoiseModel + ?Sized>(&mut self, noise: &mut N, msg: Msg, t: Time) {
        match msg.kind {
            MsgKind::Eager | MsgKind::Rts { .. } => {
                if matches!(msg.kind, MsgKind::Eager) {
                    self.msgs_delivered += 1;
                } else {
                    self.control_msgs += 1;
                }
                if let Some(p) = self.take_posted(msg.dst, msg.src, msg.tag) {
                    if R::ENABLED {
                        self.rec.record(SimEvent::MsgDeliver {
                            id: msg.id,
                            src: msg.src,
                            dst: msg.dst,
                            src_op: msg.src_op,
                            dst_op: p.op,
                            class: msg.class(),
                            bytes: msg.bytes,
                            at: t,
                        });
                        self.record_queues(msg.dst, t);
                    }
                    match msg.kind {
                        MsgKind::Eager => {
                            self.finish_recv(noise, msg.dst, p.op, t, msg.bytes, p.posted_at)
                        }
                        MsgKind::Rts { send_op } => self.send_cts(
                            noise, msg.dst, msg.src, msg.tag, msg.bytes, send_op, p.op, t,
                        ),
                        _ => unreachable!(),
                    }
                } else {
                    let kind = match msg.kind {
                        MsgKind::Eager => UnexKind::Eager,
                        MsgKind::Rts { send_op } => UnexKind::Rts { send_op },
                        _ => unreachable!(),
                    };
                    let st = &mut self.state[msg.dst as usize];
                    st.unexpected.push(
                        msg.tag,
                        UnexMsg {
                            id: msg.id,
                            src: msg.src,
                            src_op: msg.src_op,
                            bytes: msg.bytes,
                            arrived: t,
                            kind,
                        },
                    );
                    self.max_unexpected = self.max_unexpected.max(st.unexpected.len());
                    self.record_queues(msg.dst, t);
                }
            }
            MsgKind::Cts { send_op, recv_op } => {
                // Back at the original sender: inject the payload.
                self.control_msgs += 1;
                if R::ENABLED {
                    self.rec.record(SimEvent::MsgDeliver {
                        id: msg.id,
                        src: msg.src,
                        dst: msg.dst,
                        src_op: msg.src_op,
                        dst_op: send_op,
                        class: MsgClass::Cts,
                        bytes: msg.bytes,
                        at: t,
                    });
                }
                let sender = msg.dst;
                let cpu_end = self.occupy_cpu(
                    noise,
                    sender,
                    send_op,
                    SegKind::RendPayload,
                    t,
                    self.params.cpu_cost(msg.bytes),
                );
                let st = &mut self.state[sender as usize];
                let inject = cpu_end.max(st.nic_free);
                st.nic_free = inject + self.params.nic_cost(msg.bytes);
                let arrive =
                    inject + self.params.wire_time(msg.bytes) + self.wire_extra(sender, msg.src);
                let payload = Msg {
                    id: self.new_msg_id(),
                    src: sender,
                    dst: msg.src,
                    tag: msg.tag,
                    bytes: msg.bytes,
                    src_op: send_op,
                    kind: MsgKind::Payload { recv_op },
                };
                self.record_send(&payload, inject, arrive);
                self.queue.push(arrive, Event::Arrive(payload));
                self.complete(sender, send_op, cpu_end);
            }
            MsgKind::Payload { recv_op } => {
                self.msgs_delivered += 1;
                if R::ENABLED {
                    self.rec.record(SimEvent::MsgDeliver {
                        id: msg.id,
                        src: msg.src,
                        dst: msg.dst,
                        src_op: msg.src_op,
                        dst_op: recv_op,
                        class: MsgClass::Payload,
                        bytes: msg.bytes,
                        at: t,
                    });
                }
                self.finish_recv(noise, msg.dst, recv_op, t, msg.bytes, t);
            }
        }
    }

    /// Complete a receive once its message is available at `avail`.
    #[allow(clippy::too_many_arguments)]
    fn finish_recv<N: NoiseModel + ?Sized>(
        &mut self,
        noise: &mut N,
        rank: u32,
        op: u32,
        avail: Time,
        bytes: u64,
        posted_at: Time,
    ) {
        let ready = avail.max(posted_at);
        let end = self.occupy_cpu(
            noise,
            rank,
            op,
            SegKind::RecvCpu,
            ready,
            self.params.cpu_cost(bytes),
        );
        self.complete(rank, op, end);
    }

    /// Receiver side of rendezvous: answer an RTS with a CTS.
    #[allow(clippy::too_many_arguments)]
    fn send_cts<N: NoiseModel + ?Sized>(
        &mut self,
        noise: &mut N,
        rank: u32,
        sender: u32,
        tag: Tag,
        payload_bytes: u64,
        send_op: u32,
        recv_op: u32,
        t: Time,
    ) {
        let cpu_end = self.occupy_cpu(
            noise,
            rank,
            recv_op,
            SegKind::CtsReply,
            t,
            self.params.overhead,
        );
        let st = &mut self.state[rank as usize];
        let inject = cpu_end.max(st.nic_free);
        st.nic_free = inject + self.params.gap;
        let arrive = inject + self.params.latency + self.wire_extra(rank, sender);
        let msg = Msg {
            id: self.new_msg_id(),
            src: rank,
            dst: sender,
            tag,
            bytes: payload_bytes,
            src_op: recv_op,
            kind: MsgKind::Cts { send_op, recv_op },
        };
        self.record_send(&msg, inject, arrive);
        self.queue.push(arrive, Event::Arrive(msg));
    }

    /// First posted receive at `dst` matching `(src, tag)`, FIFO order.
    ///
    /// Tag match is exact, so only `tag`'s bucket needs scanning; the
    /// `src == None` wildcard on a posted receive is handled in the
    /// predicate (see [`TagQueue::take_first`] for the order argument).
    fn take_posted(&mut self, dst: u32, src: u32, tag: Tag) -> Option<PostedRecv> {
        self.state[dst as usize]
            .posted
            .take_first(tag, |p| p.src.is_none() || p.src == Some(src))
    }

    /// First unexpected message at `rank` matching the receive's filter.
    fn take_unexpected(&mut self, rank: u32, srcf: Option<u32>, tag: Tag) -> Option<UnexMsg> {
        self.state[rank as usize]
            .unexpected
            .take_first(tag, |u| srcf.is_none() || srcf == Some(u.src))
    }

    fn complete(&mut self, rank: u32, op: u32, t: Time) {
        let r = rank as usize;
        {
            let st = &mut self.state[r];
            debug_assert!(!st.done[op as usize], "op completed twice");
            st.done[op as usize] = true;
            st.finish = st.finish.max(t);
        }
        self.completed += 1;
        if R::ENABLED {
            self.rec.record(SimEvent::OpDone { rank, op, at: t });
        }
        let csr = &self.deps[r];
        let lo = csr.off[op as usize] as usize;
        let hi = csr.off[op as usize + 1] as usize;
        for i in lo..hi {
            let d = csr.tgt[i];
            let indeg = &mut self.state[r].indeg[d as usize];
            *indeg -= 1;
            if *indeg == 0 {
                if R::ENABLED {
                    self.rec.record(SimEvent::DepEdge {
                        rank,
                        from: op,
                        to: d,
                        at: t,
                    });
                }
                self.queue.push(t, Event::OpReady { rank, op: d });
            }
        }
    }

    fn deadlock_report(&self) -> SimError {
        let mut stuck = Vec::new();
        'outer: for (r, st) in self.state.iter().enumerate() {
            for (i, &d) in st.done.iter().enumerate() {
                if !d {
                    let op = &self.sched.ranks[r].ops[i];
                    stuck.push(format!(
                        "rank {r} op {i}: {} (unmet deps: {})",
                        op.kind, st.indeg[i]
                    ));
                    if stuck.len() >= 8 {
                        break 'outer;
                    }
                }
            }
        }
        SimError::Deadlock {
            completed: self.completed,
            total: self.total_ops,
            stuck_examples: stuck,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{NoNoise, ScriptedNoise};
    use cesim_goal::{Rank, ScheduleBuilder, Tag};
    use cesim_model::Span;

    fn xc40() -> LogGopsParams {
        LogGopsParams::xc40()
    }

    #[test]
    fn single_calc() {
        let mut b = ScheduleBuilder::new(1);
        b.calc(Rank(0), Span::from_us(5), &[]);
        let s = b.build();
        let r = simulate(&s, &xc40(), &mut NoNoise).unwrap();
        assert_eq!(r.finish, Time::ZERO + Span::from_us(5));
        assert_eq!(r.ops_executed, 1);
        assert_eq!(r.msgs_delivered, 0);
    }

    #[test]
    fn chained_calcs_serialize() {
        let mut b = ScheduleBuilder::new(1);
        let a = b.calc(Rank(0), Span::from_us(2), &[]);
        b.calc(Rank(0), Span::from_us(3), &[a]);
        // Independent op with no deps still serializes on the CPU.
        b.calc(Rank(0), Span::from_us(4), &[]);
        let s = b.build();
        let r = simulate(&s, &xc40(), &mut NoNoise).unwrap();
        assert_eq!(r.finish, Time::ZERO + Span::from_us(9));
    }

    /// Analytic check of the eager path:
    /// receiver finishes at (o + bO) + (L + bG) + (o + bO).
    #[test]
    fn eager_ping_analytic() {
        let p = xc40();
        let bytes = 8u64;
        let mut b = ScheduleBuilder::new(2);
        b.send(Rank(0), Rank(1), bytes, Tag(1), &[]);
        b.recv(Rank(1), Some(Rank(0)), bytes, Tag(1), &[]);
        let s = b.build();
        let r = simulate(&s, &p, &mut NoNoise).unwrap();
        let expect = Time::ZERO
            + p.cpu_cost(bytes) // sender o + bO
            + p.wire_time(bytes) // L + bG
            + p.cpu_cost(bytes); // receiver o + bO
        assert_eq!(r.per_rank_finish[1], expect);
        assert_eq!(r.per_rank_finish[0], Time::ZERO + p.cpu_cost(bytes));
        assert_eq!(r.msgs_delivered, 1);
        assert_eq!(r.control_msgs, 0);
    }

    /// Analytic check of the rendezvous path:
    /// RTS(o, L) → CTS(o, L) → payload(o+bO, L+bG, o+bO).
    #[test]
    fn rendezvous_ping_analytic() {
        let p = xc40();
        let bytes = 32 * 1024u64; // > 16 KiB threshold
        assert!(p.is_rendezvous(bytes));
        let mut b = ScheduleBuilder::new(2);
        b.send(Rank(0), Rank(1), bytes, Tag(1), &[]);
        b.recv(Rank(1), Some(Rank(0)), bytes, Tag(1), &[]);
        let s = b.build();
        let r = simulate(&s, &p, &mut NoNoise).unwrap();

        let rts_at_recv = Time::ZERO + p.overhead + p.latency;
        let cts_at_sender = rts_at_recv + p.overhead + p.latency;
        let sender_done = cts_at_sender + p.cpu_cost(bytes);
        let payload_at_recv = sender_done + p.wire_time(bytes);
        let recv_done = payload_at_recv + p.cpu_cost(bytes);

        assert_eq!(r.per_rank_finish[0], sender_done);
        assert_eq!(r.per_rank_finish[1], recv_done);
        assert_eq!(r.msgs_delivered, 1);
        assert_eq!(r.control_msgs, 2);
    }

    /// Rendezvous where the send starts before the recv is posted: the RTS
    /// sits in the unexpected queue until the receiver posts.
    #[test]
    fn rendezvous_late_recv() {
        let p = xc40();
        let bytes = 64 * 1024u64;
        let delay = Span::from_ms(1);
        let mut b = ScheduleBuilder::new(2);
        b.send(Rank(0), Rank(1), bytes, Tag(1), &[]);
        let c = b.calc(Rank(1), delay, &[]);
        b.recv(Rank(1), Some(Rank(0)), bytes, Tag(1), &[c]);
        let s = b.build();
        let r = simulate(&s, &p, &mut NoNoise).unwrap();
        // CTS leaves the receiver only after its delay calc.
        let cts_at_sender = Time::ZERO + delay + p.overhead + p.latency;
        let sender_done = cts_at_sender + p.cpu_cost(bytes);
        assert_eq!(r.per_rank_finish[0], sender_done);
        assert_eq!(r.max_unexpected, 1);
    }

    #[test]
    fn unexpected_eager_message() {
        let p = xc40();
        let mut b = ScheduleBuilder::new(2);
        b.send(Rank(0), Rank(1), 8, Tag(1), &[]);
        let c = b.calc(Rank(1), Span::from_ms(2), &[]);
        b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[c]);
        let s = b.build();
        let r = simulate(&s, &p, &mut NoNoise).unwrap();
        // Message arrived long before the recv posted; recv completes right
        // after the calc plus processing overhead.
        let expect = Time::ZERO + Span::from_ms(2) + p.cpu_cost(8);
        assert_eq!(r.per_rank_finish[1], expect);
        assert_eq!(r.max_unexpected, 1);
    }

    #[test]
    fn any_source_matches_first_arrival() {
        let p = xc40();
        let mut b = ScheduleBuilder::new(3);
        // Rank 1 sends immediately; rank 0 sends after a long calc.
        let c = b.calc(Rank(0), Span::from_ms(5), &[]);
        b.send(Rank(0), Rank(2), 8, Tag(1), &[c]);
        b.send(Rank(1), Rank(2), 8, Tag(1), &[]);
        let r1 = b.recv(Rank(2), None, 8, Tag(1), &[]);
        b.recv(Rank(2), None, 8, Tag(1), &[r1]);
        let s = b.build();
        let r = simulate(&s, &p, &mut NoNoise).unwrap();
        // First recv completes well before rank 0's message exists.
        assert!(r.per_rank_finish[2] > Time::ZERO + Span::from_ms(5));
        assert_eq!(r.msgs_delivered, 2);
    }

    #[test]
    fn fifo_matching_same_src_tag() {
        let p = xc40();
        let mut b = ScheduleBuilder::new(2);
        let s1 = b.send(Rank(0), Rank(1), 100, Tag(1), &[]);
        b.send(Rank(0), Rank(1), 200, Tag(1), &[s1]);
        let r1 = b.recv(Rank(1), Some(Rank(0)), 100, Tag(1), &[]);
        b.recv(Rank(1), Some(Rank(0)), 200, Tag(1), &[r1]);
        let s = b.build();
        // Must complete without deadlock; FIFO keeps pairs aligned.
        let r = simulate(&s, &p, &mut NoNoise).unwrap();
        assert_eq!(r.msgs_delivered, 2);
    }

    #[test]
    fn nic_gap_serializes_injections() {
        let p = xc40();
        let bytes = 1024u64;
        // Two sends back-to-back: second arrival is delayed by max(cpu, gap)
        // serialization.
        let mut b = ScheduleBuilder::new(2);
        let s1 = b.send(Rank(0), Rank(1), bytes, Tag(1), &[]);
        b.send(Rank(0), Rank(1), bytes, Tag(2), &[s1]);
        let r1 = b.recv(Rank(1), Some(Rank(0)), bytes, Tag(1), &[]);
        b.recv(Rank(1), Some(Rank(0)), bytes, Tag(2), &[r1]);
        let s = b.build();
        let r = simulate(&s, &p, &mut NoNoise).unwrap();
        // Sender CPU: two cpu_cost intervals; second injection must wait
        // for NIC: inject2 = max(2*cpu_cost, inject1 + nic_cost).
        let cpu = p.cpu_cost(bytes);
        let inject1 = Time::ZERO + cpu;
        let inject2 = (inject1 + cpu).max(inject1 + p.nic_cost(bytes));
        let arrive2 = inject2 + p.wire_time(bytes);
        let expect = arrive2 + p.cpu_cost(bytes);
        assert_eq!(r.per_rank_finish[1], expect);
    }

    #[test]
    fn deadlock_detected() {
        let mut b = ScheduleBuilder::new(2);
        b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[]);
        let s = b.build();
        let e = simulate(&s, &xc40(), &mut NoNoise).unwrap_err();
        match e {
            SimError::Deadlock {
                completed,
                total,
                stuck_examples,
            } => {
                assert_eq!(completed, 0);
                assert_eq!(total, 1);
                assert!(stuck_examples[0].contains("recv"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn empty_schedule_rejected() {
        let s = Schedule::default();
        assert_eq!(
            simulate(&s, &xc40(), &mut NoNoise).unwrap_err(),
            SimError::EmptySchedule
        );
    }

    /// The Fig. 1 scenario: three ranks chained by two messages; a detour
    /// on rank 0 delays rank 2, which rank 0 never talks to.
    #[test]
    fn fig1_delay_propagates_transitively() {
        let p = xc40();
        let work = Span::from_us(100);
        let build = || {
            let mut b = ScheduleBuilder::new(3);
            let c0 = b.calc(Rank(0), work, &[]);
            b.send(Rank(0), Rank(1), 8, Tag(1), &[c0]);
            let r1 = b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[]);
            let c1 = b.calc(Rank(1), work, &[r1]);
            b.send(Rank(1), Rank(2), 8, Tag(2), &[c1]);
            let r2 = b.recv(Rank(2), Some(Rank(1)), 8, Tag(2), &[]);
            b.calc(Rank(2), work, &[r2]);
            b.build()
        };
        let base = simulate(&build(), &p, &mut NoNoise).unwrap();
        let detour = Span::from_ms(10);
        let mut noise = ScriptedNoise::new(vec![(Rank(0), Time::ZERO, detour)]);
        let pert = simulate(&build(), &p, &mut noise).unwrap();
        assert_eq!(pert.noise_events, 1);
        // Rank 2's finish shifts by exactly the rank-0 detour.
        assert_eq!(pert.per_rank_finish[2], base.per_rank_finish[2] + detour);
        assert_eq!(pert.finish, base.finish + detour);
    }

    #[test]
    fn noise_on_uninvolved_rank_is_harmless() {
        let p = xc40();
        let build = || {
            let mut b = ScheduleBuilder::new(3);
            b.send(Rank(0), Rank(1), 8, Tag(1), &[]);
            b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[]);
            b.calc(Rank(2), Span::from_us(1), &[]);
            b.build()
        };
        let base = simulate(&build(), &p, &mut NoNoise).unwrap();
        // A detour on rank 2 smaller than the communication time of ranks
        // 0/1 does not move the app finish time.
        let mut noise = ScriptedNoise::new(vec![(Rank(2), Time::ZERO, Span::from_ns(10))]);
        let pert = simulate(&build(), &p, &mut noise).unwrap();
        assert_eq!(pert.finish, base.finish);
    }

    #[test]
    fn determinism_same_inputs_same_result() {
        let mut b = ScheduleBuilder::new(4);
        let mut tags = cesim_goal::builder::TagPool::new();
        let entry: Vec<_> = (0..4)
            .map(|r| b.calc(Rank::from(r), Span::from_us(3), &[]))
            .collect();
        cesim_goal::collectives::allreduce_recursive_doubling(
            &mut b,
            &mut tags,
            64,
            &cesim_goal::collectives::CollectiveCosts::default(),
            &entry,
        );
        let s = b.build();
        let r1 = simulate(&s, &xc40(), &mut NoNoise).unwrap();
        let r2 = simulate(&s, &xc40(), &mut NoNoise).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn collective_schedules_complete() {
        use cesim_goal::builder::TagPool;
        use cesim_goal::collectives as coll;
        for n in [2usize, 3, 5, 8, 13] {
            let mut b = ScheduleBuilder::new(n);
            let mut tags = TagPool::new();
            let entry: Vec<_> = (0..n)
                .map(|r| b.calc(Rank::from(r), Span::from_us(1), &[]))
                .collect();
            let e1 = coll::barrier_dissemination(&mut b, &mut tags, &entry);
            let e2 = coll::allreduce_recursive_doubling(
                &mut b,
                &mut tags,
                8,
                &coll::CollectiveCosts::default(),
                &e1,
            );
            let e3 = coll::bcast_binomial(&mut b, &mut tags, Rank(1 % n as u32), 1 << 20, &e2);
            let e4 = coll::reduce_binomial(
                &mut b,
                &mut tags,
                Rank(0),
                4096,
                &coll::CollectiveCosts::default(),
                &e3,
            );
            let e5 = coll::allgather_ring(&mut b, &mut tags, 256, &e4);
            coll::alltoall_pairwise(&mut b, &mut tags, 64, &e5);
            let s = b.build();
            s.validate().unwrap();
            let r = simulate(&s, &xc40(), &mut NoNoise).unwrap();
            assert!(r.finish > Time::ZERO, "n = {n}");
        }
    }

    #[test]
    fn rendezvous_inside_collective_completes() {
        use cesim_goal::builder::TagPool;
        use cesim_goal::collectives as coll;
        let n = 6;
        let mut b = ScheduleBuilder::new(n);
        let mut tags = TagPool::new();
        let entry: Vec<_> = (0..n)
            .map(|r| b.calc(Rank::from(r), Span::ZERO, &[]))
            .collect();
        // 1 MiB payload: forces the rendezvous path inside the collective.
        coll::allreduce_recursive_doubling(
            &mut b,
            &mut tags,
            1 << 20,
            &coll::CollectiveCosts::default(),
            &entry,
        );
        let s = b.build();
        let r = simulate(&s, &xc40(), &mut NoNoise).unwrap();
        assert!(r.control_msgs > 0);
        assert_eq!(r.ops_executed, s.total_ops() as u64);
    }

    #[test]
    fn topology_hop_latency_delays_distant_pairs() {
        use crate::topology::{FlatCrossbar, Torus3D};
        let hop = Span::from_us(1);
        let p = xc40().with_hop_latency(hop);
        // A 4x4x4 torus: rank 0 -> 1 is adjacent; rank 0 -> 42 ([2,2,2])
        // is 6 hops away.
        let ping = |dst: u32| {
            let mut b = ScheduleBuilder::new(64);
            b.send(Rank(0), Rank(dst), 8, Tag(1), &[]);
            b.recv(Rank(dst), Some(Rank(0)), 8, Tag(1), &[]);
            b.build()
        };
        let run = |dst: u32| {
            Simulator::new(&ping(dst), p)
                .with_topology(Box::new(Torus3D::new([4, 4, 4])))
                .run(&mut NoNoise)
                .unwrap()
                .per_rank_finish[dst as usize]
        };
        let near = run(1);
        let far = run(42);
        assert_eq!(far.since(Time::ZERO) - near.since(Time::ZERO), hop * 5);
        // Flat topology (or zero hop latency) reproduces the default.
        let base = simulate(&ping(42), &xc40(), &mut NoNoise).unwrap();
        let flat = Simulator::new(&ping(42), xc40())
            .with_topology(Box::new(FlatCrossbar))
            .run(&mut NoNoise)
            .unwrap();
        assert_eq!(base, flat);
        let torus_no_hop = Simulator::new(&ping(42), xc40())
            .with_topology(Box::new(Torus3D::new([4, 4, 4])))
            .run(&mut NoNoise)
            .unwrap();
        assert_eq!(base, torus_no_hop);
    }

    #[test]
    fn rendezvous_pays_hop_latency_on_all_three_messages() {
        use crate::topology::Dragonfly;
        let hop = Span::from_us(10);
        let p = xc40().with_hop_latency(hop);
        let bytes = 64 * 1024u64;
        let build = || {
            let mut b = ScheduleBuilder::new(32);
            b.send(Rank(0), Rank(31), bytes, Tag(1), &[]);
            b.recv(Rank(31), Some(Rank(0)), bytes, Tag(1), &[]);
            b.build()
        };
        let flat = simulate(&build(), &xc40(), &mut NoNoise).unwrap();
        let df = Simulator::new(&build(), p)
            .with_topology(Box::new(Dragonfly::new(16)))
            .run(&mut NoNoise)
            .unwrap();
        // Ranks 0 and 31 are in different groups: 3 hops, surcharge
        // 2 * hop per message, RTS + CTS + payload = 3 messages.
        assert_eq!(
            df.per_rank_finish[31].since(Time::ZERO) - flat.per_rank_finish[31].since(Time::ZERO),
            hop * 2 * 3
        );
    }

    #[test]
    fn busy_work_accounting() {
        let p = xc40();
        let bytes = 8u64;
        let build = || {
            let mut b = ScheduleBuilder::new(2);
            let c = b.calc(Rank(0), Span::from_us(10), &[]);
            b.send(Rank(0), Rank(1), bytes, Tag(1), &[c]);
            b.recv(Rank(1), Some(Rank(0)), bytes, Tag(1), &[]);
            b.build()
        };
        // Without noise: busy == work on both ranks; rank 1 is blocked
        // while the message is in flight.
        let r = simulate(&build(), &p, &mut NoNoise).unwrap();
        assert_eq!(r.per_rank_busy, r.per_rank_work);
        assert_eq!(r.total_stolen(), Span::ZERO);
        assert_eq!(r.per_rank_work[0], Span::from_us(10) + p.cpu_cost(bytes));
        assert_eq!(r.per_rank_work[1], p.cpu_cost(bytes));
        assert!(r.blocked_time(1).unwrap() > Span::ZERO);
        assert_eq!(r.blocked_time(99), None);
        // With one scripted detour on rank 0: exactly that much stolen.
        let d = Span::from_ms(3);
        let mut noise = ScriptedNoise::new(vec![(Rank(0), Time::ZERO, d)]);
        let rn = simulate(&build(), &p, &mut noise).unwrap();
        assert_eq!(rn.total_stolen(), d);
        assert_eq!(rn.per_rank_work, r.per_rank_work);
        // The detour lands on both ranks' critical paths: amplification
        // is (added wall) / (stolen per rank) = d / (d/2) = 2.
        let amp = rn.amplification(r.finish).unwrap();
        assert!((amp - 2.0).abs() < 0.01, "amp = {amp}");
    }

    #[test]
    fn recorder_captures_eager_ping() {
        use crate::record::{MsgClass, SegKind, SimEvent, VecRecorder};
        let p = xc40();
        let bytes = 8u64;
        let mut b = ScheduleBuilder::new(2);
        b.send(Rank(0), Rank(1), bytes, Tag(7), &[]);
        b.recv(Rank(1), Some(Rank(0)), bytes, Tag(7), &[]);
        let s = b.build();
        let mut rec = VecRecorder::default();
        let r = Simulator::new(&s, p)
            .with_recorder(&mut rec)
            .run(&mut NoNoise)
            .unwrap();
        let send_end = Time::ZERO + p.cpu_cost(bytes);
        let arrive = send_end + p.wire_time(bytes);
        // One send segment, one recv segment, a matching MsgSend/MsgDeliver
        // pair, two OpDones, and queue-depth samples.
        let execs: Vec<_> = rec
            .events
            .iter()
            .filter(|e| matches!(e, SimEvent::Exec { .. }))
            .collect();
        assert_eq!(execs.len(), 2);
        assert!(matches!(
            execs[0],
            SimEvent::Exec {
                rank: 0,
                op: 0,
                seg: SegKind::SendCpu,
                start: Time::ZERO,
                ..
            }
        ));
        let sends: Vec<_> = rec
            .events
            .iter()
            .filter_map(|e| match *e {
                SimEvent::MsgSend {
                    id,
                    class,
                    inject,
                    arrive,
                    ..
                } => Some((id, class, inject, arrive)),
                _ => None,
            })
            .collect();
        assert_eq!(sends, vec![(0, MsgClass::Eager, send_end, arrive)]);
        let delivers: Vec<_> = rec
            .events
            .iter()
            .filter_map(|e| match *e {
                SimEvent::MsgDeliver {
                    id,
                    src_op,
                    dst_op,
                    at,
                    ..
                } => Some((id, src_op, dst_op, at)),
                _ => None,
            })
            .collect();
        // Recv posted at t=0, message arrives later: delivered at arrival.
        assert_eq!(delivers, vec![(0, 0, 0, arrive)]);
        let dones: Vec<_> = rec
            .events
            .iter()
            .filter_map(|e| match *e {
                SimEvent::OpDone { rank, at, .. } => Some((rank, at)),
                _ => None,
            })
            .collect();
        assert_eq!(dones, vec![(0, send_end), (1, r.per_rank_finish[1])]);
        // Detour-free run records no detours; events are time-ordered
        // per rank.
        assert!(!rec
            .events
            .iter()
            .any(|e| matches!(e, SimEvent::Detour { .. })));
    }

    #[test]
    fn recorder_detour_event_matches_script() {
        use crate::record::{SimEvent, VecRecorder};
        let mut b = ScheduleBuilder::new(1);
        b.calc(Rank(0), Span::from_us(10), &[]);
        let s = b.build();
        let d = Span::from_us(3);
        let mut noise = ScriptedNoise::new(vec![(Rank(0), Time::ZERO, d)]);
        let mut rec = VecRecorder::default();
        Simulator::new(&s, xc40())
            .with_recorder(&mut rec)
            .run(&mut noise)
            .unwrap();
        let detours: Vec<_> = rec
            .events
            .iter()
            .filter_map(|e| match *e {
                SimEvent::Detour { rank, at, dur, .. } => Some((rank, at, dur)),
                _ => None,
            })
            .collect();
        // Tail placement: detour sits after the 10 us of useful work.
        assert_eq!(detours, vec![(0, Time::ZERO + Span::from_us(10), d)]);
        let stolen: Span = detours.iter().map(|&(_, _, dur)| dur).sum();
        assert_eq!(stolen, d);
    }

    /// The recorder must not perturb simulation results.
    #[test]
    fn recorder_does_not_change_results() {
        use crate::record::VecRecorder;
        let mut b = ScheduleBuilder::new(2);
        let c = b.calc(Rank(0), Span::from_us(5), &[]);
        b.send(Rank(0), Rank(1), 64 * 1024, Tag(1), &[c]);
        b.recv(Rank(1), Some(Rank(0)), 64 * 1024, Tag(1), &[]);
        let s = b.build();
        let plain = simulate(&s, &xc40(), &mut NoNoise).unwrap();
        let mut rec = VecRecorder::default();
        let traced = Simulator::new(&s, xc40())
            .with_recorder(&mut rec)
            .run(&mut NoNoise)
            .unwrap();
        assert_eq!(plain, traced);
        assert!(!rec.events.is_empty());
    }

    #[test]
    fn slowdown_is_monotone_in_detour_size() {
        let p = xc40();
        let build = || {
            let mut b = ScheduleBuilder::new(2);
            let c = b.calc(Rank(0), Span::from_us(50), &[]);
            b.send(Rank(0), Rank(1), 8, Tag(1), &[c]);
            b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[]);
            b.build()
        };
        let base = simulate(&build(), &p, &mut NoNoise).unwrap().finish;
        let mut prev = base;
        for us in [1u64, 10, 100, 1000] {
            let mut n = ScriptedNoise::new(vec![(Rank(0), Time::ZERO, Span::from_us(us))]);
            let f = simulate(&build(), &p, &mut n).unwrap().finish;
            assert!(f >= prev);
            prev = f;
        }
        assert_eq!(prev, base + Span::from_us(1000));
    }
}
