//! Observability hooks: typed simulation events and the [`Recorder`]
//! contract.
//!
//! The engine funnels every externally meaningful state change through
//! [`Recorder::record`]: CPU segments (with the work they were asked to do,
//! so injected detour time is recoverable), op completions, message
//! injections and deliveries (eager, RTS, CTS, rendezvous payload),
//! dependency-readiness edges, receive postings, and match-queue depth
//! samples. Together these events are a complete account of a run — enough
//! to rebuild per-rank timelines, walk the critical path, and attribute
//! noise (see the `cesim-obs` crate, which provides the ring-buffer
//! [`TimelineRecorder`], Chrome-trace export, and the critical-path
//! walker).
//!
//! **Zero cost when disabled.** [`Simulator`](crate::Simulator) is generic
//! over its recorder and every `record` call is guarded by the associated
//! constant [`Recorder::ENABLED`]. With the default [`NullRecorder`]
//! (`ENABLED = false`) the guard is a compile-time constant and the whole
//! instrumentation — including event construction — is dead code the
//! optimizer removes; `simulate()` compiles to the same loop it was before
//! the hooks existed. The `obs` bench in `cesim-bench` keeps this honest.
//!
//! **Timestamp conventions.**
//!
//! * [`SimEvent::Exec`] covers the full CPU occupation `start..end`; the
//!   interval's injected detour time is `(end - start) - work`.
//! * [`SimEvent::Detour`] is emitted (only when non-zero) with the detour
//!   placed at the **tail** of its segment, `at = end - dur` — the noise
//!   model only reports the stretched end, so the placement inside the
//!   segment is a convention, chosen so that `start + work = at`.
//! * [`SimEvent::MsgDeliver`] fires at *match* time. For a message that
//!   found a posted receive this equals its wire arrival; for a message
//!   that waited in the unexpected queue it is the (later) time the
//!   receive was posted. Comparing it with [`SimEvent::MsgSend::arrive`]
//!   separates network-bound from receiver-bound completions.

use cesim_goal::Tag;
use cesim_model::{Span, Time};

/// What a recorded CPU segment was doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SegKind {
    /// Application compute (`calc` work).
    Calc,
    /// Eager-send CPU overhead (`o + bytes·O`).
    SendCpu,
    /// Rendezvous request-to-send overhead on the sender.
    Rts,
    /// Rendezvous clear-to-send reply overhead on the receiver.
    CtsReply,
    /// Rendezvous payload injection overhead on the sender.
    RendPayload,
    /// Receive-completion CPU overhead.
    RecvCpu,
}

impl SegKind {
    /// Short lowercase label (Chrome-trace slice names).
    pub fn label(self) -> &'static str {
        match self {
            SegKind::Calc => "calc",
            SegKind::SendCpu => "send",
            SegKind::Rts => "rts",
            SegKind::CtsReply => "cts",
            SegKind::RendPayload => "payload",
            SegKind::RecvCpu => "recv",
        }
    }

    /// True for application compute; everything else is communication
    /// overhead.
    pub fn is_compute(self) -> bool {
        matches!(self, SegKind::Calc)
    }
}

/// Wire-message classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Eagerly buffered payload.
    Eager,
    /// Rendezvous request-to-send (control).
    Rts,
    /// Rendezvous clear-to-send (control).
    Cts,
    /// Rendezvous payload.
    Payload,
}

impl MsgClass {
    /// Short lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Eager => "eager",
            MsgClass::Rts => "rts",
            MsgClass::Cts => "cts",
            MsgClass::Payload => "payload",
        }
    }
}

/// One typed simulation event, stamped with simulated time.
///
/// All variants are small `Copy` records so a ring buffer of them is a
/// flat allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimEvent {
    /// A CPU segment executed on behalf of op `op`: occupied
    /// `start..end`, of which `work` was requested computation — the
    /// remainder is injected detour time.
    Exec {
        /// Executing rank.
        rank: u32,
        /// Op the segment serves (for [`SegKind::CtsReply`] this is the
        /// *receive* op answering the RTS).
        op: u32,
        /// Segment purpose.
        seg: SegKind,
        /// Segment start (after CPU-cursor serialization).
        start: Time,
        /// Segment end, including injected detours.
        end: Time,
        /// Useful work requested.
        work: Span,
    },
    /// A non-zero noise detour of `dur` inside the segment ending at
    /// `at + dur` (tail-placement convention, see module docs).
    ///
    /// Note the noise-model granularity: one `Detour` record aggregates
    /// **all** CE arrivals the noise model folded into a single CPU
    /// segment (the engine only observes the stretched segment end), so
    /// an id names one contiguous stolen interval, not necessarily one
    /// CE.
    Detour {
        /// Stable per-run detour id, assigned in emission order starting
        /// at 0. Deterministic: the engine loop is deterministic, so the
        /// same (schedule, params, noise stream) yields the same ids.
        /// Provenance tooling (`cesim-obs::provenance`) keys per-event
        /// attribution on this.
        id: u64,
        /// Affected rank.
        rank: u32,
        /// Op whose segment absorbed the detour.
        op: u32,
        /// Detour start under the tail-placement convention.
        at: Time,
        /// Detour duration.
        dur: Span,
    },
    /// Op `op` on `rank` completed at `at`.
    OpDone {
        /// Completing rank.
        rank: u32,
        /// Completed op.
        op: u32,
        /// Completion time.
        at: Time,
    },
    /// A receive was posted (no matching message had arrived yet).
    RecvPosted {
        /// Posting rank.
        rank: u32,
        /// The receive op.
        op: u32,
        /// Posting time.
        at: Time,
    },
    /// A message was injected into the network.
    MsgSend {
        /// Unique message id, shared with the matching
        /// [`SimEvent::MsgDeliver`].
        id: u64,
        /// Sending rank.
        src: u32,
        /// Destination rank.
        dst: u32,
        /// The op on `src` this message serves (for [`MsgClass::Cts`],
        /// the *receive* op).
        src_op: u32,
        /// Message class.
        class: MsgClass,
        /// Payload size.
        bytes: u64,
        /// MPI tag.
        tag: Tag,
        /// NIC injection time.
        inject: Time,
        /// Wire arrival time at `dst`.
        arrive: Time,
    },
    /// A message was matched to a receive (or, for CTS, returned to its
    /// sender) at `at` — wire arrival for an expected message, receive
    /// posting time for one that waited in the unexpected queue.
    MsgDeliver {
        /// Message id from the corresponding [`SimEvent::MsgSend`].
        id: u64,
        /// Sending rank.
        src: u32,
        /// Destination rank.
        dst: u32,
        /// The sender-side op (as in [`SimEvent::MsgSend`]).
        src_op: u32,
        /// The op on `dst` the message resolved to.
        dst_op: u32,
        /// Message class.
        class: MsgClass,
        /// Payload size.
        bytes: u64,
        /// Match time.
        at: Time,
    },
    /// Completion of `from` satisfied the last unmet dependency of `to`
    /// (same rank), making it ready at `at`.
    DepEdge {
        /// Rank owning both ops.
        rank: u32,
        /// The op whose completion fired the edge.
        from: u32,
        /// The op that became ready.
        to: u32,
        /// Readiness time.
        at: Time,
    },
    /// Match-queue depths on `rank` after a queue mutation.
    QueueDepth {
        /// Sampled rank.
        rank: u32,
        /// Sample time.
        at: Time,
        /// Unexpected-message queue depth.
        unexpected: u32,
        /// Posted-receive queue depth.
        posted: u32,
    },
}

impl SimEvent {
    /// The simulated time the event is stamped with (segment start for
    /// [`SimEvent::Exec`], detour start for [`SimEvent::Detour`],
    /// injection time for [`SimEvent::MsgSend`]).
    pub fn at(&self) -> Time {
        match *self {
            SimEvent::Exec { start, .. } => start,
            SimEvent::Detour { at, .. } => at,
            SimEvent::OpDone { at, .. } => at,
            SimEvent::RecvPosted { at, .. } => at,
            SimEvent::MsgSend { inject, .. } => inject,
            SimEvent::MsgDeliver { at, .. } => at,
            SimEvent::DepEdge { at, .. } => at,
            SimEvent::QueueDepth { at, .. } => at,
        }
    }
}

/// Receives the engine's typed event stream.
///
/// Implementations must be cheap: the engine calls `record` from its hot
/// loop. `ENABLED = false` turns every call site into dead code (the
/// default [`NullRecorder`] path costs nothing).
pub trait Recorder {
    /// Whether the engine should emit events at all. Call sites are
    /// guarded by this constant, so a `false` here removes the
    /// instrumentation at compile time.
    const ENABLED: bool = true;

    /// Observe one event.
    fn record(&mut self, ev: SimEvent);
}

/// The do-nothing recorder: disables instrumentation at compile time.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _ev: SimEvent) {}
}

/// Forwarding impl so a recorder can be lent to the simulator
/// (`sim.with_recorder(&mut rec)`) and inspected after the run.
impl<R: Recorder> Recorder for &mut R {
    const ENABLED: bool = R::ENABLED;

    #[inline(always)]
    fn record(&mut self, ev: SimEvent) {
        (**self).record(ev);
    }
}

/// A minimal buffering recorder: keeps every event in a `Vec`, unbounded.
/// Useful in tests; production tracing should prefer the bounded
/// `TimelineRecorder` in `cesim-obs`.
#[derive(Clone, Debug, Default)]
pub struct VecRecorder {
    /// Recorded events in emission order.
    pub events: Vec<SimEvent>,
}

impl Recorder for VecRecorder {
    fn record(&mut self, ev: SimEvent) {
        self.events.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        const {
            assert!(!NullRecorder::ENABLED);
            assert!(!<&mut NullRecorder as Recorder>::ENABLED);
            assert!(VecRecorder::ENABLED);
            assert!(<&mut VecRecorder as Recorder>::ENABLED);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SegKind::Calc.label(), "calc");
        assert_eq!(SegKind::RendPayload.label(), "payload");
        assert_eq!(MsgClass::Cts.label(), "cts");
        assert!(SegKind::Calc.is_compute());
        assert!(!SegKind::RecvCpu.is_compute());
    }

    #[test]
    fn event_timestamps() {
        let e = SimEvent::Exec {
            rank: 0,
            op: 1,
            seg: SegKind::Calc,
            start: Time::from_ps(10),
            end: Time::from_ps(20),
            work: Span::from_ps(10),
        };
        assert_eq!(e.at(), Time::from_ps(10));
        let d = SimEvent::Detour {
            id: 0,
            rank: 0,
            op: 1,
            at: Time::from_ps(15),
            dur: Span::from_ps(5),
        };
        assert_eq!(d.at(), Time::from_ps(15));
    }
}
