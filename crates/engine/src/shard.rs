//! Intra-run parallel DES: shard the event loop by rank, advance shards
//! in lockstep lookahead windows, and stay **byte-identical** to the
//! serial engine.
//!
//! # Why `L` is a safe lookahead
//!
//! Every cross-rank interaction in the LogGOPS model is a message, and
//! every message injected at time `t` arrives no earlier than `t + L`:
//! eager payloads arrive at `inject + L + bytes·G`, RTS and CTS control
//! messages at `inject + L`, and topology hop surcharges only *add*
//! delay. So if the earliest unprocessed event anywhere in the system is
//! at time `m`, no shard can receive a message with timestamp below
//! `m + L` that does not already exist — which makes `[m, m + L)` a
//! window every shard may execute to completion without hearing from the
//! others. (`L = 0` disables sharding; the driver falls back to the
//! serial engine.)
//!
//! # The window protocol
//!
//! Ranks are partitioned into `S` contiguous slices; each shard owns the
//! per-rank state (CPU/NIC cursors, match queues, event heap — its own
//! [`RunScratch`] slice) of its ranks, while the [`CompiledSchedule`]
//! stays shared and immutable. Shards repeat:
//!
//! 1. **min**: publish the timestamp of the earliest local pending
//!    event; the global minimum `m` defines `window_end = m + L`.
//! 2. **run**: pop-and-process local events with `time < window_end`,
//!    exactly like the serial loop. Events created for foreign ranks go
//!    to a per-shard *outbox* instead of the local heap.
//! 3. **exchange**: route outbox entries to the owning shard's mailbox;
//!    each shard drains its mailbox into its heap before the next round.
//!
//! # Deterministic merge order
//!
//! The event heap orders by `(time, creator rank, creator seq)` — the
//! content-computable key of [`crate::queue::EvKey`] — so the pop order
//! of any fixed event set is independent of *which heap* the events pass
//! through or the order mailboxes were drained in. Combined with the
//! window bound above, every rank processes exactly the event sequence
//! it would under the serial engine, so all per-rank state, counters and
//! the assembled [`SimResult`] are byte-identical.
//!
//! # Wildcards and FIFO matching
//!
//! `MPI_ANY_SOURCE` receives and FIFO tag matching are per-*receiving*
//! rank: the match queues live in the shard that owns the destination
//! rank, and arrivals for one rank are processed in the same key order
//! as serially, so match outcomes cannot differ.
//!
//! # The Recorder
//!
//! A recorded sharded run tags every emitted [`SimEvent`] with the key
//! of the pop that produced it (plus an intra-pop counter), buffers
//! per-shard streams, and k-way-merges them afterwards — reproducing the
//! serial emission order exactly. Message and detour ids are assigned
//! per shard from disjoint provisional ranges and densely renumbered in
//! merged order, which restores the exact ids the serial engine hands
//! out. The merged stream is then replayed into the caller's recorder,
//! so capacity/drop behavior also matches a serial recording.

use crate::compile::CompiledSchedule;
use crate::noise::NoiseModel;
use crate::queue::EvKey;
use crate::record::{NullRecorder, Recorder, SimEvent};
use crate::result::{SimError, SimResult};
use crate::sim::{run_engine, stuck_ops, Engine, Msg, RunScratch};
use crate::topology::FlatCrossbar;
use cesim_model::{LogGopsParams, Time};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Provisional-id stride per shard for recorded runs: shard `i` hands
/// out ids starting at `(i + 1) << 48`, far above any dense serial id,
/// so provisional ids never collide across shards (or with the dense
/// range) before the merge renumbers them.
const ID_STRIDE: u64 = 1 << 48;

// ---------------------------------------------------------------------
// Shard health telemetry
// ---------------------------------------------------------------------
//
// Two layers, both relaxed atomics so shard threads never synchronize
// through the telemetry:
//
// * process-wide counters ([`shard_globals`]) — always on (a handful
//   of relaxed adds per *window*, far below measurement noise), the
//   source for live daemon gauges and window-based progress reporting;
// * an opt-in per-run [`ShardTelemetry`] — per-shard busy/stall/
//   barrier time, windows, events, outbox traffic. Timing reads the
//   clock only when a telemetry handle is passed, so the default path
//   never calls `Instant::now` per window.

static G_WINDOWS: AtomicU64 = AtomicU64::new(0);
static G_EVENTS: AtomicU64 = AtomicU64::new(0);
static G_SIM_PS: AtomicU64 = AtomicU64::new(0);
static G_RUNS_ACTIVE: AtomicU64 = AtomicU64::new(0);
static G_RUNS_TOTAL: AtomicU64 = AtomicU64::new(0);
static WINDOW_HOOK: OnceLock<WindowHook> = OnceLock::new();

/// Callback invoked once per advanced lookahead window (by whichever
/// thread computed the bound) with the window end in picoseconds.
/// Installed process-wide by observability layers (e.g. the flight
/// recorder); must be cheap and must not call back into the engine.
pub type WindowHook = fn(wend_ps: u64);

/// Install the process-wide [`WindowHook`]. First caller wins; later
/// calls are ignored (the hook is expected to fan out on its own).
pub fn set_window_hook(hook: WindowHook) {
    let _ = WINDOW_HOOK.set(hook);
}

/// Lookahead windows per [`WindowObserver::on_window_batch`] callback
/// (plus one final call for the partial batch at drive end).
pub const WINDOW_BATCH: u64 = 256;

/// Per-run observer of lookahead-window progress. Unlike the
/// process-wide [`WindowHook`], an observer is scoped to a single
/// sharded drive and may carry request context (a trace-span
/// collector, say). It is invoked by whichever thread advanced the
/// window bound, at most once per [`WINDOW_BATCH`] windows plus once
/// at drive end for the remainder, so implementations may take a lock
/// or read the clock without showing up in the per-window hot path.
/// Passing an observer never changes simulation results.
pub trait WindowObserver: Sync {
    /// `windows` lookahead windows completed since the previous call;
    /// `wend_ps` is the most recent window-end bound in picoseconds.
    fn on_window_batch(&self, windows: u64, wend_ps: u64);
}

/// Snapshot of process-wide sharded-engine activity since start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardGlobals {
    /// Lookahead windows advanced (all runs).
    pub windows: u64,
    /// Events popped inside windows (all runs).
    pub events: u64,
    /// Simulated picoseconds advanced (sum of window-start deltas).
    pub sim_ps_advanced: u64,
    /// Sharded drives currently executing.
    pub runs_active: u64,
    /// Sharded drives started since process start.
    pub runs_total: u64,
}

/// Read the process-wide sharded-engine counters.
pub fn shard_globals() -> ShardGlobals {
    ShardGlobals {
        windows: G_WINDOWS.load(Ordering::Relaxed),
        events: G_EVENTS.load(Ordering::Relaxed),
        sim_ps_advanced: G_SIM_PS.load(Ordering::Relaxed),
        runs_active: G_RUNS_ACTIVE.load(Ordering::Relaxed),
        runs_total: G_RUNS_TOTAL.load(Ordering::Relaxed),
    }
}

/// Per-window global bookkeeping: count the window, accumulate the
/// sim-time delta between consecutive window starts (`prev_m_ps` is
/// `u64::MAX` before the first window), and fire the window hook.
fn note_window(m_ps: u64, prev_m_ps: u64, wend_ps: u64) {
    G_WINDOWS.fetch_add(1, Ordering::Relaxed);
    if prev_m_ps != u64::MAX {
        G_SIM_PS.fetch_add(m_ps.saturating_sub(prev_m_ps), Ordering::Relaxed);
    }
    if let Some(h) = WINDOW_HOOK.get() {
        h(wend_ps);
    }
}

/// Per-shard health counters. Written with relaxed atomics from the
/// shard's own thread; read by reporting code whenever convenient.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Wall nanoseconds spent executing windows that popped events.
    busy_ns: AtomicU64,
    /// Wall nanoseconds spent in windows that popped nothing — the
    /// shard rode along while others had the work.
    stall_ns: AtomicU64,
    /// Wall nanoseconds waiting at window barriers (threaded mode).
    barrier_ns: AtomicU64,
    /// Total accounted wall nanoseconds. Every accounted nanosecond
    /// lands in exactly one of the three buckets above, so
    /// `busy + stall + barrier == wall` holds exactly.
    wall_ns: AtomicU64,
    /// Windows this shard participated in.
    windows: AtomicU64,
    /// Events this shard popped.
    events: AtomicU64,
    /// Cross-shard messages this shard staged in its outbox.
    outbox_msgs: AtomicU64,
}

impl ShardStats {
    #[inline]
    fn add_ns(counter: &AtomicU64, ns: u64) {
        counter.fetch_add(ns, Ordering::Relaxed);
    }

    /// Account a measured segment to one timing bucket (and the wall
    /// total, preserving the conservation law).
    #[inline]
    fn lap(&self, bucket: Lap, ns: u64) {
        let counter = match bucket {
            Lap::Busy => &self.busy_ns,
            Lap::Stall => &self.stall_ns,
            Lap::Barrier => &self.barrier_ns,
        };
        Self::add_ns(counter, ns);
        Self::add_ns(&self.wall_ns, ns);
    }

    fn health(&self) -> ShardHealth {
        ShardHealth {
            busy: Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed)),
            stall: Duration::from_nanos(self.stall_ns.load(Ordering::Relaxed)),
            barrier: Duration::from_nanos(self.barrier_ns.load(Ordering::Relaxed)),
            wall: Duration::from_nanos(self.wall_ns.load(Ordering::Relaxed)),
            windows: self.windows.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            outbox_msgs: self.outbox_msgs.load(Ordering::Relaxed),
        }
    }
}

/// Which timing bucket a measured segment belongs to.
#[derive(Clone, Copy)]
enum Lap {
    Busy,
    Stall,
    Barrier,
}

/// Boundary-timestamp accounting for one shard thread: consecutive
/// [`Stamp::lap`] calls chain on the same instants, so the buckets
/// partition the elapsed time with no gaps or double counting.
struct Stamp<'a> {
    stats: &'a ShardStats,
    mark: Instant,
}

impl<'a> Stamp<'a> {
    fn new(stats: &'a ShardStats) -> Self {
        Stamp {
            stats,
            mark: Instant::now(),
        }
    }

    #[inline]
    fn lap(&mut self, bucket: Lap) {
        let now = Instant::now();
        let ns = now.duration_since(self.mark).as_nanos() as u64;
        self.stats.lap(bucket, ns);
        self.mark = now;
    }
}

/// Aggregated shard-health telemetry for one or more sharded runs.
/// Create one sized for the shard count, pass it to
/// [`simulate_compiled_sharded_observed`] (possibly from many replicas
/// concurrently — counters accumulate), then read [`Self::report`].
#[derive(Debug, Default)]
pub struct ShardTelemetry {
    stats: Vec<ShardStats>,
    drive_ns: AtomicU64,
    runs: AtomicU64,
}

impl ShardTelemetry {
    /// Telemetry sized for `shards` shards (at least one).
    pub fn new(shards: usize) -> Self {
        ShardTelemetry {
            stats: (0..shards.max(1)).map(|_| ShardStats::default()).collect(),
            drive_ns: AtomicU64::new(0),
            runs: AtomicU64::new(0),
        }
    }

    /// Number of shard slots.
    pub fn shards(&self) -> usize {
        self.stats.len()
    }

    /// Runs accumulated so far.
    pub fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Credit a serial-fallback run (no windows to attribute; the
    /// whole run is busy time on shard 0).
    fn note_serial_fallback(&self, elapsed: Duration, events: u64) {
        let ns = elapsed.as_nanos() as u64;
        let st = &self.stats[0];
        st.lap(Lap::Busy, ns);
        st.windows.fetch_add(1, Ordering::Relaxed);
        st.events.fetch_add(events, Ordering::Relaxed);
        self.drive_ns.fetch_add(ns, Ordering::Relaxed);
        self.runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot everything into a plain-value report.
    pub fn report(&self) -> ShardHealthReport {
        ShardHealthReport {
            per_shard: self.stats.iter().map(ShardStats::health).collect(),
            runs: self.runs.load(Ordering::Relaxed),
            drive: Duration::from_nanos(self.drive_ns.load(Ordering::Relaxed)),
        }
    }
}

/// Plain-value snapshot of one shard's counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardHealth {
    /// Wall time in windows where this shard popped events.
    pub busy: Duration,
    /// Wall time in windows where this shard had nothing to do.
    pub stall: Duration,
    /// Wall time waiting at window barriers (threaded mode only).
    pub barrier: Duration,
    /// Total accounted wall time (`busy + stall + barrier`, exactly).
    pub wall: Duration,
    /// Windows participated in.
    pub windows: u64,
    /// Events popped.
    pub events: u64,
    /// Cross-shard messages staged.
    pub outbox_msgs: u64,
}

/// The imbalance report: per-shard health plus the aggregate ratios
/// the ISSUE asks operators to watch. [`fmt::Display`] renders the
/// human table printed by `--shard-health`.
#[derive(Clone, Debug, Default)]
pub struct ShardHealthReport {
    /// One entry per shard.
    pub per_shard: Vec<ShardHealth>,
    /// Sharded runs accumulated into this report.
    pub runs: u64,
    /// Total wall time inside the window drivers.
    pub drive: Duration,
}

impl ShardHealthReport {
    /// Total events popped across shards.
    pub fn events(&self) -> u64 {
        self.per_shard.iter().map(|s| s.events).sum()
    }

    /// Windows advanced (shards participate in every window, so this
    /// is the maximum over shards).
    pub fn windows(&self) -> u64 {
        self.per_shard.iter().map(|s| s.windows).max().unwrap_or(0)
    }

    /// Total cross-shard messages staged.
    pub fn outbox_msgs(&self) -> u64 {
        self.per_shard.iter().map(|s| s.outbox_msgs).sum()
    }

    /// Largest per-shard busy time.
    pub fn max_busy(&self) -> Duration {
        self.per_shard
            .iter()
            .map(|s| s.busy)
            .max()
            .unwrap_or_default()
    }

    /// Mean per-shard busy time.
    pub fn mean_busy(&self) -> Duration {
        if self.per_shard.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.per_shard.iter().map(|s| s.busy).sum();
        total / self.per_shard.len() as u32
    }

    /// Busy-time imbalance: max/mean (1.0 = perfectly balanced; also
    /// 1.0 when nothing ran).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_busy().as_secs_f64();
        if mean == 0.0 {
            1.0
        } else {
            self.max_busy().as_secs_f64() / mean
        }
    }

    /// Fraction of accounted wall time spent in empty windows.
    pub fn stall_fraction(&self) -> f64 {
        self.fraction(|s| s.stall)
    }

    /// Fraction of accounted wall time spent waiting at barriers.
    pub fn barrier_fraction(&self) -> f64 {
        self.fraction(|s| s.barrier)
    }

    fn fraction(&self, f: impl Fn(&ShardHealth) -> Duration) -> f64 {
        let wall: Duration = self.per_shard.iter().map(|s| s.wall).sum();
        if wall.is_zero() {
            return 0.0;
        }
        let part: Duration = self.per_shard.iter().map(f).sum();
        part.as_secs_f64() / wall.as_secs_f64()
    }

    /// Lookahead efficiency: events popped per shard-window. Low
    /// values mean windows advance mostly empty — the lookahead `L`
    /// is small relative to event spacing.
    pub fn lookahead_efficiency(&self) -> f64 {
        let shard_windows: u64 = self.per_shard.iter().map(|s| s.windows).sum();
        if shard_windows == 0 {
            0.0
        } else {
            self.events() as f64 / shard_windows as f64
        }
    }
}

impl fmt::Display for ShardHealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "shard health: {} shards, {} windows, {} events, {} run(s), drive {:.3}s",
            self.per_shard.len(),
            self.windows(),
            self.events(),
            self.runs,
            self.drive.as_secs_f64()
        )?;
        writeln!(
            f,
            "{:>7} {:>11} {:>11} {:>11} {:>9} {:>12} {:>9}",
            "shard", "busy(s)", "stall(s)", "barrier(s)", "windows", "events", "outbox"
        )?;
        for (i, s) in self.per_shard.iter().enumerate() {
            writeln!(
                f,
                "{:>7} {:>11.4} {:>11.4} {:>11.4} {:>9} {:>12} {:>9}",
                i,
                s.busy.as_secs_f64(),
                s.stall.as_secs_f64(),
                s.barrier.as_secs_f64(),
                s.windows,
                s.events,
                s.outbox_msgs
            )?;
        }
        write!(
            f,
            "busy max/mean {:.4}/{:.4}s (imbalance {:.2}x); stall {:.1}%; barrier {:.1}%; lookahead {:.1} events/shard-window",
            self.max_busy().as_secs_f64(),
            self.mean_busy().as_secs_f64(),
            self.imbalance(),
            100.0 * self.stall_fraction(),
            100.0 * self.barrier_fraction(),
            self.lookahead_efficiency()
        )
    }
}

/// How the sharded driver executes its shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardMode {
    /// One OS thread per shard when the host has more than one CPU,
    /// otherwise single-threaded lockstep. Output is identical either
    /// way; this only picks the faster execution on the current host.
    Auto,
    /// One OS thread per shard, synchronized with barriers.
    Threads,
    /// All shards advanced round-robin on the calling thread — the same
    /// window schedule without any thread or barrier overhead. This is
    /// still a win on its own: per-shard heaps are a fraction of the
    /// serial heap's size, so pops cost `O(log(n/S))` and the working
    /// set per window is `~1/S` of the serial one.
    Lockstep,
}

impl ShardMode {
    fn threaded(self) -> bool {
        match self {
            ShardMode::Threads => true,
            ShardMode::Lockstep => false,
            ShardMode::Auto => std::thread::available_parallelism()
                .map(|n| n.get() > 1)
                .unwrap_or(false),
        }
    }
}

/// Contiguous rank partition: shard `s` owns ranks
/// `[cut(s), cut(s+1))` with `cut(s) = n·s/S`.
fn cuts(nranks: usize, shards: usize) -> Vec<u32> {
    (0..=shards).map(|s| (nranks * s / shards) as u32).collect()
}

/// Pick an empirically good power-of-two shard count for `nranks` ranks
/// on this host — what `--shards auto` resolves to.
///
/// The count follows the CPU count (rounded up to a power of two),
/// bounded by `nranks / 1024` so each shard keeps at least ~1k ranks of
/// work (finer splits drown in window overhead and are where the
/// measured scaling went non-monotonic), and clamped to 64.
///
/// Single-CPU hosts return 1. The old binary-heap queue rewarded
/// splitting even without parallelism — each shard's heap, and
/// therefore every sift, shrank by the split factor (the first
/// `sharded_single_run_scaling` entry in `BENCH_engine.json` climbs
/// through 1.55x at 64 shards) — but the wavefront bucket queue already
/// works on one small sorted run at a time, so the remeasured lockstep
/// scaling is flat (0.92–1.00x at 64k ranks) and sharding is pure
/// overhead without real cores behind it.
///
/// Schedules below 2048 ranks also return 1: window overhead beats any
/// split there regardless of host.
pub fn auto_shards(nranks: usize) -> usize {
    let cap = (nranks / 1024).max(1).next_power_of_two();
    if nranks / 1024 < 2 {
        return 1;
    }
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cpus <= 1 {
        1
    } else {
        cpus.next_power_of_two().min(cap).min(64)
    }
}

/// Owning shard of `rank` under `cuts`.
#[inline]
fn shard_of(cuts: &[u32], rank: u32) -> usize {
    cuts.partition_point(|&c| c <= rank) - 1
}

/// A [`SimEvent`] tagged with the key of the pop that emitted it plus an
/// intra-pop emission counter — the merge key that reproduces serial
/// emission order.
#[derive(Clone, Copy)]
struct Tagged {
    t: Time,
    key: EvKey,
    n: u32,
    ev: SimEvent,
}

/// Per-shard recorder used by recorded sharded runs: buffers tagged
/// events for the post-run merge.
struct KeyedRecorder {
    buf: Vec<Tagged>,
    t: Time,
    key: EvKey,
    n: u32,
}

impl KeyedRecorder {
    fn new() -> Self {
        KeyedRecorder {
            buf: Vec::new(),
            t: Time::ZERO,
            key: EvKey { crank: 0, cseq: 0 },
            n: 0,
        }
    }
}

impl Recorder for KeyedRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, ev: SimEvent) {
        self.buf.push(Tagged {
            t: self.t,
            key: self.key,
            n: self.n,
            ev,
        });
        self.n += 1;
    }
}

/// A [`Recorder`] that additionally learns which pop is being processed
/// — what the window loop needs to tag emissions for the merge.
trait WindowRecorder: Recorder {
    /// Called once per popped event, before dispatch.
    fn begin_pop(&mut self, t: Time, key: EvKey);
}

impl WindowRecorder for NullRecorder {
    #[inline(always)]
    fn begin_pop(&mut self, _t: Time, _key: EvKey) {}
}

impl WindowRecorder for KeyedRecorder {
    #[inline]
    fn begin_pop(&mut self, t: Time, key: EvKey) {
        self.t = t;
        self.key = key;
        self.n = 0;
    }
}

impl<R: WindowRecorder> WindowRecorder for &mut R {
    #[inline(always)]
    fn begin_pop(&mut self, t: Time, key: EvKey) {
        (**self).begin_pop(t, key);
    }
}

/// Simulate a [`CompiledSchedule`] split across `shards` rank-contiguous
/// shards advanced in lookahead windows. Byte-identical to
/// [`crate::simulate_compiled`]; `noise` is used as a prototype (cloned
/// per shard, each clone only ever queried for that shard's ranks — the
/// per-rank noise substreams consumed are exactly the serial ones).
///
/// `shards <= 1`, a single-rank schedule, or `params.latency == 0` (no
/// usable lookahead) all fall back to the serial engine.
pub fn simulate_compiled_sharded<N: NoiseModel + Clone + Send>(
    cs: &CompiledSchedule,
    params: &LogGopsParams,
    shards: usize,
    mode: ShardMode,
    noise: &N,
) -> Result<SimResult, SimError> {
    run_sharded(
        cs,
        params,
        shards,
        mode,
        noise,
        &mut NullRecorder,
        None,
        None,
    )
}

/// [`simulate_compiled_sharded`] with shard-health telemetry: per-shard
/// busy/stall/barrier time, window and event counts accumulate into
/// `telem` (relaxed atomics — safe to share across concurrent
/// replicas). The simulation result is byte-identical with or without
/// the telemetry handle.
pub fn simulate_compiled_sharded_observed<N: NoiseModel + Clone + Send>(
    cs: &CompiledSchedule,
    params: &LogGopsParams,
    shards: usize,
    mode: ShardMode,
    noise: &N,
    telem: &ShardTelemetry,
) -> Result<SimResult, SimError> {
    run_sharded(
        cs,
        params,
        shards,
        mode,
        noise,
        &mut NullRecorder,
        Some(telem),
        None,
    )
}

/// [`simulate_compiled_sharded`] with instrumentation: per-shard event
/// streams are merged back into serial emission order (ids densely
/// renumbered) and replayed into `rec`, so the recording is
/// byte-identical to a serial recorded run.
pub fn simulate_sharded_recorded<N: NoiseModel + Clone + Send, R: Recorder>(
    cs: &CompiledSchedule,
    params: &LogGopsParams,
    shards: usize,
    mode: ShardMode,
    noise: &N,
    rec: &mut R,
) -> Result<SimResult, SimError> {
    run_sharded(cs, params, shards, mode, noise, rec, None, None)
}

/// [`simulate_sharded_recorded`] with shard-health telemetry (see
/// [`simulate_compiled_sharded_observed`]).
pub fn simulate_sharded_recorded_observed<N: NoiseModel + Clone + Send, R: Recorder>(
    cs: &CompiledSchedule,
    params: &LogGopsParams,
    shards: usize,
    mode: ShardMode,
    noise: &N,
    rec: &mut R,
    telem: &ShardTelemetry,
) -> Result<SimResult, SimError> {
    run_sharded(cs, params, shards, mode, noise, rec, Some(telem), None)
}

/// The fully instrumented sharded entry point: event recording,
/// optional shard-health telemetry, and an optional per-run
/// [`WindowObserver`] in one call. Every other `simulate_*sharded*`
/// wrapper delegates here with the instruments it lacks set to
/// `None`/`NullRecorder`; results are byte-identical regardless of
/// which instruments are attached.
#[allow(clippy::too_many_arguments)]
pub fn simulate_sharded_instrumented<N: NoiseModel + Clone + Send, R: Recorder>(
    cs: &CompiledSchedule,
    params: &LogGopsParams,
    shards: usize,
    mode: ShardMode,
    noise: &N,
    rec: &mut R,
    telem: Option<&ShardTelemetry>,
    observer: Option<&dyn WindowObserver>,
) -> Result<SimResult, SimError> {
    run_sharded(cs, params, shards, mode, noise, rec, telem, observer)
}

#[allow(clippy::too_many_arguments)]
fn run_sharded<N: NoiseModel + Clone + Send, R: Recorder>(
    cs: &CompiledSchedule,
    params: &LogGopsParams,
    shards: usize,
    mode: ShardMode,
    noise: &N,
    rec: &mut R,
    telem: Option<&ShardTelemetry>,
    observer: Option<&dyn WindowObserver>,
) -> Result<SimResult, SimError> {
    if cs.num_ranks() == 0 {
        return Err(SimError::EmptySchedule);
    }
    let s_eff = shards.clamp(1, cs.num_ranks());
    if s_eff <= 1 || params.latency.is_zero() {
        // No usable partition or no lookahead: the serial engine IS the
        // sharded engine with one shard.
        let t0 = telem.map(|_| Instant::now());
        let mut scratch = RunScratch::new();
        let mut n = noise.clone();
        let out = run_engine(cs, *params, &FlatCrossbar, &mut scratch, &mut *rec, &mut n);
        if let (Some(t), Some(t0)) = (telem, t0) {
            let events = out.as_ref().map(|r| r.events_processed).unwrap_or(0);
            t.note_serial_fallback(t0.elapsed(), events);
        }
        return out;
    }

    let cuts = cuts(cs.num_ranks(), s_eff);
    let mut scratches: Vec<RunScratch> = (0..s_eff).map(|_| RunScratch::new()).collect();
    let mut noises: Vec<N> = Vec::with_capacity(s_eff);
    let noise_base = noise.events_injected();
    for (i, s) in scratches.iter_mut().enumerate() {
        s.reset_range(cs, cuts[i], cuts[i + 1]);
        s.plan_dispatch(cs, params);
        if R::ENABLED {
            s.offset_ids((i as u64 + 1) * ID_STRIDE);
        }
        s.seed_roots(cs);
        noises.push(noise.clone());
    }

    let events_processed = if R::ENABLED {
        let mut recs: Vec<KeyedRecorder> = (0..s_eff).map(|_| KeyedRecorder::new()).collect();
        let n = drive(
            cs,
            *params,
            mode,
            &cuts,
            &mut scratches,
            &mut noises,
            &mut recs,
            telem,
            observer,
        );
        merge_records(recs, rec);
        n
    } else {
        let mut recs = vec![NullRecorder; s_eff];
        drive(
            cs,
            *params,
            mode,
            &cuts,
            &mut scratches,
            &mut noises,
            &mut recs,
            telem,
            observer,
        )
    };

    let completed: u64 = scratches.iter().map(|s| s.completed).sum();
    if completed != cs.total_ops() {
        let parts: Vec<&RunScratch> = scratches.iter().collect();
        return Err(SimError::Deadlock {
            completed,
            total: cs.total_ops(),
            stuck_examples: stuck_ops(cs, &parts, 8),
        });
    }

    let mut per_rank_finish = Vec::with_capacity(cs.num_ranks());
    let mut per_rank_busy = Vec::with_capacity(cs.num_ranks());
    let mut per_rank_work = Vec::with_capacity(cs.num_ranks());
    for s in &scratches {
        per_rank_finish.extend_from_slice(&s.finish);
        per_rank_busy.extend_from_slice(&s.busy);
        per_rank_work.extend_from_slice(&s.work);
    }
    let noise_events = noise_base
        + noises
            .iter()
            .map(|n| n.events_injected() - noise_base)
            .sum::<u64>();
    let finish = per_rank_finish.iter().copied().max().unwrap_or(Time::ZERO);
    Ok(SimResult {
        finish,
        per_rank_finish,
        per_rank_busy,
        per_rank_work,
        ops_executed: completed,
        msgs_delivered: scratches.iter().map(|s| s.msgs_delivered).sum(),
        control_msgs: scratches.iter().map(|s| s.control_msgs).sum(),
        noise_events,
        max_unexpected: scratches
            .iter()
            .map(|s| s.max_unexpected)
            .max()
            .unwrap_or(0),
        max_posted: scratches.iter().map(|s| s.max_posted).max().unwrap_or(0),
        events_processed,
    })
}

/// Run the window protocol to completion in the requested mode;
/// returns total events processed.
#[allow(clippy::too_many_arguments)]
fn drive<N: NoiseModel + Clone + Send, R: WindowRecorder + Send>(
    cs: &CompiledSchedule,
    params: LogGopsParams,
    mode: ShardMode,
    cuts: &[u32],
    scratches: &mut [RunScratch],
    noises: &mut [N],
    recs: &mut [R],
    telem: Option<&ShardTelemetry>,
    observer: Option<&dyn WindowObserver>,
) -> u64 {
    G_RUNS_ACTIVE.fetch_add(1, Ordering::Relaxed);
    G_RUNS_TOTAL.fetch_add(1, Ordering::Relaxed);
    let t0 = Instant::now();
    let events = if mode.threaded() {
        drive_threaded(cs, params, cuts, scratches, noises, recs, telem, observer)
    } else {
        drive_lockstep(cs, params, cuts, scratches, noises, recs, telem, observer)
    };
    if let Some(t) = telem {
        t.drive_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        t.runs.fetch_add(1, Ordering::Relaxed);
    }
    G_RUNS_ACTIVE.fetch_sub(1, Ordering::Relaxed);
    events
}

/// Process one shard's slice of the window `[.., wend)`; returns events
/// processed. Outbox entries accumulate in the scratch for the caller
/// to route.
fn run_window<N: NoiseModel + ?Sized, R: WindowRecorder>(
    cs: &CompiledSchedule,
    params: LogGopsParams,
    scratch: &mut RunScratch,
    noise: &mut N,
    rec: &mut R,
    wend: Time,
) -> u64 {
    let mut events = 0u64;
    let mut batch = std::mem::take(&mut scratch.batch);
    let mut eng = Engine {
        cs,
        params,
        topology: &FlatCrossbar,
        s: scratch,
        rec,
    };
    // Same batched delivery as the serial loop (see `run_engine`): a
    // whole same-timestamp run per heap drain, with the heap minimum
    // re-checked before each batch entry so newly created same-time
    // events interleave exactly as repeated pops would. Every batch
    // entry sits strictly below `wend`, and interleaved events share the
    // batch timestamp, so the window bound holds for all of them.
    loop {
        match eng.s.queue.peek_time() {
            Some(t) if t < wend => {}
            _ => break,
        }
        eng.s.queue.pop_batch(&mut batch);
        for &(bt, bkey, bev) in &batch {
            while let Some((qt, qkey)) = eng.s.queue.peek_min() {
                if (qt, qkey) < (bt, bkey) {
                    let (t, key, ev) = eng.s.queue.pop().expect("peeked entry exists");
                    eng.rec.begin_pop(t, key);
                    events += 1;
                    eng.dispatch(noise, ev, t);
                } else {
                    break;
                }
            }
            eng.rec.begin_pop(bt, bkey);
            events += 1;
            eng.dispatch(noise, bev, bt);
        }
    }
    eng.s.batch = batch;
    events
}

/// Single-threaded lockstep: the same window schedule as the threaded
/// driver, shards advanced round-robin on the calling thread.
#[allow(clippy::too_many_arguments)]
fn drive_lockstep<N: NoiseModel, R: WindowRecorder>(
    cs: &CompiledSchedule,
    params: LogGopsParams,
    cuts: &[u32],
    scratches: &mut [RunScratch],
    noises: &mut [N],
    recs: &mut [R],
    telem: Option<&ShardTelemetry>,
    observer: Option<&dyn WindowObserver>,
) -> u64 {
    let lookahead = params.latency;
    let mut events = 0u64;
    let mut outbox: Vec<(Time, EvKey, Msg)> = Vec::new();
    let mut prev_m_ps = u64::MAX;
    let mut windows = 0u64;
    let mut last_wend_ps = 0u64;
    while let Some(m) = scratches.iter().filter_map(|s| s.queue.peek_time()).min() {
        let wend = m + lookahead;
        note_window(m.as_ps(), prev_m_ps, wend.as_ps());
        prev_m_ps = m.as_ps();
        if observer.is_some() {
            windows += 1;
            last_wend_ps = wend.as_ps();
            if windows.is_multiple_of(WINDOW_BATCH) {
                if let Some(o) = observer {
                    o.on_window_batch(WINDOW_BATCH, last_wend_ps);
                }
            }
        }
        let mut window_events = 0u64;
        for (i, ((s, n), r)) in scratches
            .iter_mut()
            .zip(noises.iter_mut())
            .zip(recs.iter_mut())
            .enumerate()
        {
            let popped = match telem.and_then(|t| t.stats.get(i)) {
                Some(st) => {
                    let t0 = Instant::now();
                    let popped = run_window(cs, params, s, n, r, wend);
                    let bucket = if popped == 0 { Lap::Stall } else { Lap::Busy };
                    st.lap(bucket, t0.elapsed().as_nanos() as u64);
                    st.windows.fetch_add(1, Ordering::Relaxed);
                    st.events.fetch_add(popped, Ordering::Relaxed);
                    st.outbox_msgs
                        .fetch_add(s.outbox.len() as u64, Ordering::Relaxed);
                    popped
                }
                None => run_window(cs, params, s, n, r, wend),
            };
            events += popped;
            window_events += popped;
            // Stage this shard's cross-shard sends; routed below once the
            // borrow on `scratches` is back.
            outbox.append(&mut s.outbox);
        }
        G_EVENTS.fetch_add(window_events, Ordering::Relaxed);
        for (t, key, m) in outbox.drain(..) {
            let d = shard_of(cuts, m.dst);
            scratches[d].deliver(t, key, m);
        }
    }
    if let Some(o) = observer {
        let rem = windows % WINDOW_BATCH;
        if rem > 0 {
            o.on_window_batch(rem, last_wend_ps);
        }
    }
    events
}

/// One OS thread per shard. Three barriers per window round:
/// after **publishing** local minima (so the leader sees them all),
/// after the leader computes the **window bound** (so everyone reads
/// it), and after **routing** outboxes (so mailbox drains see every
/// message). Mailbox mutexes are uncontended by construction — senders
/// and the draining owner are separated by the route barrier.
#[allow(clippy::too_many_arguments)]
fn drive_threaded<N: NoiseModel + Clone + Send, R: WindowRecorder + Send>(
    cs: &CompiledSchedule,
    params: LogGopsParams,
    cuts: &[u32],
    scratches: &mut [RunScratch],
    noises: &mut [N],
    recs: &mut [R],
    telem: Option<&ShardTelemetry>,
    observer: Option<&dyn WindowObserver>,
) -> u64 {
    let s_eff = scratches.len();
    let lookahead = params.latency;
    let barrier = Barrier::new(s_eff);
    let mins: Vec<AtomicU64> = (0..s_eff).map(|_| AtomicU64::new(0)).collect();
    let wend_ps = AtomicU64::new(0);
    let prev_m_ps = AtomicU64::new(u64::MAX);
    let done = AtomicBool::new(false);
    let mailboxes: Vec<Mutex<Vec<(Time, EvKey, Msg)>>> =
        (0..s_eff).map(|_| Mutex::new(Vec::new())).collect();
    let events_total = AtomicU64::new(0);
    // Window count for the per-run observer; only the per-round leader
    // touches it, so relaxed ordering suffices.
    let windows_seen = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for (i, ((scratch, noise), rec)) in scratches
            .iter_mut()
            .zip(noises.iter_mut())
            .zip(recs.iter_mut())
            .enumerate()
        {
            let (barrier, mins, wend_ps, prev_m_ps, done, mailboxes, events_total, windows_seen) = (
                &barrier,
                &mins,
                &wend_ps,
                &prev_m_ps,
                &done,
                &mailboxes,
                &events_total,
                &windows_seen,
            );
            scope.spawn(move || {
                let stats = telem.and_then(|t| t.stats.get(i));
                let mut stamp = stats.map(Stamp::new);
                let mut events = 0u64;
                loop {
                    mins[i].store(
                        scratch.queue.peek_time().map_or(u64::MAX, |t| t.as_ps()),
                        Ordering::SeqCst,
                    );
                    if barrier.wait().is_leader() {
                        let m = mins
                            .iter()
                            .map(|a| a.load(Ordering::SeqCst))
                            .min()
                            .expect("at least one shard");
                        if m == u64::MAX {
                            done.store(true, Ordering::SeqCst);
                        } else {
                            let wend = (Time::from_ps(m) + lookahead).as_ps();
                            wend_ps.store(wend, Ordering::SeqCst);
                            note_window(m, prev_m_ps.swap(m, Ordering::Relaxed), wend);
                            if let Some(o) = observer {
                                let w = windows_seen.fetch_add(1, Ordering::Relaxed) + 1;
                                if w.is_multiple_of(WINDOW_BATCH) {
                                    o.on_window_batch(WINDOW_BATCH, wend);
                                }
                            }
                        }
                    }
                    barrier.wait();
                    if let Some(s) = stamp.as_mut() {
                        s.lap(Lap::Barrier);
                    }
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                    let wend = Time::from_ps(wend_ps.load(Ordering::SeqCst));
                    let popped = run_window(cs, params, scratch, noise, rec, wend);
                    events += popped;
                    G_EVENTS.fetch_add(popped, Ordering::Relaxed);
                    if let Some(s) = stamp.as_mut() {
                        let bucket = if popped == 0 { Lap::Stall } else { Lap::Busy };
                        s.lap(bucket);
                    }
                    if let Some(st) = stats {
                        st.windows.fetch_add(1, Ordering::Relaxed);
                        st.events.fetch_add(popped, Ordering::Relaxed);
                        st.outbox_msgs
                            .fetch_add(scratch.outbox.len() as u64, Ordering::Relaxed);
                    }
                    for (t, key, m) in scratch.outbox.drain(..) {
                        let d = shard_of(cuts, m.dst);
                        mailboxes[d].lock().expect("mailbox lock").push((t, key, m));
                    }
                    if let Some(s) = stamp.as_mut() {
                        s.lap(Lap::Busy);
                    }
                    barrier.wait();
                    if let Some(s) = stamp.as_mut() {
                        s.lap(Lap::Barrier);
                    }
                    for (t, key, m) in mailboxes[i].lock().expect("mailbox lock").drain(..) {
                        scratch.deliver(t, key, m);
                    }
                    if let Some(s) = stamp.as_mut() {
                        s.lap(Lap::Busy);
                    }
                }
                events_total.fetch_add(events, Ordering::SeqCst);
            });
        }
    });
    if let Some(o) = observer {
        let rem = windows_seen.load(Ordering::Relaxed) % WINDOW_BATCH;
        if rem > 0 {
            o.on_window_batch(rem, wend_ps.load(Ordering::SeqCst));
        }
    }
    events_total.load(Ordering::SeqCst)
}

/// Merge per-shard tagged streams into serial emission order and replay
/// into `rec`, renumbering message and detour ids densely (the exact
/// ids a serial recorded run assigns).
fn merge_records<R: Recorder>(recs: Vec<KeyedRecorder>, rec: &mut R) {
    let mut all: Vec<Tagged> = Vec::with_capacity(recs.iter().map(|r| r.buf.len()).sum());
    for r in recs {
        all.extend(r.buf);
    }
    // (pop time, pop key, intra-pop index) is unique per record, so this
    // is a total order — the serial emission order.
    all.sort_unstable_by_key(|e| (e.t, e.key, e.n));
    let mut msg_ids: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut next_msg = 0u64;
    let mut next_detour = 0u64;
    for t in all {
        let ev = match t.ev {
            SimEvent::MsgSend {
                id,
                src,
                dst,
                src_op,
                class,
                bytes,
                tag,
                inject,
                arrive,
            } => {
                let dense = next_msg;
                next_msg += 1;
                msg_ids.insert(id, dense);
                SimEvent::MsgSend {
                    id: dense,
                    src,
                    dst,
                    src_op,
                    class,
                    bytes,
                    tag,
                    inject,
                    arrive,
                }
            }
            SimEvent::MsgDeliver {
                id,
                src,
                dst,
                src_op,
                dst_op,
                class,
                bytes,
                at,
            } => {
                let dense = *msg_ids
                    .get(&id)
                    .expect("MsgSend always merges before its MsgDeliver");
                SimEvent::MsgDeliver {
                    id: dense,
                    src,
                    dst,
                    src_op,
                    dst_op,
                    class,
                    bytes,
                    at,
                }
            }
            SimEvent::Detour {
                id: _,
                rank,
                op,
                at,
                dur,
            } => {
                let dense = next_detour;
                next_detour += 1;
                SimEvent::Detour {
                    id: dense,
                    rank,
                    op,
                    at,
                    dur,
                }
            }
            other => other,
        };
        rec.record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoNoise;
    use crate::record::VecRecorder;
    use crate::sim::{simulate, simulate_compiled};
    use cesim_goal::{builder::TagPool, collectives as coll, Rank, Schedule, ScheduleBuilder, Tag};
    use cesim_model::Span;

    fn xc40() -> LogGopsParams {
        LogGopsParams::xc40()
    }

    /// A communication-heavy schedule: per-rank entry calcs feeding a
    /// chain of collectives, with both eager and rendezvous payloads.
    fn busy_schedule(n: usize) -> Schedule {
        let mut b = ScheduleBuilder::new(n);
        let mut tags = TagPool::new();
        let entry: Vec<_> = (0..n)
            .map(|r| b.calc(Rank::from(r), Span::from_us(1 + (r as u64 % 5)), &[]))
            .collect();
        let e1 = coll::barrier_dissemination(&mut b, &mut tags, &entry);
        let e2 = coll::allreduce_recursive_doubling(
            &mut b,
            &mut tags,
            64,
            &coll::CollectiveCosts::default(),
            &e1,
        );
        let e3 = coll::bcast_binomial(&mut b, &mut tags, Rank(0), 1 << 20, &e2);
        coll::allgather_ring(&mut b, &mut tags, 256, &e3);
        b.build()
    }

    #[test]
    fn cuts_partition_every_rank() {
        for n in [1usize, 2, 7, 64, 1000] {
            for s in [1usize, 2, 3, 7, 16] {
                let s = s.min(n);
                let c = cuts(n, s);
                assert_eq!(c[0], 0);
                assert_eq!(c[s] as usize, n);
                for w in c.windows(2) {
                    assert!(w[0] < w[1], "empty shard in {c:?}");
                }
                for r in 0..n as u32 {
                    let i = shard_of(&c, r);
                    assert!(c[i] <= r && r < c[i + 1]);
                }
            }
        }
    }

    #[test]
    fn sharded_matches_serial_noise_free() {
        for n in [2usize, 5, 8, 13] {
            let sched = busy_schedule(n);
            let cs = CompiledSchedule::compile(&sched);
            let serial = simulate_compiled(&cs, &xc40(), &mut NoNoise);
            for shards in [2usize, 3, 4, 7] {
                for mode in [ShardMode::Lockstep, ShardMode::Threads] {
                    let got = simulate_compiled_sharded(&cs, &xc40(), shards, mode, &NoNoise);
                    assert_eq!(got, serial, "n={n} shards={shards} mode={mode:?}");
                }
            }
        }
    }

    #[test]
    fn sharded_matches_serial_under_ce_noise() {
        use cesim_model::rng::Rng64;
        // A hand-rolled per-rank noise equivalent in spirit to CeNoise
        // (the real one lives a crate up): exponential-ish arrivals from
        // per-rank substreams, cloneable, counts injections.
        #[derive(Clone)]
        struct TestNoise {
            next: Vec<Time>,
            rngs: Vec<Rng64>,
            detour: Span,
            mean_ps: u64,
            events: u64,
        }
        impl TestNoise {
            fn new(nranks: usize, seed: u64) -> Self {
                let rngs: Vec<Rng64> = (0..nranks)
                    .map(|r| Rng64::substream(seed, r as u64))
                    .collect();
                TestNoise {
                    next: vec![Time::from_ps(50_000); nranks],
                    rngs,
                    // Detours must be well below the mean arrival gap or
                    // the stretch loop cannot converge (each injection
                    // pushes `end` out by `detour`).
                    detour: Span::from_ns(800),
                    mean_ps: 300_000_000, // 300 µs mean between CEs
                    events: 0,
                }
            }
        }
        impl NoiseModel for TestNoise {
            fn stretch(&mut self, rank: Rank, start: Time, work: Span) -> Time {
                let i = rank.idx();
                let mut end = start + work;
                while self.next[i] < end {
                    end += self.detour;
                    let step = self.rngs[i].exp_span(Span::from_ps(self.mean_ps));
                    self.next[i] += step.max(Span::from_ps(1));
                    self.events += 1;
                }
                end
            }
            fn events_injected(&self) -> u64 {
                self.events
            }
        }

        let sched = busy_schedule(9);
        let cs = CompiledSchedule::compile(&sched);
        for seed in [1u64, 7, 42] {
            let serial = {
                let mut n = TestNoise::new(9, seed);
                simulate_compiled(&cs, &xc40(), &mut n)
            };
            for shards in [2usize, 4, 7] {
                for mode in [ShardMode::Lockstep, ShardMode::Threads] {
                    let got = simulate_compiled_sharded(
                        &cs,
                        &xc40(),
                        shards,
                        mode,
                        &TestNoise::new(9, seed),
                    );
                    assert_eq!(got, serial, "seed={seed} shards={shards} mode={mode:?}");
                }
            }
        }
    }

    #[test]
    fn sharded_recorded_stream_matches_serial() {
        let sched = busy_schedule(6);
        let cs = CompiledSchedule::compile(&sched);
        let mut serial_rec = VecRecorder::default();
        let mut scratch = RunScratch::new();
        run_engine(
            &cs,
            xc40(),
            &FlatCrossbar,
            &mut scratch,
            &mut serial_rec,
            &mut NoNoise,
        )
        .unwrap();
        for shards in [2usize, 3, 5] {
            for mode in [ShardMode::Lockstep, ShardMode::Threads] {
                let mut rec = VecRecorder::default();
                simulate_sharded_recorded(&cs, &xc40(), shards, mode, &NoNoise, &mut rec).unwrap();
                assert_eq!(
                    rec.events, serial_rec.events,
                    "shards={shards} mode={mode:?}"
                );
            }
        }
    }

    #[test]
    fn sharded_deadlock_report_matches_serial() {
        // Rank 2 waits on a message no one sends; ranks 0/1 complete.
        let mut b = ScheduleBuilder::new(3);
        b.send(Rank(0), Rank(1), 8, Tag(1), &[]);
        b.recv(Rank(1), Some(Rank(0)), 8, Tag(1), &[]);
        b.recv(Rank(2), None, 8, Tag(9), &[]);
        b.calc(Rank(2), Span::from_us(1), &[]);
        let cs = CompiledSchedule::compile(&b.build());
        let serial = simulate_compiled(&cs, &xc40(), &mut NoNoise).unwrap_err();
        for mode in [ShardMode::Lockstep, ShardMode::Threads] {
            let got = simulate_compiled_sharded(&cs, &xc40(), 3, mode, &NoNoise).unwrap_err();
            assert_eq!(got, serial, "mode={mode:?}");
        }
    }

    #[test]
    fn degenerate_configs_fall_back_to_serial() {
        let sched = busy_schedule(4);
        let cs = CompiledSchedule::compile(&sched);
        let serial = simulate_compiled(&cs, &xc40(), &mut NoNoise);
        // One shard, more shards than ranks (clamped), zero latency.
        assert_eq!(
            simulate_compiled_sharded(&cs, &xc40(), 1, ShardMode::Auto, &NoNoise),
            serial
        );
        assert_eq!(
            simulate_compiled_sharded(&cs, &xc40(), 64, ShardMode::Lockstep, &NoNoise),
            simulate_compiled_sharded(&cs, &xc40(), 4, ShardMode::Lockstep, &NoNoise)
        );
        let ideal = LogGopsParams::ideal();
        assert!(ideal.latency.is_zero());
        let serial_ideal = simulate_compiled(&cs, &ideal, &mut NoNoise);
        assert_eq!(
            simulate_compiled_sharded(&cs, &ideal, 4, ShardMode::Auto, &NoNoise),
            serial_ideal
        );
        // Empty schedule still rejected.
        let empty = CompiledSchedule::compile(&Schedule::default());
        assert_eq!(
            simulate_compiled_sharded(&empty, &xc40(), 4, ShardMode::Auto, &NoNoise).unwrap_err(),
            SimError::EmptySchedule
        );
    }

    #[test]
    fn telemetry_is_conserved_and_counts_serial_events() {
        let sched = busy_schedule(8);
        let cs = CompiledSchedule::compile(&sched);
        let serial = simulate_compiled(&cs, &xc40(), &mut NoNoise).unwrap();
        for mode in [ShardMode::Lockstep, ShardMode::Threads] {
            let telem = ShardTelemetry::new(4);
            let got = simulate_compiled_sharded_observed(&cs, &xc40(), 4, mode, &NoNoise, &telem)
                .unwrap();
            assert_eq!(got, serial, "telemetry must not alter results ({mode:?})");
            let report = telem.report();
            assert_eq!(report.runs, 1);
            assert_eq!(report.per_shard.len(), 4);
            assert_eq!(
                report.events(),
                serial.events_processed,
                "per-shard events must sum to the serial count ({mode:?})"
            );
            let windows = report.windows();
            assert!(windows > 0, "windowed run must advance windows");
            for (i, s) in report.per_shard.iter().enumerate() {
                assert_eq!(s.windows, windows, "shard {i} missed windows ({mode:?})");
                assert_eq!(
                    s.busy + s.stall + s.barrier,
                    s.wall,
                    "shard {i} time buckets must partition wall time ({mode:?})"
                );
            }
            assert!(report.imbalance() >= 1.0);
            assert!(report.lookahead_efficiency() > 0.0);
            // The Display table renders without panicking and mentions
            // the headline aggregates.
            let text = report.to_string();
            assert!(text.contains("shard health"), "{text}");
            assert!(text.contains("imbalance"), "{text}");
        }
    }

    #[test]
    fn telemetry_accumulates_across_runs_and_fallbacks() {
        let sched = busy_schedule(5);
        let cs = CompiledSchedule::compile(&sched);
        let serial = simulate_compiled(&cs, &xc40(), &mut NoNoise).unwrap();
        let telem = ShardTelemetry::new(3);
        for _ in 0..2 {
            simulate_compiled_sharded_observed(
                &cs,
                &xc40(),
                3,
                ShardMode::Lockstep,
                &NoNoise,
                &telem,
            )
            .unwrap();
        }
        // Serial fallback (one shard) still credits events and a run.
        simulate_compiled_sharded_observed(&cs, &xc40(), 1, ShardMode::Auto, &NoNoise, &telem)
            .unwrap();
        let report = telem.report();
        assert_eq!(report.runs, 3);
        assert_eq!(report.events(), 3 * serial.events_processed);
        let before = shard_globals();
        simulate_compiled_sharded(&cs, &xc40(), 3, ShardMode::Lockstep, &NoNoise).unwrap();
        let after = shard_globals();
        assert!(after.windows > before.windows);
        assert_eq!(after.events - before.events, serial.events_processed);
        assert!(after.runs_total == before.runs_total + 1);
        assert!(after.sim_ps_advanced >= before.sim_ps_advanced);
    }

    /// A same-tick wildcard race across shards: two eager sends injected
    /// so both arrivals reach the receiver at the same timestamp. The
    /// key order (creator rank, then seq) must decide the match in both
    /// modes.
    #[test]
    fn same_time_wildcard_arrivals_match_identically() {
        let p = xc40();
        let mut b = ScheduleBuilder::new(3);
        // Same bytes, same start: identical inject/arrive times on both
        // senders, landing on rank 2's two wildcard receives.
        b.send(Rank(0), Rank(2), 8, Tag(1), &[]);
        b.send(Rank(1), Rank(2), 8, Tag(1), &[]);
        let r1 = b.recv(Rank(2), None, 8, Tag(1), &[]);
        b.recv(Rank(2), None, 8, Tag(1), &[r1]);
        let s = b.build();
        let cs = CompiledSchedule::compile(&s);
        let serial = simulate(&s, &p, &mut NoNoise);
        assert_eq!(simulate_compiled(&cs, &p, &mut NoNoise), serial);
        for shards in [2usize, 3] {
            for mode in [ShardMode::Lockstep, ShardMode::Threads] {
                assert_eq!(
                    simulate_compiled_sharded(&cs, &p, shards, mode, &NoNoise),
                    serial,
                    "shards={shards} mode={mode:?}"
                );
            }
        }
    }
}
