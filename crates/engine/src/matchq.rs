//! Tag-bucketed MPI match queues.
//!
//! The simulator keeps two match queues per rank: posted receives and
//! unexpected messages. Both were flat `VecDeque`s searched with a linear
//! `position` scan and removed from with `VecDeque::remove` — O(n) per
//! match, which dominates on communication-heavy schedules where many
//! operations share a rank.
//!
//! [`TagQueue`] replaces the flat queue with a per-[`Tag`] FIFO bucket.
//! This is **order-equivalent** to the flat scan because MPI tags in this
//! engine are always exact-match on both sides (there is no `MPI_ANY_TAG`):
//! the flat scan `position(|e| e.tag == tag && pred(e))` only ever inspects
//! entries of the requested tag, in insertion order — exactly the contents
//! of that tag's bucket. The source wildcard (`MPI_ANY_SOURCE`, modelled as
//! `src == None`) lives inside `pred` and is evaluated bucket-locally in
//! the same FIFO order, so the matched entry is identical.
//!
//! Entries are pushed in simulation order and each bucket preserves it, so
//! FIFO matching per `(source, tag)` — the MPI non-overtaking rule — is
//! preserved. `tests/matchq_equivalence.rs` property-checks this module
//! against the original linear scan on random post/arrive interleavings.

use cesim_goal::Tag;
use std::collections::{HashMap, VecDeque};

/// A FIFO match queue bucketed by message [`Tag`].
///
/// Semantically a single FIFO of entries, each filed under a tag;
/// [`take_first`](TagQueue::take_first) pops the earliest-pushed entry of a
/// given tag that satisfies a predicate, in O(bucket length) instead of
/// O(total length). Since tag match is exact, entries of other tags can
/// never match and skipping them wholesale is safe.
#[derive(Clone, Debug)]
pub struct TagQueue<E> {
    buckets: HashMap<Tag, VecDeque<E>>,
    len: usize,
}

// Manual impl: the derive would needlessly bound `E: Default`.
impl<E> Default for TagQueue<E> {
    fn default() -> Self {
        TagQueue::new()
    }
}

impl<E> TagQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        TagQueue {
            buckets: HashMap::new(),
            len: 0,
        }
    }

    /// Append `entry` under `tag` (the back of that tag's FIFO).
    #[inline]
    pub fn push(&mut self, tag: Tag, entry: E) {
        self.buckets.entry(tag).or_default().push_back(entry);
        self.len += 1;
    }

    /// Remove and return the earliest-pushed entry under `tag` for which
    /// `pred` holds, or `None` if no such entry exists.
    ///
    /// The predicate carries the source filter: a posted receive with
    /// `src == None` matches any arrival, and an arrival probes a posted
    /// queue whose entries may themselves hold wildcards. Entries that fail
    /// `pred` stay in place, preserving their FIFO position for later
    /// matches.
    pub fn take_first(&mut self, tag: Tag, mut pred: impl FnMut(&E) -> bool) -> Option<E> {
        let bucket = self.buckets.get_mut(&tag)?;
        let idx = bucket.iter().position(&mut pred)?;
        let entry = bucket.remove(idx);
        debug_assert!(entry.is_some());
        self.len -= 1;
        if bucket.is_empty() {
            self.buckets.remove(&tag);
        }
        entry
    }

    /// Total entries across all tags.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are queued under any tag.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over all entries, grouped by tag, FIFO within each tag.
    /// Tag group order is unspecified; use only for diagnostics.
    pub fn iter(&self) -> impl Iterator<Item = (Tag, &E)> {
        self.buckets
            .iter()
            .flat_map(|(&tag, bucket)| bucket.iter().map(move |e| (tag, e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_tag() {
        let mut q = TagQueue::new();
        q.push(Tag(1), "a");
        q.push(Tag(1), "b");
        q.push(Tag(2), "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.take_first(Tag(1), |_| true), Some("a"));
        assert_eq!(q.take_first(Tag(1), |_| true), Some("b"));
        assert_eq!(q.take_first(Tag(1), |_| true), None);
        assert_eq!(q.take_first(Tag(2), |_| true), Some("c"));
        assert!(q.is_empty());
    }

    #[test]
    fn predicate_skips_without_disturbing_order() {
        let mut q = TagQueue::new();
        q.push(Tag(7), 10);
        q.push(Tag(7), 20);
        q.push(Tag(7), 30);
        // Skip the head; FIFO among the rest is intact.
        assert_eq!(q.take_first(Tag(7), |&e| e > 10), Some(20));
        assert_eq!(q.take_first(Tag(7), |_| true), Some(10));
        assert_eq!(q.take_first(Tag(7), |_| true), Some(30));
    }

    #[test]
    fn missing_tag_is_none() {
        let mut q: TagQueue<u32> = TagQueue::new();
        assert_eq!(q.take_first(Tag(9), |_| true), None);
        q.push(Tag(1), 1);
        assert_eq!(q.take_first(Tag(9), |_| true), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_buckets_are_pruned() {
        let mut q = TagQueue::new();
        for i in 0..100u32 {
            q.push(Tag(i), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.take_first(Tag(i), |_| true), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.iter().count(), 0);
    }

    #[test]
    fn iter_visits_everything() {
        let mut q = TagQueue::new();
        q.push(Tag(1), 'x');
        q.push(Tag(2), 'y');
        q.push(Tag(1), 'z');
        let mut seen: Vec<(u32, char)> = q.iter().map(|(t, &e)| (t.0, e)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 'x'), (1, 'z'), (2, 'y')]);
    }
}
