//! Tag-bucketed MPI match queues.
//!
//! The simulator keeps two match queues per rank: posted receives and
//! unexpected messages. Both were flat `VecDeque`s searched with a linear
//! `position` scan and removed from with `VecDeque::remove` — O(n) per
//! match, which dominates on communication-heavy schedules where many
//! operations share a rank.
//!
//! [`TagQueue`] replaces the flat queue with a per-[`Tag`] FIFO bucket.
//! This is **order-equivalent** to the flat scan because MPI tags in this
//! engine are always exact-match on both sides (there is no `MPI_ANY_TAG`):
//! the flat scan `position(|e| e.tag == tag && pred(e))` only ever inspects
//! entries of the requested tag, in insertion order — exactly the contents
//! of that tag's bucket. The source wildcard (`MPI_ANY_SOURCE`, modelled as
//! `src == None`) lives inside `pred` and is evaluated bucket-locally in
//! the same FIFO order, so the matched entry is identical.
//!
//! Entries are pushed in simulation order and each bucket preserves it, so
//! FIFO matching per `(source, tag)` — the MPI non-overtaking rule — is
//! preserved. `tests/matchq_equivalence.rs` property-checks this module
//! against the original linear scan on random post/arrive interleavings.

use cesim_goal::Tag;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// Fibonacci-multiply hasher for the 4-byte [`Tag`] keys.
///
/// The default SipHash is keyed and DoS-resistant, which costs ~10× more
/// per lookup than this workload needs: tags are small dense program
/// constants, the map is process-internal, and every message match does
/// at least one lookup. A single odd-constant multiply mixes the low
/// bits (which `HashMap` uses for bucket selection) well enough.
/// Deterministic across runs — but note match results never depend on
/// bucket order anyway (matching is exact-tag FIFO; only the diagnostic
/// [`TagQueue::iter`] observes map order).
#[derive(Default)]
pub struct TagHasher(u64);

impl Hasher for TagHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by `Tag`, which hashes as one u32).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.0 = (self.0 ^ u64::from(x)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // The multiply concentrates entropy in the high bits; fold them
        // down so the map's low-bit masking sees them.
        self.0 ^ (self.0 >> 32)
    }
}

type TagMap<V> = HashMap<Tag, V, BuildHasherDefault<TagHasher>>;

/// A FIFO match queue bucketed by message [`Tag`].
///
/// Semantically a single FIFO of entries, each filed under a tag;
/// [`take_first`](TagQueue::take_first) pops the earliest-pushed entry of a
/// given tag that satisfies a predicate, in O(bucket length) instead of
/// O(total length). Since tag match is exact, entries of other tags can
/// never match and skipping them wholesale is safe.
#[derive(Clone, Debug)]
pub struct TagQueue<E> {
    buckets: TagMap<VecDeque<E>>,
    len: usize,
    /// Drained bucket ring buffers, kept for reuse: pruning a bucket
    /// parks its (empty) `VecDeque` here and the next push under a fresh
    /// tag adopts one instead of allocating. Run-scratch reuse relies on
    /// this — repeated simulations of the same schedule reach a steady
    /// state with no match-queue allocation at all.
    spare: Vec<VecDeque<E>>,
}

// Manual impl: the derive would needlessly bound `E: Default`.
impl<E> Default for TagQueue<E> {
    fn default() -> Self {
        TagQueue::new()
    }
}

impl<E> TagQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        TagQueue {
            buckets: TagMap::default(),
            len: 0,
            spare: Vec::new(),
        }
    }

    /// Append `entry` under `tag` (the back of that tag's FIFO).
    #[inline]
    pub fn push(&mut self, tag: Tag, entry: E) {
        self.buckets
            .entry(tag)
            .or_insert_with(|| self.spare.pop().unwrap_or_default())
            .push_back(entry);
        self.len += 1;
    }

    /// Drop all entries while retaining bucket allocations (parked in
    /// the spare pool) and the map's capacity — a cleared queue is
    /// observationally an empty one, but re-filling it with the same
    /// tag population allocates nothing.
    pub fn clear(&mut self) {
        for (_, mut bucket) in self.buckets.drain() {
            bucket.clear();
            self.spare.push(bucket);
        }
        self.len = 0;
    }

    /// Remove and return the earliest-pushed entry under `tag` for which
    /// `pred` holds, or `None` if no such entry exists.
    ///
    /// The predicate carries the source filter: a posted receive with
    /// `src == None` matches any arrival, and an arrival probes a posted
    /// queue whose entries may themselves hold wildcards. Entries that fail
    /// `pred` stay in place, preserving their FIFO position for later
    /// matches.
    pub fn take_first(&mut self, tag: Tag, mut pred: impl FnMut(&E) -> bool) -> Option<E> {
        let bucket = self.buckets.get_mut(&tag)?;
        let idx = bucket.iter().position(&mut pred)?;
        let entry = bucket.remove(idx);
        debug_assert!(entry.is_some());
        self.len -= 1;
        if bucket.is_empty() {
            if let Some(drained) = self.buckets.remove(&tag) {
                self.spare.push(drained);
            }
        }
        entry
    }

    /// Total entries across all tags.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are queued under any tag.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over all entries, grouped by tag, FIFO within each tag.
    /// Tag group order is unspecified; use only for diagnostics.
    pub fn iter(&self) -> impl Iterator<Item = (Tag, &E)> {
        self.buckets
            .iter()
            .flat_map(|(&tag, bucket)| bucket.iter().map(move |e| (tag, e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_tag() {
        let mut q = TagQueue::new();
        q.push(Tag(1), "a");
        q.push(Tag(1), "b");
        q.push(Tag(2), "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.take_first(Tag(1), |_| true), Some("a"));
        assert_eq!(q.take_first(Tag(1), |_| true), Some("b"));
        assert_eq!(q.take_first(Tag(1), |_| true), None);
        assert_eq!(q.take_first(Tag(2), |_| true), Some("c"));
        assert!(q.is_empty());
    }

    #[test]
    fn predicate_skips_without_disturbing_order() {
        let mut q = TagQueue::new();
        q.push(Tag(7), 10);
        q.push(Tag(7), 20);
        q.push(Tag(7), 30);
        // Skip the head; FIFO among the rest is intact.
        assert_eq!(q.take_first(Tag(7), |&e| e > 10), Some(20));
        assert_eq!(q.take_first(Tag(7), |_| true), Some(10));
        assert_eq!(q.take_first(Tag(7), |_| true), Some(30));
    }

    #[test]
    fn missing_tag_is_none() {
        let mut q: TagQueue<u32> = TagQueue::new();
        assert_eq!(q.take_first(Tag(9), |_| true), None);
        q.push(Tag(1), 1);
        assert_eq!(q.take_first(Tag(9), |_| true), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_buckets_are_pruned() {
        let mut q = TagQueue::new();
        for i in 0..100u32 {
            q.push(Tag(i), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.take_first(Tag(i), |_| true), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.iter().count(), 0);
    }

    #[test]
    fn clear_retains_bucket_allocations() {
        let mut q = TagQueue::new();
        for round in 0..3 {
            for i in 0..50u32 {
                q.push(Tag(i % 5), i + round);
            }
            assert_eq!(q.len(), 50);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.iter().count(), 0);
            assert_eq!(q.take_first(Tag(0), |_| true), None);
        }
        // After a clear the drained buckets are reusable spares.
        assert!(q.spare.len() >= 5);
        q.push(Tag(9), 1);
        assert_eq!(q.take_first(Tag(9), |_| true), Some(1));
    }

    #[test]
    fn iter_visits_everything() {
        let mut q = TagQueue::new();
        q.push(Tag(1), 'x');
        q.push(Tag(2), 'y');
        q.push(Tag(1), 'z');
        let mut seen: Vec<(u32, char)> = q.iter().map(|(t, &e)| (t.0, e)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 'x'), (1, 'z'), (2, 'y')]);
    }
}
