//! # cesim-engine
//!
//! A LogGOPS discrete-event simulator in the spirit of LogGOPSim
//! (Hoefler, Schneider, Lumsdaine, HPDC 2010), the simulator the paper
//! uses to project correctable-error logging overheads to full-machine
//! scale.
//!
//! The engine executes a [`cesim_goal::Schedule`] — per-rank dependency
//! DAGs of `calc`/`send`/`recv` operations — under the LogGOPS cost model
//! ([`cesim_model::LogGopsParams`]):
//!
//! * each rank has a **CPU** resource (serializes `calc` work and the
//!   per-message `o + bytes·O` overheads) and a **NIC** resource
//!   (serializes injections at `g + bytes·G`),
//! * messages arrive `L + bytes·G` after injection starts,
//! * messages up to the eager threshold `S` are buffered eagerly; larger
//!   ones use an RTS/CTS rendezvous handshake,
//! * MPI matching is FIFO per (source, tag) with `MPI_ANY_SOURCE`
//!   wildcard support, with posted-receive and unexpected-message queues.
//!
//! **Noise injection.** Every interval of CPU work is routed through a
//! [`NoiseModel`], which may stretch it by inserting detours — this is how
//! correctable-error handling costs (and any other OS noise) enter the
//! simulation. Because message completions depend on CPU availability,
//! detours on one rank propagate along communication dependencies to ranks
//! it never talks to directly, reproducing the behavior sketched in
//! Fig. 1 of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod matchq;
pub mod noise;
pub mod queue;
pub mod record;
pub mod result;
pub mod shard;
pub mod sim;
pub mod topology;

pub use compile::CompiledSchedule;
pub use matchq::TagQueue;
pub use noise::{NoNoise, NoiseModel};
pub use record::{MsgClass, NullRecorder, Recorder, SegKind, SimEvent, VecRecorder};
pub use result::{SimError, SimResult};
pub use shard::{
    auto_shards, set_window_hook, shard_globals, simulate_compiled_sharded,
    simulate_compiled_sharded_observed, simulate_sharded_instrumented, simulate_sharded_recorded,
    simulate_sharded_recorded_observed, ShardGlobals, ShardHealth, ShardHealthReport, ShardMode,
    ShardTelemetry, WindowHook, WindowObserver, WINDOW_BATCH,
};
pub use sim::{simulate, simulate_compiled, simulate_compiled_with, RunScratch, Simulator};
pub use topology::{Dragonfly, FatTree, FlatCrossbar, Topology, Torus3D};
