//! Network topologies: hop-dependent wire latency.
//!
//! LogGOPS (and the paper) model the network as a flat crossbar: every
//! message pays the same latency `L`. Real interconnects pay per-hop
//! costs that depend on placement — a Cray XC40's dragonfly, a torus, or
//! a fat-tree. This module generalizes the engine's wire model:
//!
//! ```text
//! arrival = inject + L + (hops(src, dst) - 1) · hop_latency + bytes · G
//! ```
//!
//! With [`FlatCrossbar`] (the default) or `hop_latency = 0` the engine
//! reproduces the paper's flat model bit-for-bit; the other topologies
//! are an *extension* for studying whether CE-noise conclusions depend on
//! network diameter (they barely do — collectives dominate; see the
//! `topology` ablation bench).

use cesim_goal::Rank;

/// Maps rank pairs to hop counts.
pub trait Topology {
    /// Number of switch-to-switch hops between the nodes hosting `src`
    /// and `dst` (≥ 1 for distinct nodes; by convention 1 means "minimum
    /// distance", which pays no surcharge over `L`).
    fn hops(&self, src: Rank, dst: Rank) -> u32;

    /// Display name.
    fn name(&self) -> &'static str;

    /// Largest hop count over any pair (network diameter), used in
    /// diagnostics. Default scans are fine for test-sized networks;
    /// implementations may override with closed forms.
    fn diameter(&self, ranks: usize) -> u32 {
        let mut d = 1;
        for a in 0..ranks.min(256) {
            for b in 0..ranks.min(256) {
                if a != b {
                    d = d.max(self.hops(Rank::from(a), Rank::from(b)));
                }
            }
        }
        d
    }
}

/// The paper's model: every pair is one hop apart.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlatCrossbar;

impl Topology for FlatCrossbar {
    #[inline]
    fn hops(&self, _src: Rank, _dst: Rank) -> u32 {
        1
    }

    fn name(&self) -> &'static str {
        "flat-crossbar"
    }

    fn diameter(&self, _ranks: usize) -> u32 {
        1
    }
}

/// A 3-D torus with one node per vertex (ranks laid out row-major).
/// Hops = Manhattan distance with wraparound, floored at 1.
#[derive(Clone, Debug)]
pub struct Torus3D {
    dims: [usize; 3],
}

impl Torus3D {
    /// A torus with the given extents.
    pub fn new(dims: [usize; 3]) -> Self {
        assert!(dims.iter().all(|&d| d >= 1), "torus extents must be >= 1");
        Torus3D { dims }
    }

    /// A balanced torus for `n` ranks (extents from a 3-way
    /// factorization).
    pub fn balanced(n: usize) -> Self {
        // Inline balanced 3-way factorization (avoids a dependency on
        // cesim-workloads): greedy near-cube.
        let mut best = [n, 1, 1];
        let mut best_score = usize::MAX;
        let mut a = 1usize;
        while a * a * a <= n {
            if n.is_multiple_of(a) {
                let m = n / a;
                let mut b = a;
                while b * b <= m {
                    if m.is_multiple_of(b) {
                        let c = m / b;
                        let score = c - a;
                        if score < best_score {
                            best_score = score;
                            best = [c, b, a];
                        }
                    }
                    b += 1;
                }
            }
            a += 1;
        }
        Torus3D::new(best)
    }

    fn coords(&self, r: usize) -> [usize; 3] {
        let d = self.dims;
        [r / (d[1] * d[2]), (r / d[2]) % d[1], r % d[2]]
    }

    /// Torus extents.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }
}

impl Topology for Torus3D {
    fn hops(&self, src: Rank, dst: Rank) -> u32 {
        if src == dst {
            return 0;
        }
        let a = self.coords(src.idx());
        let b = self.coords(dst.idx());
        let mut total = 0usize;
        for i in 0..3 {
            let d = self.dims[i];
            let lin = a[i].abs_diff(b[i]);
            total += lin.min(d - lin);
        }
        (total as u32).max(1)
    }

    fn name(&self) -> &'static str {
        "torus-3d"
    }

    fn diameter(&self, _ranks: usize) -> u32 {
        self.dims
            .iter()
            .map(|&d| (d / 2) as u32)
            .sum::<u32>()
            .max(1)
    }
}

/// A dragonfly (the Cray XC40's actual topology): ranks are grouped;
/// intra-group traffic takes 1–2 hops, inter-group minimal routing takes
/// local + global + local = 3.
#[derive(Clone, Copy, Debug)]
pub struct Dragonfly {
    group_size: usize,
}

impl Dragonfly {
    /// Groups of `group_size` nodes.
    pub fn new(group_size: usize) -> Self {
        assert!(group_size >= 1);
        Dragonfly { group_size }
    }

    fn group(&self, r: Rank) -> usize {
        r.idx() / self.group_size
    }
}

impl Topology for Dragonfly {
    fn hops(&self, src: Rank, dst: Rank) -> u32 {
        if src == dst {
            0
        } else if self.group(src) == self.group(dst) {
            1
        } else {
            3
        }
    }

    fn name(&self) -> &'static str {
        "dragonfly"
    }

    fn diameter(&self, ranks: usize) -> u32 {
        if ranks <= self.group_size {
            1
        } else {
            3
        }
    }
}

/// A k-ary fat-tree with `leaf` nodes per edge switch: hops = 1 within a
/// leaf switch, otherwise 2·levels to the least common ancestor.
#[derive(Clone, Copy, Debug)]
pub struct FatTree {
    /// Nodes per leaf (edge) switch.
    pub leaf: usize,
    /// Fan-out between switch levels.
    pub radix: usize,
}

impl FatTree {
    /// A fat-tree with the given leaf width and switch radix.
    pub fn new(leaf: usize, radix: usize) -> Self {
        assert!(leaf >= 1 && radix >= 2);
        FatTree { leaf, radix }
    }
}

impl Topology for FatTree {
    fn hops(&self, src: Rank, dst: Rank) -> u32 {
        if src == dst {
            return 0;
        }
        let mut a = src.idx() / self.leaf;
        let mut b = dst.idx() / self.leaf;
        if a == b {
            return 1;
        }
        let mut up = 0u32;
        while a != b {
            a /= self.radix;
            b /= self.radix;
            up += 1;
        }
        2 * up
    }

    fn name(&self) -> &'static str {
        "fat-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_always_one() {
        let t = FlatCrossbar;
        assert_eq!(t.hops(Rank(0), Rank(99)), 1);
        assert_eq!(t.diameter(4096), 1);
        assert_eq!(t.name(), "flat-crossbar");
    }

    #[test]
    fn torus_manhattan_with_wrap() {
        let t = Torus3D::new([4, 4, 4]);
        // Neighbor along z.
        assert_eq!(t.hops(Rank(0), Rank(1)), 1);
        // Wraparound: coordinate 3 is 1 hop from 0 in a ring of 4.
        assert_eq!(t.hops(Rank(0), Rank(3)), 1);
        // Opposite corner: 2+2+2.
        let far = t.coords(0).len(); // silence unused warnings path
        let _ = far;
        let opposite = 2 * 16 + 2 * 4 + 2; // coords [2,2,2]
        assert_eq!(t.hops(Rank(0), Rank(opposite as u32)), 6);
        assert_eq!(t.diameter(64), 6);
        // Symmetry.
        for a in 0..16u32 {
            for b in 0..16u32 {
                assert_eq!(t.hops(Rank(a), Rank(b)), t.hops(Rank(b), Rank(a)));
            }
        }
        assert_eq!(t.hops(Rank(5), Rank(5)), 0);
    }

    #[test]
    fn torus_balanced_factorization() {
        let t = Torus3D::balanced(64);
        assert_eq!(t.dims(), [4, 4, 4]);
        let t = Torus3D::balanced(16_384);
        let d = t.dims();
        assert_eq!(d.iter().product::<usize>(), 16_384);
        assert!(d[0] <= 2 * d[2], "{d:?} should be near-cubic");
    }

    #[test]
    fn dragonfly_three_hop_structure() {
        let t = Dragonfly::new(16);
        assert_eq!(t.hops(Rank(0), Rank(15)), 1);
        assert_eq!(t.hops(Rank(0), Rank(16)), 3);
        assert_eq!(t.hops(Rank(20), Rank(21)), 1);
        assert_eq!(t.diameter(16), 1);
        assert_eq!(t.diameter(64), 3);
    }

    #[test]
    fn fat_tree_lca_hops() {
        let t = FatTree::new(4, 2);
        // Same leaf switch.
        assert_eq!(t.hops(Rank(0), Rank(3)), 1);
        // Adjacent leaves share a level-1 ancestor: up 1, down 1.
        assert_eq!(t.hops(Rank(0), Rank(4)), 2);
        // Leaves 0 and 3 (ranks 0 and 12): LCA two levels up.
        assert_eq!(t.hops(Rank(0), Rank(12)), 4);
        assert_eq!(t.hops(Rank(7), Rank(7)), 0);
    }
}
