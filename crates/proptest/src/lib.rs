//! An offline, dependency-free subset of the [`proptest`] API.
//!
//! The build environment for this repository has no access to crates.io,
//! so this workspace member shadows the real `proptest` crate with just
//! the surface the test suite uses:
//!
//! * [`Strategy`] with `prop_map` / `prop_flat_map`, integer-range and
//!   tuple strategies, [`Just`], [`prop_oneof!`] and
//!   [`collection::vec`];
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`] and [`prop_assert_eq!`];
//! * deterministic case generation (SplitMix64-seeded xorshift; the seed
//!   mixes the test name, so every test sees a stable but distinct
//!   stream). There is **no shrinking**: a failing case panics with the
//!   case number and the generated inputs' `Debug` form.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Runner configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// `Result` alias used by generated property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator state (xorshift64*, SplitMix64-seeded).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream; `seed` is pre-mixed through SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        s = z ^ (z >> 31);
        TestRng {
            state: if s == 0 { 0xDEAD_BEEF } else { s },
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: bound must be positive");
        // Multiply-shift; bias is negligible for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// `generate` directly produces a value.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`] (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V: Clone + Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Always produces its value (`Just(x)`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let first = self.inner.generate(rng);
        (self.f)(first).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Two's-complement width is correct for signed types too.
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(width) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as u64).wrapping_sub(lo as u64);
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(width + 1) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (S0.0);
    (S0.0, S1.1);
    (S0.0, S1.1, S2.2);
    (S0.0, S1.1, S2.2, S3.3);
    (S0.0, S1.1, S2.2, S3.3, S4.4);
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
}

/// Union of same-valued strategies; backs [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Clone + Debug> Union<V> {
    /// Build from pre-boxed alternatives (at least one).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: Clone + Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Uniformly pick one of the argument strategies each case.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::*;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// FNV-1a over a string; stable per-test seed derivation.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Soft assertion inside a property body: fails the case, reporting the
/// generated inputs, without aborting the whole process immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Define property tests. Supported grammar (a subset of real proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn prop_name(x in 0u32..10, (a, b) in pair_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Internal expansion arm — must precede the catch-all below.
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(concat!(
                module_path!(), "::", stringify!($name)
            )));
            for case in 0..cfg.cases {
                let vals = ($($crate::Strategy::generate(&$strat, &mut rng),)+);
                let vals_dbg = format!("{:?}", vals);
                let ($($pat,)+) = vals;
                let result: $crate::TestCaseResult = (|| { $body Ok(()) })();
                if let Err($crate::TestCaseError(msg)) = result {
                    panic!(
                        "property '{}' failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case + 1, cfg.cases, msg, vals_dbg
                    );
                }
            }
        }
    )*};
    // With a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without one.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (5usize..=5).generate(&mut rng);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::new(2);
        let s = collection::vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let mut rng = TestRng::new(3);
        let s = (2usize..7).prop_flat_map(|n| (Just(n), collection::vec(0u32..100, n..=n)));
        for _ in 0..100 {
            let (n, v) = s.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn oneof_picks_all_arms() {
        let mut rng = TestRng::new(4);
        let s = prop_oneof![0u64..10, 100u64..110];
        let (mut lo, mut hi) = (false, false);
        for _ in 0..200 {
            let x = s.generate(&mut rng);
            if x < 10 {
                lo = true;
            } else {
                assert!((100..110).contains(&x));
                hi = true;
            }
        }
        assert!(lo && hi);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..50, v in collection::vec(0u8..=255, 0..4)) {
            prop_assert!(x < 50);
            prop_assert!(v.len() < 4);
            prop_assert_eq!(x.wrapping_add(1).wrapping_sub(1), x);
        }
    }

    proptest! {
        #[test]
        fn macro_supports_tuple_patterns((a, b) in (0u32..10, 10u32..20)) {
            prop_assert!(a < b);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_inputs() {
        proptest! {
            #[allow(dead_code)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x too small: {}", x);
            }
        }
        inner();
    }
}
