//! An offline, dependency-free subset of the [`criterion`] API.
//!
//! The build environment for this repository has no access to crates.io,
//! so this workspace member shadows the real `criterion` crate with the
//! surface the benches use: [`Criterion`], [`criterion_group!`] /
//! [`criterion_main!`], benchmark groups with `sample_size` /
//! `throughput`, `bench_function` / `bench_with_input`, and a
//! [`Bencher`] whose `iter` measures wall-clock time.
//!
//! Statistics are deliberately simple — mean / min / max over the
//! configured samples, printed as plain text. There are no plots, no
//! saved baselines and no outlier analysis; the point is that
//! `cargo bench` runs offline and prints honest numbers.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Mirror of criterion's CLI hookup; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.default_sample_size, None, f);
        self
    }
}

/// Throughput annotation for a group; reported alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("sort", 1024)` → `sort/1024`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare parameter id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing sample-size / throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time `f` under `<group>/<name>`.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Time `f(bencher, input)` under the given id.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (printing is immediate; this is for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `sample_size` wall-clock samples of `f` (after one
    /// untimed warm-up call).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_bench(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().unwrap();
    let max = *b.samples.iter().max().unwrap();
    let tp = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / mean.as_secs_f64();
            format!("  {:>12.0} elem/s", per_sec)
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {:>9.1} MiB/s", per_sec)
        }
        None => String::new(),
    };
    println!(
        "{name:<40} time: [{} {} {}]{tp}",
        fmt_dur(min),
        fmt_dur(mean),
        fmt_dur(max)
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50u32), &50u32, |b, &n| {
            b.iter(|| (0..n as u64).sum::<u64>())
        });
        g.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_prints() {
        benches();
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert_eq!(fmt_dur(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_dur(Duration::from_micros(5)).ends_with("us"));
        assert!(fmt_dur(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_secs(5)).ends_with(" s"));
    }
}
