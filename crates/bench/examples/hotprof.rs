//! Quick hot-path profiler for the serial engine — a development tool,
//! not a benchmark of record (`benches/compile.rs` is that).
//!
//! Runs the replica-sweep workload three ways and prints per-event
//! costs, which is enough to attribute a regression to the queue, the
//! dispatch path, or the noise model without external profilers:
//!
//! * `ce-noise`  — the full bench configuration (CE detours enabled).
//! * `no-noise`  — same schedule under `NoNoise`; the delta to the line
//!   above is what noise desynchronization costs (smaller same-time
//!   batches), not the noise model itself.
//! * `queue-only` — replays a comparable push/pop volume against
//!   `EventQueue` directly with the real key pattern (per-rank monotone
//!   `cseq`, clustered timestamps), isolating queue cost from dispatch.
//!
//! Usage: `cargo build --release -p cesim-bench --example hotprof` and
//! A/B the binary against a stashed baseline build; single runs on a
//! noisy host swing ±10%, so interleave several rounds.

use cesim_core::engine::queue::{EvKey, EventQueue};
use cesim_core::engine::{simulate_compiled, CompiledSchedule, NoNoise};
use cesim_core::goal::builder::TagPool;
use cesim_core::goal::collectives::{allreduce_recursive_doubling, CollectiveCosts};
use cesim_core::goal::{Rank, ScheduleBuilder};
use cesim_core::model::{LogGopsParams, Span, Time};
use cesim_core::noise::{CeNoise, Scope};
use std::time::Instant;

fn main() {
    let n = 256;
    let rounds = 24;
    let mut b = ScheduleBuilder::new(n);
    let mut tags = TagPool::new();
    let mut cur: Vec<_> = (0..n).map(|r| b.join(Rank::from(r), &[])).collect();
    for _ in 0..rounds {
        cur = allreduce_recursive_doubling(&mut b, &mut tags, 8, &CollectiveCosts::default(), &cur);
    }
    let sched = b.build();
    let cs = CompiledSchedule::compile(&sched);
    let mk = |seed| {
        CeNoise::new(
            n,
            Span::from_ms(50),
            Span::from_us(200),
            Scope::AllRanks,
            seed,
        )
    };
    // Warm-up: populate scratch/caches outside the timed regions.
    simulate_compiled(&cs, &LogGopsParams::xc40(), &mut mk(u64::MAX)).unwrap();
    let reps = 24u64;

    let t0 = Instant::now();
    let mut ev = 0u64;
    for s in 0..reps {
        let r = simulate_compiled(&cs, &LogGopsParams::xc40(), &mut mk(s)).unwrap();
        ev += r.events_processed;
    }
    let el = t0.elapsed().as_secs_f64();
    println!(
        "ce-noise : reps/s {:.2}  ns/event {:.1}",
        reps as f64 / el,
        el * 1e9 / ev as f64
    );

    let t0 = Instant::now();
    let mut ev2 = 0u64;
    for _ in 0..reps {
        let r = simulate_compiled(&cs, &LogGopsParams::xc40(), &mut NoNoise).unwrap();
        ev2 += r.events_processed;
    }
    let el2 = t0.elapsed().as_secs_f64();
    println!(
        "no-noise : reps/s {:.2}  ns/event {:.1}",
        reps as f64 / el2,
        el2 * 1e9 / ev2 as f64
    );

    let mut q: EventQueue<(u32, u32)> = EventQueue::new();
    let per_rep: usize = 246_016;
    let t0 = Instant::now();
    let mut sink = 0u64;
    let mut out = Vec::new();
    for _ in 0..reps {
        let mut seq = vec![0u32; n];
        let mut pushed = 0usize;
        // Seed one event per rank, then let each popped event create one
        // future event on the same rank until the volume target is hit.
        for (r, s) in seq.iter_mut().enumerate() {
            let key = EvKey {
                crank: r as u32,
                cseq: *s,
            };
            q.push(Time::from_ps(0), key, (r as u32, 0));
            *s += 1;
            pushed += 1;
        }
        while pushed < per_rep || !q.is_empty() {
            q.pop_batch(&mut out);
            for &(t, k, _) in out.iter() {
                let now = t.as_ps();
                let r = k.crank as usize;
                if pushed < per_rep {
                    let key = EvKey {
                        crank: r as u32,
                        cseq: seq[r],
                    };
                    q.push(
                        Time::from_ps(now + 1000 + (pushed as u64 % 7) * 250),
                        key,
                        (r as u32, 1),
                    );
                    seq[r] += 1;
                    pushed += 1;
                }
                sink = sink.wrapping_add(now);
            }
            if out.is_empty() {
                break;
            }
        }
        q.clear();
    }
    let el3 = t0.elapsed().as_secs_f64();
    println!(
        "queue-only: ns/event {:.1}  (sink {sink})",
        el3 * 1e9 / (per_rep as f64 * reps as f64)
    );
}
