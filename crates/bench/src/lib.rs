//! # cesim-bench
//!
//! Criterion benchmarks for the DRAM correctable-error logging study.
//!
//! Two families:
//!
//! * **microbenchmarks** (`engine`, `collectives`, `noise`, `workloads`)
//!   — throughput of the simulator's hot paths;
//! * **regeneration benches** (`tables`, `fig2` … `fig7`) — one bench
//!   target per table/figure of the paper. Each regenerates the artifact
//!   at a reduced, benchmark-friendly scale, prints the resulting series
//!   once (so `cargo bench` leaves the reproduced numbers in its log),
//!   and then times the regeneration.
//!
//! `REGEN_NODES` / `REGEN_REPS` environment variables scale the
//! regeneration benches up toward paper scale.

#![forbid(unsafe_code)]

use cesim_core::figures::ScaleConfig;
use cesim_core::workloads::AppId;

/// Scale used by the per-figure regeneration benches: small enough that a
/// Criterion run finishes in minutes, overridable via `REGEN_NODES` /
/// `REGEN_REPS`.
pub fn regen_scale() -> ScaleConfig {
    let nodes = std::env::var("REGEN_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let reps = std::env::var("REGEN_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    ScaleConfig {
        nodes,
        reps,
        steps_scale: 0.2,
        progress: false,
        ..ScaleConfig::default()
    }
}

/// A representative app subset for figure benches (one from each
/// sensitivity class) to keep `cargo bench` runtimes reasonable.
pub fn bench_apps() -> Vec<AppId> {
    vec![AppId::LammpsLj, AppId::Hpcg, AppId::Lulesh]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regen_scale_is_small_by_default() {
        let s = regen_scale();
        assert!(s.nodes <= 256);
        assert_eq!(s.reps, 1);
    }

    #[test]
    fn bench_apps_cover_the_sensitivity_classes() {
        let apps = bench_apps();
        assert!(apps.contains(&AppId::LammpsLj));
        assert!(apps.contains(&AppId::Lulesh));
        assert_eq!(apps.len(), 3);
    }
}
