//! Single-run scaling of the sharded event loop (`--shards N`).
//!
//! Sweep-level parallelism cannot shorten *one* big simulation; the
//! sharded engine can. This bench measures one large allreduce run —
//! the paper's full-machine projection shape — executed serially vs
//! split across lookahead-window shards, and checks on every trial
//! that the sharded result equals the serial one exactly.
//!
//! The headline uses `ShardMode::Lockstep` (all shards round-robin on
//! the calling thread): on a multi-core host threads only add to the
//! win, but lockstep isolates the *algorithmic* effect — S event heaps
//! of n/S entries and shard-local match queues/scratch slices with
//! much smaller per-window working sets — which is the honest number
//! to commit from a single-core runner.
//!
//! Scaling knobs (for CI smoke runs):
//!
//! * `SHARD_BENCH_RANKS` — ranks in the allreduce (default 65536);
//! * `SHARD_BENCH_ROUNDS` — back-to-back allreduces (default 2);
//! * `SHARD_BENCH_TRIALS` — best-of trials per config (default 3);
//! * `SHARD_BENCH_SHARDS` — comma-separated shard counts (default
//!   `2,4,8`);
//! * `SHARD_BENCH_JSON` — if set, write the scaling table as JSON to
//!   this path (merged into `BENCH_engine.json`).

use cesim_core::engine::{
    simulate_compiled, simulate_compiled_sharded, CompiledSchedule, ShardMode, SimResult,
};
use cesim_core::goal::builder::TagPool;
use cesim_core::goal::collectives::{allreduce_recursive_doubling, CollectiveCosts};
use cesim_core::goal::{Rank, Schedule, ScheduleBuilder};
use cesim_core::model::LogGopsParams;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_shards() -> Vec<usize> {
    std::env::var("SHARD_BENCH_SHARDS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![2, 4, 8])
}

/// Back-to-back recursive-doubling allreduces at full machine scale.
fn allreduce_schedule(n: usize, count: usize) -> Schedule {
    let mut b = ScheduleBuilder::new(n);
    let mut tags = TagPool::new();
    let mut cur: Vec<_> = (0..n).map(|r| b.join(Rank::from(r), &[])).collect();
    for _ in 0..count {
        cur = allreduce_recursive_doubling(&mut b, &mut tags, 8, &CollectiveCosts::default(), &cur);
    }
    b.build()
}

/// Best-of-`trials` wall time for one run configuration.
fn best_secs(trials: usize, run: &mut impl FnMut() -> SimResult) -> (f64, SimResult) {
    let mut best = f64::INFINITY;
    let mut result = run(); // warm-up (primes allocations)
    for _ in 0..trials {
        let t0 = Instant::now();
        result = run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, result)
}

fn bench_shard(c: &mut Criterion) {
    let ranks = env_usize("SHARD_BENCH_RANKS", 65536);
    let rounds = env_usize("SHARD_BENCH_ROUNDS", 2);
    let trials = env_usize("SHARD_BENCH_TRIALS", 3);
    let shard_counts = env_shards();
    let params = LogGopsParams::xc40();

    let sched = allreduce_schedule(ranks, rounds);
    let cs = CompiledSchedule::compile(&sched);
    let ops = sched.total_ops() as u64;

    // Criterion pass at whatever scale the env selected (CI smoke runs
    // shrink it); the committed numbers come from the headline below.
    // `SHARD_BENCH_QUICK=1` skips straight to the headline.
    if env_usize("SHARD_BENCH_QUICK", 0) == 0 {
        let mut g = c.benchmark_group("shard");
        g.sample_size(10);
        g.throughput(Throughput::Elements(ops));
        g.bench_function(format!("serial_{ranks}r"), |b| {
            b.iter(|| simulate_compiled(black_box(&cs), &params, &mut cesim_core::engine::NoNoise))
        });
        for &s in &shard_counts {
            g.bench_function(format!("lockstep_{s}shards_{ranks}r"), |b| {
                b.iter(|| {
                    simulate_compiled_sharded(
                        black_box(&cs),
                        &params,
                        s,
                        ShardMode::Lockstep,
                        &cesim_core::engine::NoNoise,
                    )
                })
            });
        }
        g.finish();
    }

    // Headline: best-of-trials single-run latency, serial vs each shard
    // count, with a full-result equality check on every configuration.
    let (serial_s, serial_r) = best_secs(trials, &mut || {
        simulate_compiled(&cs, &params, &mut cesim_core::engine::NoNoise).unwrap()
    });
    println!(
        "single run ({ranks} ranks, {ops} ops): serial {serial_s:.3}s \
         ({:.2}M events/s)",
        serial_r.events_processed as f64 / serial_s / 1e6
    );
    let mut rows = Vec::new();
    for &s in &shard_counts {
        let (t, r) = best_secs(trials, &mut || {
            simulate_compiled_sharded(
                &cs,
                &params,
                s,
                ShardMode::Lockstep,
                &cesim_core::engine::NoNoise,
            )
            .unwrap()
        });
        assert_eq!(r, serial_r, "sharded result diverged at {s} shards");
        let speedup = serial_s / t;
        println!("  {s} shards (lockstep): {t:.3}s, {speedup:.2}x vs serial");
        rows.push(format!(
            "    {{ \"shards\": {s}, \"secs\": {t:.3}, \"speedup\": {speedup:.3} }}"
        ));
    }

    if let Ok(path) = std::env::var("SHARD_BENCH_JSON") {
        let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let json = format!(
            "{{\n  \"bench\": \"sharded_single_run_scaling\",\n  \
             \"workload\": \"allreduce_recursive_doubling\",\n  \
             \"mode\": \"lockstep\",\n  \"host_cpus\": {host_cpus},\n  \
             \"ranks\": {ranks},\n  \"allreduces\": {rounds},\n  \
             \"ops\": {ops},\n  \"events\": {},\n  \
             \"serial_secs\": {serial_s:.3},\n  \"sharded\": [\n{}\n  ]\n}}\n",
            serial_r.events_processed,
            rows.join(",\n")
        );
        std::fs::write(&path, json).expect("write SHARD_BENCH_JSON");
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_shard);
criterion_main!(benches);
