//! Observability overhead bench.
//!
//! The `Recorder` hooks in the engine are gated on `R::ENABLED`, a
//! monomorphization-time constant, so the default `NullRecorder` path
//! must compile to the pre-instrumentation engine. This bench verifies
//! the claim empirically on the sweep fixture (LULESH at the regen
//! scale): the explicit `NullRecorder` run must stay within 2% of
//! `simulate()`, measured as interleaved min-of-N to shed scheduler
//! noise. The active `TimelineRecorder` cost is printed alongside for
//! the logs (it is allowed to cost — it records everything).
//!
//! The runtime-telemetry layer (span profiler + flight recorder) has
//! the same contract at runtime instead of compile time: disabled via
//! its process-wide atomic, the sharded engine path with the window
//! hook installed must stay within 2% of the pre-hook path.

use cesim_bench::regen_scale;
use cesim_core::engine::{
    simulate, simulate_compiled_sharded, CompiledSchedule, NoNoise, NullRecorder, ShardMode,
    Simulator,
};
use cesim_core::model::LogGopsParams;
use cesim_core::obs::telemetry::{self, Span};
use cesim_core::obs::TimelineRecorder;
use cesim_core::workloads::{self, AppId, WorkloadConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn bench_obs(c: &mut Criterion) {
    let scale = regen_scale();
    let wl = WorkloadConfig {
        steps_scale: scale.steps_scale,
        ..WorkloadConfig::default()
    };
    let ranks = workloads::natural_ranks(AppId::Lulesh, scale.nodes);
    let sched = workloads::build(AppId::Lulesh, ranks, &wl);
    let params = LogGopsParams::xc40();

    // Interleaved min-of-N: the minimum is the least noise-contaminated
    // observation of each path.
    let rounds = 20;
    let mut t_plain = f64::INFINITY;
    let mut t_null = f64::INFINITY;
    let mut t_timeline = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        black_box(simulate(&sched, &params, &mut NoNoise).unwrap());
        t_plain = t_plain.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        black_box(
            Simulator::new(&sched, params)
                .with_recorder(NullRecorder)
                .run(&mut NoNoise)
                .unwrap(),
        );
        t_null = t_null.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        let mut rec = TimelineRecorder::with_capacity(1 << 22);
        black_box(
            Simulator::new(&sched, params)
                .with_recorder(&mut rec)
                .run(&mut NoNoise)
                .unwrap(),
        );
        t_timeline = t_timeline.min(t0.elapsed().as_secs_f64());
    }
    let null_overhead = t_null / t_plain - 1.0;
    println!(
        "\n=== obs overhead (LULESH {} ranks, min of {rounds}): plain {:.3}ms, \
         NullRecorder {:.3}ms ({:+.2}%), TimelineRecorder {:.3}ms ({:+.2}%) ===",
        ranks,
        t_plain * 1e3,
        t_null * 1e3,
        null_overhead * 100.0,
        t_timeline * 1e3,
        (t_timeline / t_plain - 1.0) * 100.0,
    );
    assert!(
        null_overhead < 0.02,
        "NullRecorder must be free: measured {:+.2}% vs the default path",
        null_overhead * 100.0
    );

    // Runtime telemetry (span profiler + flight recorder) is gated on a
    // single process-wide atomic; the sharded engine additionally fires
    // a window hook once per lookahead window. Contract: with the hook
    // installed and telemetry *disabled*, the engine path stays within
    // 2% of the same run measured before any hook existed. The enabled
    // cost is printed alongside for the logs.
    let cs = CompiledSchedule::compile(&sched);
    let run_sharded = |cs: &CompiledSchedule| {
        let _s = Span::enter("bench_cell");
        black_box(simulate_compiled_sharded(cs, &params, 4, ShardMode::Lockstep, &NoNoise).unwrap())
    };
    let mut t_before = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        run_sharded(&cs);
        t_before = t_before.min(t0.elapsed().as_secs_f64());
    }
    telemetry::install_engine_hook();
    let mut t_disabled = f64::INFINITY;
    let mut t_enabled = f64::INFINITY;
    for _ in 0..rounds {
        telemetry::set_enabled(false);
        let t0 = Instant::now();
        run_sharded(&cs);
        t_disabled = t_disabled.min(t0.elapsed().as_secs_f64());

        telemetry::set_enabled(true);
        let t0 = Instant::now();
        run_sharded(&cs);
        t_enabled = t_enabled.min(t0.elapsed().as_secs_f64());
    }
    telemetry::set_enabled(false);
    let disabled_overhead = t_disabled / t_before - 1.0;
    println!(
        "=== telemetry overhead (sharded x4, min of {rounds}): no-hook {:.3}ms, \
         disabled {:.3}ms ({:+.2}%), enabled {:.3}ms ({:+.2}%) ===",
        t_before * 1e3,
        t_disabled * 1e3,
        disabled_overhead * 100.0,
        t_enabled * 1e3,
        (t_enabled / t_before - 1.0) * 100.0,
    );
    assert!(
        disabled_overhead < 0.02,
        "disabled telemetry must be free: measured {:+.2}% vs the pre-hook engine path",
        disabled_overhead * 100.0
    );

    let mut g = c.benchmark_group("obs");
    g.sample_size(10);
    g.bench_function("simulate_plain", |b| {
        b.iter(|| simulate(black_box(&sched), &params, &mut NoNoise).unwrap())
    });
    g.bench_function("simulate_null_recorder", |b| {
        b.iter(|| {
            Simulator::new(black_box(&sched), params)
                .with_recorder(NullRecorder)
                .run(&mut NoNoise)
                .unwrap()
        })
    });
    g.bench_function("simulate_timeline_recorder", |b| {
        b.iter(|| {
            let mut rec = TimelineRecorder::with_capacity(1 << 22);
            Simulator::new(black_box(&sched), params)
                .with_recorder(&mut rec)
                .run(&mut NoNoise)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
