//! Regeneration bench for Fig. 6 (extreme-rate software study).
//! Prints the reproduced series once at a reduced scale (REGEN_NODES /
//! REGEN_REPS env vars scale it up), then times the regeneration.

use cesim_bench::{bench_apps, regen_scale};
use cesim_core::figures::fig6;
use cesim_core::report::render_figure;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut cfg = regen_scale();
    cfg.apps = bench_apps();
    println!("\n=== Fig. 6 at {} nodes (reduced scale) ===", cfg.nodes);
    print!("{}", render_figure(&fig6(&cfg)));

    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("regenerate", |b| b.iter(|| black_box(fig6(&cfg))));
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
