//! Compile-once vs rebuild-per-replica: the payoff of the
//! [`CompiledSchedule`] / `RunScratch` split on a replica sweep.
//!
//! The experiment layer runs the *same* schedule under many noise seeds
//! (replicas). The legacy path (`simulate`) re-compiles the schedule and
//! re-allocates all per-run state for every replica; the compiled path
//! (`simulate_compiled`) compiles once and resets a pooled per-thread
//! scratch in place. This bench measures both on a 256-rank back-to-back
//! allreduce sweep under CE noise and reports the replica-throughput
//! ratio.
//!
//! Scaling knobs (for CI smoke runs):
//!
//! * `ENGINE_BENCH_RANKS` — ranks in the allreduce (default 256);
//! * `ENGINE_BENCH_ROUNDS` — back-to-back allreduces (default 24);
//! * `ENGINE_BENCH_REPLICAS` — replicas per headline measurement
//!   (default 24);
//! * `ENGINE_BENCH_JSON` — if set, write the headline comparison as
//!   JSON to this path (used to produce `BENCH_engine.json`).

use cesim_core::engine::{simulate, simulate_compiled, CompiledSchedule};
use cesim_core::goal::builder::TagPool;
use cesim_core::goal::collectives::{allreduce_recursive_doubling, CollectiveCosts};
use cesim_core::goal::{Rank, Schedule, ScheduleBuilder};
use cesim_core::model::{LogGopsParams, Span};
use cesim_core::noise::{CeNoise, Scope};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Back-to-back recursive-doubling allreduces — the collective pattern
/// the figure sweeps hammer hardest.
fn allreduce_schedule(n: usize, count: usize) -> Schedule {
    let mut b = ScheduleBuilder::new(n);
    let mut tags = TagPool::new();
    let mut cur: Vec<_> = (0..n).map(|r| b.join(Rank::from(r), &[])).collect();
    for _ in 0..count {
        cur = allreduce_recursive_doubling(&mut b, &mut tags, 8, &CollectiveCosts::default(), &cur);
    }
    b.build()
}

fn noise(ranks: usize, seed: u64) -> CeNoise {
    // Light CE noise (fleet-median-ish MTBCE): replicas genuinely differ
    // by seed without the noise machinery dominating engine time.
    CeNoise::new(
        ranks,
        Span::from_ms(50),
        Span::from_us(200),
        Scope::AllRanks,
        seed,
    )
}

/// Replicas-per-second of one path over `replicas` differently-seeded
/// noisy runs.
fn replicas_per_sec(replicas: usize, run: &mut impl FnMut(u64)) -> f64 {
    run(u64::MAX); // warm-up (also primes the pooled scratch)
    let t0 = Instant::now();
    for seed in 0..replicas as u64 {
        run(seed);
    }
    replicas as f64 / t0.elapsed().as_secs_f64()
}

/// Best-of-`trials` throughput for two paths, with trials interleaved
/// so ambient load drift hits both paths alike. Max (not mean) is the
/// standard low-noise estimator for a deterministic workload: every
/// slowdown is measurement interference, never the workload.
fn best_interleaved(
    trials: usize,
    replicas: usize,
    a: &mut impl FnMut(u64),
    b: &mut impl FnMut(u64),
) -> (f64, f64) {
    let (mut best_a, mut best_b) = (0f64, 0f64);
    for _ in 0..trials {
        best_a = best_a.max(replicas_per_sec(replicas, a));
        best_b = best_b.max(replicas_per_sec(replicas, b));
    }
    (best_a, best_b)
}

fn bench_compile(c: &mut Criterion) {
    let ranks = env_usize("ENGINE_BENCH_RANKS", 256);
    let rounds = env_usize("ENGINE_BENCH_ROUNDS", 24);
    let replicas = env_usize("ENGINE_BENCH_REPLICAS", 24);
    let params = LogGopsParams::xc40();

    let sched = allreduce_schedule(ranks, rounds);
    let cs = CompiledSchedule::compile(&sched);
    let ops = sched.total_ops() as u64;

    let mut g = c.benchmark_group("compile");
    g.sample_size(10);

    g.throughput(Throughput::Elements(ops));
    g.bench_function(format!("compile_only_{ranks}r"), |b| {
        b.iter(|| CompiledSchedule::compile(black_box(&sched)))
    });
    g.bench_function(format!("rebuild_per_replica_{ranks}r"), |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            simulate(black_box(&sched), &params, &mut noise(ranks, seed)).unwrap()
        })
    });
    g.bench_function(format!("compile_once_{ranks}r"), |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            simulate_compiled(black_box(&cs), &params, &mut noise(ranks, seed)).unwrap()
        })
    });
    g.finish();

    // Headline comparison: a whole replica sweep each way, best of
    // several interleaved trials.
    let (rebuild, compiled) = best_interleaved(
        5,
        replicas,
        &mut |seed| {
            simulate(&sched, &params, &mut noise(ranks, seed)).unwrap();
        },
        &mut |seed| {
            simulate_compiled(&cs, &params, &mut noise(ranks, seed)).unwrap();
        },
    );
    let speedup = compiled / rebuild;
    println!(
        "replica sweep ({replicas} replicas, {ranks} ranks, {ops} ops): \
         rebuild {rebuild:.2} rep/s, compile-once {compiled:.2} rep/s, {speedup:.2}x"
    );

    if let Ok(path) = std::env::var("ENGINE_BENCH_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"compile_once_vs_rebuild_per_replica\",\n  \
             \"workload\": \"allreduce_recursive_doubling\",\n  \
             \"ranks\": {ranks},\n  \"allreduces\": {rounds},\n  \
             \"ops_per_replica\": {ops},\n  \"replicas\": {replicas},\n  \
             \"rebuild_replicas_per_sec\": {rebuild:.3},\n  \
             \"compile_once_replicas_per_sec\": {compiled:.3},\n  \
             \"speedup\": {speedup:.3}\n}}\n"
        );
        std::fs::write(&path, json).expect("write ENGINE_BENCH_JSON");
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
