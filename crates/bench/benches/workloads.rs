//! Workload-generation microbenchmarks: schedule construction cost for
//! each Table I skeleton (this is the setup cost every experiment pays
//! once per app × scale).

use cesim_core::workloads::{build, AppId, WorkloadConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    g.sample_size(10);
    let cfg = WorkloadConfig {
        steps_scale: 0.2,
        ..WorkloadConfig::default()
    };
    for app in AppId::all() {
        g.bench_with_input(
            BenchmarkId::new("build_256r", app.name()),
            &app,
            |b, &app| b.iter(|| black_box(build(app, 256, &cfg))),
        );
    }
    // The heaviest case: LULESH (26-neighbor halo, per-step collectives).
    g.bench_function("build_lulesh_2048r", |b| {
        b.iter(|| black_box(build(AppId::Lulesh, 2048, &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
