//! Regeneration bench for Fig. 2: the four selfish noise signatures.
//! Prints the panel summaries once, then times the synthesis.

use cesim_core::model::Span;
use cesim_core::noise::signature::{fig2, SignatureConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let cfg = SignatureConfig::default();
    println!("\n=== Fig. 2: selfish noise signatures (300 s window) ===");
    for (kind, trace) in fig2(&cfg) {
        println!(
            "  {:<20} {:>7} detours, {:>8.4}% noise, max {:>10}, >=100ms: {}",
            kind.label(),
            trace.count(),
            trace.noise_fraction() * 100.0,
            format!("{}", trace.max_detour()),
            trace.count_in(Span::from_ms(100), Span::MAX),
        );
    }

    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("regenerate", |b| b.iter(|| black_box(fig2(&cfg))));
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
