//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Allreduce expansion algorithm** — recursive doubling vs binomial
//!    reduce+broadcast. The collective's dependency structure determines
//!    how CE detours serialize into the critical path; this bench prints
//!    the measured CE slowdown under both expansions and times them.
//! 2. **Eager/rendezvous threshold** — protocol choice changes how many
//!    control messages (and CPU touch points for noise) each halo
//!    exchange costs.
//! 3. **Network topology** — the paper's flat crossbar vs torus/dragonfly
//!    with a per-hop latency surcharge: does network diameter change the
//!    CE-noise picture? (It barely does — per-event CPU cost dominates.)

use cesim_core::engine::{simulate, NoNoise, Simulator};
use cesim_core::engine::{Dragonfly, FlatCrossbar, Topology, Torus3D};
use cesim_core::goal::collectives::AllreduceAlgo;
use cesim_core::model::{LogGopsParams, LoggingMode, Span};
use cesim_core::noise::{BurstSpec, BurstyCeNoise, CeNoise, Scope};
use cesim_core::workloads::{build, AppId, WorkloadConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn slowdown_with(algo: AllreduceAlgo, params: &LogGopsParams) -> f64 {
    let cfg = WorkloadConfig {
        allreduce_algo: algo,
        steps_override: Some(40),
        ..WorkloadConfig::default()
    };
    let sched = build(AppId::Lulesh, 64, &cfg);
    let base = simulate(&sched, params, &mut NoNoise).unwrap();
    let mut total = 0.0;
    let reps = 3;
    for seed in 0..reps {
        let mut noise = CeNoise::new(
            64,
            Span::from_secs(5),
            LoggingMode::Firmware.per_event_cost(),
            Scope::AllRanks,
            seed,
        );
        let pert = simulate(&sched, params, &mut noise).unwrap();
        total += pert.slowdown_pct(base.finish).expect("positive baseline");
    }
    total / reps as f64
}

fn bench_ablation(c: &mut Criterion) {
    let params = LogGopsParams::xc40();

    println!("\n=== Ablation: allreduce expansion (LULESH, 64 nodes, fw @ MTBCE 5s) ===");
    for algo in [AllreduceAlgo::RecursiveDoubling, AllreduceAlgo::ReduceBcast] {
        println!(
            "  {:?}: {:.2}% CE slowdown",
            algo,
            slowdown_with(algo, &params)
        );
    }

    println!("\n=== Ablation: eager threshold (HPCG baseline completion) ===");
    for threshold in [1024u64, 16 * 1024, 256 * 1024] {
        let p = params.with_eager_threshold(threshold);
        let cfg = WorkloadConfig {
            steps_override: Some(10),
            ..WorkloadConfig::default()
        };
        let sched = build(AppId::Hpcg, 64, &cfg);
        let r = simulate(&sched, &p, &mut NoNoise).unwrap();
        println!(
            "  S = {:>7} B: baseline {}, {} control msgs",
            threshold, r.finish, r.control_msgs
        );
    }

    println!("\n=== Ablation: bursty vs memoryless CE arrivals (matched average rate) ===");
    {
        let cfg = WorkloadConfig {
            steps_override: Some(40),
            ..WorkloadConfig::default()
        };
        let sched = build(AppId::Lulesh, 64, &cfg);
        let base = simulate(&sched, &params, &mut NoNoise).unwrap();
        let spec = BurstSpec {
            quiet_mtbce: Span::from_secs(60),
            burst_mtbce: Span::from_ms(200),
            mean_quiet: Span::from_secs(10),
            mean_burst: Span::from_secs(1),
        };
        let detour = LoggingMode::Firmware.per_event_cost();
        let reps = 3u64;
        let mut bursty_total = 0.0;
        let mut smooth_total = 0.0;
        for seed in 0..reps {
            let mut bn = BurstyCeNoise::new(64, spec, detour, seed);
            bursty_total += simulate(&sched, &params, &mut bn)
                .unwrap()
                .slowdown_pct(base.finish)
                .expect("positive baseline");
            let mut sn = CeNoise::new(64, spec.equivalent_mtbce(), detour, Scope::AllRanks, seed);
            smooth_total += simulate(&sched, &params, &mut sn)
                .unwrap()
                .slowdown_pct(base.finish)
                .expect("positive baseline");
        }
        println!(
            "  equivalent MTBCE {}: memoryless {:.1}%, bursty {:.1}%",
            spec.equivalent_mtbce(),
            smooth_total / reps as f64,
            bursty_total / reps as f64
        );
    }

    println!("\n=== Ablation: network topology (LULESH, 64 nodes, 1us/hop, fw @ MTBCE 5s) ===");
    {
        let cfg = WorkloadConfig {
            steps_override: Some(40),
            ..WorkloadConfig::default()
        };
        let sched = build(AppId::Lulesh, 64, &cfg);
        let p_hop = params.with_hop_latency(Span::from_us(1));
        type TopoFactory = Box<dyn Fn() -> Box<dyn Topology>>;
        let topos: Vec<(&str, TopoFactory)> = vec![
            ("flat-crossbar", Box::new(|| Box::new(FlatCrossbar))),
            (
                "torus-3d 4x4x4",
                Box::new(|| Box::new(Torus3D::new([4, 4, 4]))),
            ),
            ("dragonfly g=16", Box::new(|| Box::new(Dragonfly::new(16)))),
        ];
        for (name, mk) in &topos {
            let base = Simulator::new(&sched, p_hop)
                .with_topology(mk())
                .run(&mut NoNoise)
                .unwrap();
            let mut noise = CeNoise::new(
                64,
                Span::from_secs(5),
                LoggingMode::Firmware.per_event_cost(),
                Scope::AllRanks,
                1,
            );
            let pert = Simulator::new(&sched, p_hop)
                .with_topology(mk())
                .run(&mut noise)
                .unwrap();
            println!(
                "  {name:<16} baseline {}  CE slowdown {:.2}%",
                base.finish,
                pert.slowdown_pct(base.finish).expect("positive baseline")
            );
        }
    }

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("allreduce_recursive_doubling", |b| {
        b.iter(|| black_box(slowdown_with(AllreduceAlgo::RecursiveDoubling, &params)))
    });
    g.bench_function("allreduce_reduce_bcast", |b| {
        b.iter(|| black_box(slowdown_with(AllreduceAlgo::ReduceBcast, &params)))
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
