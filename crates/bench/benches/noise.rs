//! Noise-path microbenchmarks: the CE detour sampler (called once per CPU
//! interval — the engine's hottest external call) and the Fig. 2
//! signature synthesis.

use cesim_core::engine::NoiseModel;
use cesim_core::goal::Rank;
use cesim_core::model::{Span, Time};
use cesim_core::noise::signature::{signature, SignatureConfig, SignatureKind};
use cesim_core::noise::{CeNoise, Scope};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_noise(c: &mut Criterion) {
    let mut g = c.benchmark_group("noise");
    g.sample_size(10);

    // Sparse regime: almost every stretch() is a single comparison.
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("stretch_sparse_100k", |b| {
        b.iter(|| {
            let mut n = CeNoise::new(
                1,
                Span::from_secs(3600),
                Span::from_ms(133),
                Scope::AllRanks,
                1,
            );
            let mut t = Time::ZERO;
            for _ in 0..100_000 {
                t = n.stretch(Rank(0), t, Span::from_us(10));
            }
            black_box(t)
        })
    });

    // Dense regime: every interval absorbs several detours.
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("stretch_dense_10k", |b| {
        b.iter(|| {
            let mut n = CeNoise::new(1, Span::from_us(20), Span::from_us(5), Scope::AllRanks, 1);
            let mut t = Time::ZERO;
            for _ in 0..10_000 {
                t = n.stretch(Rank(0), t, Span::from_us(50));
            }
            black_box(t)
        })
    });

    // Many-rank construction (the per-figure setup cost at paper scale).
    g.bench_function("ce_noise_new_16k_ranks", |b| {
        b.iter(|| {
            black_box(CeNoise::new(
                16_384,
                Span::from_secs(5544),
                Span::from_ms(133),
                Scope::AllRanks,
                7,
            ))
        })
    });

    // Fig. 2 signature synthesis (drives the fig2 regeneration bench).
    g.bench_function("signature_firmware_300s", |b| {
        let cfg = SignatureConfig::default();
        b.iter(|| {
            black_box(signature(
                SignatureKind::FirmwareEmca { threshold: 10 },
                &cfg,
            ))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_noise);
criterion_main!(benches);
