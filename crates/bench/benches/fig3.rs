//! Regeneration bench for Fig. 3 (single-process CE sweep).
//! Prints the reproduced series once at a reduced scale (REGEN_NODES /
//! REGEN_REPS env vars scale it up), then times the regeneration.

use cesim_bench::{bench_apps, regen_scale};
use cesim_core::figures::fig3;
use cesim_core::report::render_figure;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let mut cfg = regen_scale();
    cfg.apps = bench_apps();
    println!("\n=== Fig. 3 at {} nodes (reduced scale) ===", cfg.nodes);
    print!("{}", render_figure(&fig3(&cfg)));

    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("regenerate", |b| b.iter(|| black_box(fig3(&cfg))));
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
