//! Collective-expansion microbenchmarks: cost of materializing the
//! point-to-point trees at scale (this dominates schedule construction
//! for the fine-grained workloads).

use cesim_core::goal::builder::TagPool;
use cesim_core::goal::collectives::{
    allreduce_recursive_doubling, barrier_dissemination, bcast_binomial, reduce_binomial,
    CollectiveCosts,
};
use cesim_core::goal::{Rank, ScheduleBuilder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_expansion(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);
    for &n in &[256usize, 2048, 16_384] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("allreduce_rd", n), &n, |bch, &n| {
            bch.iter(|| {
                let mut b = ScheduleBuilder::new(n);
                let mut tags = TagPool::new();
                let entry: Vec<_> = (0..n).map(|r| b.join(Rank::from(r), &[])).collect();
                allreduce_recursive_doubling(
                    &mut b,
                    &mut tags,
                    8,
                    &CollectiveCosts::default(),
                    &entry,
                );
                black_box(b.build())
            })
        });
        g.bench_with_input(BenchmarkId::new("barrier", n), &n, |bch, &n| {
            bch.iter(|| {
                let mut b = ScheduleBuilder::new(n);
                let mut tags = TagPool::new();
                let entry: Vec<_> = (0..n).map(|r| b.join(Rank::from(r), &[])).collect();
                barrier_dissemination(&mut b, &mut tags, &entry);
                black_box(b.build())
            })
        });
        g.bench_with_input(BenchmarkId::new("bcast+reduce", n), &n, |bch, &n| {
            bch.iter(|| {
                let mut b = ScheduleBuilder::new(n);
                let mut tags = TagPool::new();
                let entry: Vec<_> = (0..n).map(|r| b.join(Rank::from(r), &[])).collect();
                let mid = bcast_binomial(&mut b, &mut tags, Rank(0), 1024, &entry);
                reduce_binomial(
                    &mut b,
                    &mut tags,
                    Rank(0),
                    1024,
                    &CollectiveCosts::default(),
                    &mid,
                );
                black_box(b.build())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_expansion);
criterion_main!(benches);
