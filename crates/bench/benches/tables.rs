//! Regeneration bench for Table I and Table II. Prints both tables once
//! (so the `cargo bench` log contains the reproduced artifacts), then
//! times their construction.

use cesim_core::model::SystemSpec;
use cesim_core::tables::{table1, table2};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    println!("\n=== Table I (workloads) ===\n{}", table1());
    println!("=== Table II (CE parameters) ===\n{}", table2());

    let mut g = c.benchmark_group("tables");
    g.bench_function("table1", |b| b.iter(|| black_box(table1())));
    g.bench_function("table2", |b| b.iter(|| black_box(table2())));
    g.bench_function("table2_mtbce_algebra", |b| {
        b.iter(|| {
            let total: f64 = SystemSpec::table2()
                .iter()
                .map(|s| s.mtbce_node().as_secs_f64())
                .sum();
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
