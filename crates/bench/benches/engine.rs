//! Engine microbenchmarks: event-loop throughput on the communication
//! patterns the study exercises.

#![allow(clippy::needless_range_loop)]

use cesim_core::engine::{simulate, NoNoise};
use cesim_core::goal::builder::TagPool;
use cesim_core::goal::collectives::{allreduce_recursive_doubling, CollectiveCosts};
use cesim_core::goal::{Rank, Schedule, ScheduleBuilder, Tag};
use cesim_core::model::{LogGopsParams, Span};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// Ring of eager messages: stresses matching and the event queue.
fn ring_schedule(n: usize, rounds: usize) -> Schedule {
    let mut b = ScheduleBuilder::new(n);
    let mut cur: Vec<_> = (0..n).map(|r| b.join(Rank::from(r), &[])).collect();
    for round in 0..rounds {
        let tag = Tag(round as u32);
        for r in 0..n {
            let rank = Rank::from(r);
            let right = Rank::from((r + 1) % n);
            let left = Rank::from((r + n - 1) % n);
            let s = b.send(rank, right, 64, tag, &[cur[r]]);
            let v = b.recv(rank, Some(left), 64, tag, &[cur[r]]);
            cur[r] = b.join(rank, &[s, v]);
        }
    }
    b.build()
}

/// Back-to-back allreduces: stresses the collective dependency trees.
fn allreduce_schedule(n: usize, count: usize) -> Schedule {
    let mut b = ScheduleBuilder::new(n);
    let mut tags = TagPool::new();
    let mut cur: Vec<_> = (0..n).map(|r| b.join(Rank::from(r), &[])).collect();
    for _ in 0..count {
        cur = allreduce_recursive_doubling(&mut b, &mut tags, 8, &CollectiveCosts::default(), &cur);
    }
    b.build()
}

/// Rendezvous-heavy neighbor exchange: stresses the RTS/CTS state machine.
fn rendezvous_schedule(n: usize, rounds: usize) -> Schedule {
    let mut b = ScheduleBuilder::new(n);
    let mut cur: Vec<_> = (0..n).map(|r| b.join(Rank::from(r), &[])).collect();
    for round in 0..rounds {
        let tag = Tag(round as u32);
        for r in 0..n {
            let rank = Rank::from(r);
            let peer = Rank::from(r ^ 1);
            if peer.idx() >= n {
                continue;
            }
            let s = b.send(rank, peer, 128 * 1024, tag, &[cur[r]]);
            let v = b.recv(rank, Some(peer), 128 * 1024, tag, &[cur[r]]);
            cur[r] = b.join(rank, &[s, v]);
        }
    }
    b.build()
}

fn bench_engine(c: &mut Criterion) {
    let params = LogGopsParams::xc40();
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);

    let ring = ring_schedule(64, 50);
    g.throughput(Throughput::Elements(ring.total_ops() as u64));
    g.bench_function("ring_64r_50rounds", |b| {
        b.iter(|| simulate(black_box(&ring), &params, &mut NoNoise).unwrap())
    });

    let ar = allreduce_schedule(128, 20);
    g.throughput(Throughput::Elements(ar.total_ops() as u64));
    g.bench_function("allreduce_128r_20x", |b| {
        b.iter(|| simulate(black_box(&ar), &params, &mut NoNoise).unwrap())
    });

    let rv = rendezvous_schedule(32, 40);
    g.throughput(Throughput::Elements(rv.total_ops() as u64));
    g.bench_function("rendezvous_32r_40rounds", |b| {
        b.iter(|| simulate(black_box(&rv), &params, &mut NoNoise).unwrap())
    });

    // Pure compute chains: the floor of per-op cost.
    let mut b = ScheduleBuilder::new(1);
    let mut prev = b.calc(Rank(0), Span::from_ns(1), &[]);
    for _ in 0..100_000 {
        prev = b.calc(Rank(0), Span::from_ns(1), &[prev]);
    }
    let chain = b.build();
    g.throughput(Throughput::Elements(chain.total_ops() as u64));
    g.bench_function("calc_chain_100k", |b| {
        b.iter(|| simulate(black_box(&chain), &params, &mut NoNoise).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
