//! Serial-vs-parallel sweep bench.
//!
//! Times the Fig. 4 regeneration at `--threads 1` and `--threads <cores>`
//! through the same code path, checks that the two produce **identical**
//! cells (slowdown, stddev, CE events — the deterministic per-point
//! seeding guarantee), and prints the measured speedup so `cargo bench`
//! logs record it alongside the timings.

use cesim_bench::{bench_apps, regen_scale};
use cesim_core::figures::{fig4, FigureData, ScaleConfig};
use cesim_core::report::figure_csv;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn scaled(threads: usize) -> ScaleConfig {
    let mut cfg = regen_scale();
    cfg.apps = bench_apps();
    // More replicas than the regen default: replica- and cell-level jobs
    // are what the parallel runner distributes.
    cfg.reps = cfg.reps.max(4);
    cfg.threads = threads;
    cfg
}

fn time_once(f: impl FnOnce() -> FigureData) -> (FigureData, f64) {
    let t0 = Instant::now();
    let fig = f();
    (fig, t0.elapsed().as_secs_f64())
}

fn bench_sweep(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // One verification pass outside the timing loop: parallel output must
    // be byte-identical to serial output.
    let (serial, t_serial) = time_once(|| fig4(&scaled(1)));
    let (parallel, t_parallel) = time_once(|| fig4(&scaled(cores)));
    assert_eq!(
        figure_csv(&serial),
        figure_csv(&parallel),
        "parallel sweep output diverged from serial"
    );
    println!(
        "\n=== fig4 sweep: {:.2}s serial, {:.2}s on {cores} threads \
         ({:.2}x speedup, identical output) ===",
        t_serial,
        t_parallel,
        t_serial / t_parallel.max(1e-9)
    );

    let mut g = c.benchmark_group("sweep");
    g.sample_size(5);
    for threads in [1usize, cores] {
        let cfg = scaled(threads);
        g.bench_with_input(BenchmarkId::new("fig4", threads), &cfg, |b, cfg| {
            b.iter(|| black_box(fig4(cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
