//! # cesim-json
//!
//! A minimal, dependency-free JSON parser **and serializer**.
//!
//! The parser originated in `cesim-obs` (where it validates exported
//! Chrome traces); it was factored out here so the serving layer
//! (`cesim-serve`) and the provenance JSONL writer can share one
//! implementation. Supports the full JSON grammar; numbers are parsed as
//! `f64` (sufficient for trace timestamps and experiment statistics).
//!
//! Serialization is **canonical**: object keys are emitted in sorted
//! order (objects are [`BTreeMap`]s), no insignificant whitespace is
//! produced, and `f64` values print via Rust's shortest-round-trip
//! `Display` — so `parse(s).to_json()` is a stable canonical form of
//! `s`, which the serving layer uses as a cache key
//! ([`canonicalize`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keys are sorted (BTreeMap); duplicate keys keep the
    /// last value, as in every mainstream parser.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { b: bytes, i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Build an object from `(key, value)` pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Object member lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The object's members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if this is a number with an
    /// exact `u64` value (rejects fractions, negatives, and magnitudes
    /// beyond 2^53 where `f64` loses integer precision).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize compactly: sorted object keys, no whitespace, shortest
    /// round-trip float form. Non-finite numbers (which JSON cannot
    /// represent) serialize as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize into an existing buffer (see [`JsonValue::to_json`]).
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(n) => write_f64(*n, out),
            JsonValue::String(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Number(n)
    }
}

macro_rules! int_into_json {
    ($($t:ty),*) => {$(
        impl From<$t> for JsonValue {
            fn from(n: $t) -> Self {
                JsonValue::Number(n as f64)
            }
        }
    )*};
}
int_into_json!(u8, u16, u32, u64, usize, i32, i64);

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

/// Reduce a JSON document to its canonical form: parse and re-serialize
/// with sorted object keys and no whitespace. Two documents that differ
/// only in member order or insignificant whitespace canonicalize to the
/// same string — the property the serving layer's response cache relies
/// on for its keys.
pub fn canonicalize(text: &str) -> Result<String, JsonError> {
    Ok(JsonValue::parse(text)?.to_json())
}

/// Write a JSON string literal (quotes plus RFC 8259 escapes) for `s`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; degrade to null rather than emit an
        // unparsable document.
        out.push_str("null");
        return;
    }
    // Rust's Display for f64 is the shortest string that round-trips,
    // and its `1e300`-style exponent form is valid JSON.
    let mut s = format!("{n}");
    if s == "-0" {
        s = "0".into(); // canonical: -0.0 and 0.0 are the same JSON number
    }
    out.push_str(&s);
}

/// A parse failure with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError {
            offset: self.i,
            reason: reason.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Object(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Object(m));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Array(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Array(v));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.i += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ if c < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-scan the UTF-8 sequence starting at c.
                    let start = self.i - 1;
                    let len = utf8_len(c).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + len;
                    if end > self.b.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let frag = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(frag);
                    self.i = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            self.i += 1;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse("-12.5e2").unwrap(),
            JsonValue::Number(-1250.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\nb\\u0041\"").unwrap(),
            JsonValue::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, {"b": "x"}, null], "c": false}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(a[2], JsonValue::Null);
        assert_eq!(v.get("c"), Some(&JsonValue::Bool(false)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("123 junk").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_roundtrip() {
        let v = JsonValue::parse("\"\\ud83d\\ude00 é\"").unwrap();
        assert_eq!(v.as_str(), Some("😀 é"));
    }

    #[test]
    fn serializes_compact_sorted() {
        let v = JsonValue::object([
            ("zeta", JsonValue::from(1u32)),
            ("alpha", JsonValue::from(true)),
            (
                "mid",
                JsonValue::Array(vec![JsonValue::Null, JsonValue::from("x")]),
            ),
        ]);
        assert_eq!(v.to_json(), r#"{"alpha":true,"mid":[null,"x"],"zeta":1}"#);
    }

    #[test]
    fn serializes_escapes() {
        let v = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.to_json(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        // And parses back to the same string.
        assert_eq!(JsonValue::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Number(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_json(), "null");
        assert_eq!(JsonValue::Number(-0.0).to_json(), "0");
    }

    #[test]
    fn integer_accessor_bounds() {
        assert_eq!(JsonValue::Number(42.0).as_u64(), Some(42));
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Number(1.5).as_u64(), None);
        assert_eq!(JsonValue::Number(1e300).as_u64(), None);
        assert_eq!(JsonValue::from("42").as_u64(), None);
    }

    #[test]
    fn canonicalize_is_order_and_whitespace_insensitive() {
        let a = r#"{ "b" : 1, "a": [ 1 , 2 ],
                     "c": {"y": null, "x": "s"} }"#;
        let b = r#"{"c":{"x":"s","y":null},"a":[1,2],"b":1}"#;
        let ca = canonicalize(a).unwrap();
        let cb = canonicalize(b).unwrap();
        assert_eq!(ca, cb);
        assert_eq!(ca, r#"{"a":[1,2],"b":1,"c":{"x":"s","y":null}}"#);
        // Canonical form is a fixed point.
        assert_eq!(canonicalize(&ca).unwrap(), ca);
        assert!(canonicalize("{nope}").is_err());
    }

    /// Pseudo-random document generator for the round-trip property:
    /// depth-bounded, drawing strings from a set that covers escapes,
    /// unicode, and plain ASCII.
    fn arbitrary(state: &mut u64, depth: u32) -> JsonValue {
        fn next(state: &mut u64) -> u64 {
            // splitmix64 step; good enough for structural fuzz.
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        const STRINGS: &[&str] = &[
            "",
            "plain",
            "with \"quotes\" and \\backslash",
            "newline\nand\ttab",
            "unicode 😀 é ßpan",
            "ctrl\u{1}\u{1f}",
            "key",
        ];
        let choice = next(state) % if depth >= 3 { 4 } else { 6 };
        match choice {
            0 => JsonValue::Null,
            1 => JsonValue::Bool(next(state).is_multiple_of(2)),
            2 => {
                // Mix integers, fractions, and wide-exponent values.
                let raw = next(state);
                let n = match raw % 4 {
                    0 => (raw % 10_000) as f64,
                    1 => -((raw % 1_000) as f64) / 8.0,
                    2 => f64::from_bits(raw).abs() % 1e12,
                    _ => (raw % 1_000_000) as f64 * 1e-9,
                };
                JsonValue::Number(if n.is_finite() { n } else { 0.0 })
            }
            3 => JsonValue::String(STRINGS[(next(state) % STRINGS.len() as u64) as usize].into()),
            4 => {
                let len = (next(state) % 4) as usize;
                JsonValue::Array((0..len).map(|_| arbitrary(state, depth + 1)).collect())
            }
            _ => {
                let len = (next(state) % 4) as usize;
                JsonValue::object((0..len).map(|i| {
                    (
                        format!("k{}_{i}", next(state) % 8),
                        arbitrary(state, depth + 1),
                    )
                }))
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn serialize_parse_roundtrip(seed in 0u64..u64::MAX) {
            let mut state = seed;
            let v = arbitrary(&mut state, 0);
            let text = v.to_json();
            let back = JsonValue::parse(&text)
                .map_err(|e| TestCaseError(format!("reparse failed: {e} on {text}")))?;
            prop_assert_eq!(&back, &v);
            // Serialization is already canonical: a second pass is identical.
            prop_assert_eq!(back.to_json(), text);
        }
    }
}
