//! Stable seed derivation for sweep points and replicas.
//!
//! The figure sweeps run their cells in parallel, so per-cell RNG seeds
//! must not depend on *execution* order (the old scheme seeded cell `k`
//! with `base + k`, where `k` was the running length of the output vector
//! — an artifact of the serial loop). Instead, every cell derives its seed
//! from stable coordinates:
//!
//! ```text
//! point_seed = mix(mix(mix(base, fnv1a(figure_id)), app_index), spec_index)
//! rep_seed   = mix(point_seed, rep)
//! ```
//!
//! where `mix` folds a value into a [splitmix64] state. Properties this
//! buys:
//!
//! * **schedule independence** — a cell's noise stream is a pure function
//!   of `(base seed, figure, app index, spec index, rep)`, identical under
//!   `--threads 1` and `--threads N`;
//! * **figure independence** — the same `(app, spec)` coordinates in two
//!   different figures get unrelated streams (the figure id is hashed in);
//! * **replica independence** — replicas of one cell are decorrelated by a
//!   full 64-bit mix rather than the old `seed + rep` increment, which
//!   placed neighboring cells' replicas on overlapping streams.
//!
//! [splitmix64]: cesim_model::rng::splitmix64

use cesim_model::rng::splitmix64;

/// 64-bit FNV-1a over a byte string — stable across platforms/runs, used
/// to fold figure identifiers into the seed state.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fold `value` into `state` and advance through one splitmix64 round.
///
/// The golden-ratio multiply before the round separates nearby values
/// (0, 1, 2, …) into distant states, and splitmix64's finalizer then
/// provides full avalanche.
#[inline]
pub fn mix(state: u64, value: u64) -> u64 {
    let mut s = state ^ value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut s)
}

/// The seed of one sweep point: `(figure, app index, spec index)` under a
/// base seed. Stable under reordering, thread count, and sweep shape.
pub fn point_seed(base: u64, figure: &str, app_index: usize, spec_index: usize) -> u64 {
    mix(
        mix(mix(base, fnv1a(figure.as_bytes())), app_index as u64),
        spec_index as u64,
    )
}

/// The seed of one perturbed replica within a point.
pub fn rep_seed(point: u64, rep: u32) -> u64 {
    mix(point, rep as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fnv1a_known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn point_seeds_are_distinct_across_coordinates() {
        let mut seen = HashSet::new();
        for fig in ["fig3", "fig4", "fig5", "fig6", "fig7"] {
            for ai in 0..9 {
                for si in 0..32 {
                    assert!(
                        seen.insert(point_seed(7, fig, ai, si)),
                        "collision at {fig}/{ai}/{si}"
                    );
                }
            }
        }
    }

    #[test]
    fn rep_seeds_are_distinct_and_stable() {
        let p = point_seed(0xCE11, "fig4", 2, 5);
        let reps: Vec<u64> = (0..16).map(|r| rep_seed(p, r)).collect();
        let uniq: HashSet<u64> = reps.iter().copied().collect();
        assert_eq!(uniq.len(), reps.len());
        // Pure function of its inputs.
        assert_eq!(
            rep_seed(p, 3),
            rep_seed(point_seed(0xCE11, "fig4", 2, 5), 3)
        );
    }

    #[test]
    fn base_seed_changes_everything() {
        assert_ne!(point_seed(1, "fig4", 0, 0), point_seed(2, "fig4", 0, 0),);
        assert_ne!(point_seed(1, "fig4", 0, 0), point_seed(1, "fig5", 0, 0),);
    }
}
