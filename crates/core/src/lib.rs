//! # cesim-core
//!
//! The experiment layer of the DRAM correctable-error logging study, and
//! the crate downstream users should depend on: it re-exports the whole
//! stack (`cesim-model`, `cesim-goal`, `cesim-engine`, `cesim-noise`,
//! `cesim-workloads`) and adds:
//!
//! * [`experiment`] — a single measurement cell: workload × scale ×
//!   logging mode × MTBCE × injection scope, run against a noise-free
//!   baseline with replicated perturbed runs ([`experiment::run`]).
//! * [`figures`] — the sweeps that regenerate every evaluation figure of
//!   the paper (Figs. 3–7) plus Fig. 2 via `cesim-noise`, each behind a
//!   [`figures::ScaleConfig`] that defaults to a laptop-tractable scale
//!   and can be dialed up to the paper's 16,384 nodes.
//! * [`report`] — ASCII-table and CSV rendering of figure data.
//! * [`tables`] — Table I (workloads) and Table II (systems).
//! * [`cache`] — compiled-schedule and full-response LRUs shared by the
//!   serving daemon (`cesim-serve`).
//! * [`service`] — JSON request → experiment mapping and response
//!   rendering for `cesim serve`'s `/v1/simulate` and `/v1/sweep`.
//!
//! ## Quick start
//!
//! ```
//! use cesim_core::experiment::{Experiment, run};
//! use cesim_core::model::{LoggingMode, Span};
//! use cesim_core::noise::Scope;
//! use cesim_core::workloads::AppId;
//!
//! let exp = Experiment::new(AppId::Lulesh, 64)
//!     .mode(LoggingMode::Firmware)
//!     .mtbce(Span::from_secs(5))
//!     .scope(Scope::AllRanks)
//!     .reps(2)
//!     .steps(10);
//! let out = run(&exp).unwrap();
//! println!("slowdown: {:.2}%", out.mean_slowdown_pct().unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod experiment;
pub mod figures;
pub mod report;
pub mod seed;
pub mod service;
pub mod tables;

/// Re-export: foundation types (time, LogGOPS params, systems, RNG).
pub use cesim_model as model;

/// Re-export: schedule IR and collectives.
pub use cesim_goal as goal;

/// Re-export: the LogGOPS discrete-event engine.
pub use cesim_engine as engine;

/// Re-export: CE noise, selfish/EINJ substrate, Fig. 2 signatures.
pub use cesim_noise as noise;

/// Re-export: the nine workload skeletons.
pub use cesim_workloads as workloads;

/// Re-export: tracing, metrics, and Chrome-trace export.
pub use cesim_obs as obs;

pub use cache::{CompiledEntry, ResponseCache, ScheduleCache};
pub use experiment::{CellObs, Experiment, Outcome};
pub use figures::{FigureData, ScaleConfig};
pub use service::{
    handle_simulate, handle_sweep, ServiceError, ServiceState, SimulateRequest, SweepRequest,
};
