//! Regeneration of every evaluation figure (Figs. 3–7).
//!
//! Each `figN` function sweeps the same grid as the corresponding figure
//! in the paper and returns a [`FigureData`] of slowdown cells. The
//! [`ScaleConfig`] controls cost:
//!
//! * `nodes` — simulated node count. The default (256) is laptop-scale;
//!   [`ScaleConfig::paper`] selects the full 16,384/8,192/4,096 node
//!   counts of Table II.
//! * `preserve_machine_rate` — when simulating fewer nodes than the
//!   paper's system, scale the per-node MTBCE down by the same factor so
//!   the **machine-wide** CE rate (events/second across the whole job) is
//!   preserved. The overheads the study measures are driven by the
//!   machine-wide rate × per-event cost, so this keeps the figure shapes
//!   intact at a fraction of the cost (see EXPERIMENTS.md for the
//!   validation of this claim). Applies only to the all-node figures;
//!   Fig. 3's single-process study needs no scaling.
//! * `steps_scale`, `reps`, `seed` — statistical effort.

use crate::experiment::{run_against_baseline_compiled_telem, CellObs, Experiment};
use crate::seed::point_seed;
use cesim_engine::{simulate_compiled, CompiledSchedule, NoNoise, ShardTelemetry};
use cesim_goal::Rank;
use cesim_model::{LoggingMode, Span, SystemSpec};
use cesim_noise::Scope;
use cesim_obs::telemetry::Span as ProfSpan;
use cesim_workloads::{natural_ranks, AppId, WorkloadConfig};
use rayon::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Cost/scale knobs shared by all figure sweeps.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Simulated nodes (capped by each system's Table II node count).
    pub nodes: usize,
    /// Perturbed replicas per cell.
    pub reps: u32,
    /// Workload step-count scale.
    pub steps_scale: f64,
    /// Preserve the machine-wide CE rate when simulating fewer nodes than
    /// the target system (all-node figures only).
    pub preserve_machine_rate: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Workloads to include (default: all nine).
    pub apps: Vec<AppId>,
    /// Print per-cell progress to stderr.
    pub progress: bool,
    /// Print sweep-level progress (cells completed / total, plus an ETA
    /// extrapolated from completed-cell wall time) to stderr.
    pub progress_eta: bool,
    /// Record the first [`ScaleConfig::observe_replicas`] replicas of
    /// every cell and attach critical-path and detour-provenance
    /// summaries ([`CellObs`]) to the cell. Never alters results or
    /// determinism.
    pub observe: bool,
    /// How many leading replicas to record per cell when
    /// [`ScaleConfig::observe`] is set (the CSV layer reports mean and
    /// stddev across them).
    pub observe_replicas: usize,
    /// Worker threads for the sweep: `0` uses every core (or
    /// `RAYON_NUM_THREADS`), `1` runs serially. Results are identical for
    /// every value — cells are seeded by position, not execution order.
    pub threads: usize,
    /// Intra-run event-loop shards per simulation (`1` = serial engine).
    /// Values above 1 split each run across lookahead-windowed shards
    /// (`cesim_engine::shard`) with byte-identical output; the sweep's
    /// worker-thread budget is divided by this factor so `cells × shards`
    /// never oversubscribes the host (see [`ScaleConfig::scoped`]).
    pub shards: usize,
    /// Optional shard-health telemetry sink: every sharded run in the
    /// sweep accumulates per-shard busy/stall/barrier counters into it
    /// (`--shard-health` / `--profile` on the CLI). Pure observer —
    /// figure data is byte-identical with or without it.
    pub shard_telemetry: Option<Arc<ShardTelemetry>>,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            nodes: 256,
            reps: 2,
            steps_scale: 1.0,
            preserve_machine_rate: true,
            seed: 0xF16,
            apps: AppId::all().to_vec(),
            progress: false,
            progress_eta: false,
            observe: false,
            observe_replicas: 1,
            threads: 0,
            shards: 1,
            shard_telemetry: None,
        }
    }
}

impl ScaleConfig {
    /// The paper's full scale: Table II node counts, 8 reps, full step
    /// counts, no rate rescaling. Hours of CPU time at 16,384 nodes.
    pub fn paper() -> Self {
        ScaleConfig {
            nodes: 16_384,
            reps: 8,
            steps_scale: 1.0,
            preserve_machine_rate: false,
            ..ScaleConfig::default()
        }
    }

    /// A very small smoke-test scale for CI.
    pub fn smoke() -> Self {
        ScaleConfig {
            nodes: 32,
            reps: 1,
            steps_scale: 0.05,
            ..ScaleConfig::default()
        }
    }

    fn workload_cfg(&self, app_seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            steps_scale: self.steps_scale,
            seed: self.seed ^ app_seed,
            ..WorkloadConfig::default()
        }
    }

    /// Effective per-node MTBCE for a system simulated at `sim_nodes`
    /// instead of its full `paper_nodes`.
    pub fn effective_mtbce(&self, mtbce: Span, sim_nodes: usize, paper_nodes: usize) -> Span {
        if self.preserve_machine_rate && sim_nodes < paper_nodes {
            mtbce.mul_f64(sim_nodes as f64 / paper_nodes as f64)
        } else {
            mtbce
        }
    }

    /// Sweep worker threads after reserving capacity for intra-run
    /// shards: with `shards > 1` the ambient (or requested) thread budget
    /// is divided by the shard count, floored at one worker, so a sweep
    /// of sharded runs uses roughly the same number of OS threads as an
    /// unsharded one.
    pub fn effective_threads(&self) -> usize {
        if self.shards <= 1 {
            return self.threads;
        }
        let base = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        (base / self.shards).max(1)
    }

    /// Run `f` under this config's thread count (see [`with_threads`]),
    /// shard-adjusted per [`ScaleConfig::effective_threads`].
    pub fn scoped<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        with_threads(self.effective_threads(), f)
    }
}

/// Run `f` under an explicit worker-thread count: `0` leaves the ambient
/// pool (all cores, or `RAYON_NUM_THREADS`), anything else installs a
/// pool of exactly that size for the duration — `1` is the serial path
/// through the same code.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    if threads == 0 {
        f()
    } else {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool construction cannot fail")
            .install(f)
    }
}

/// One bar/point of a figure.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Workload.
    pub app: AppId,
    /// X-axis group (system name, MTBCE, or per-event duration).
    pub group: String,
    /// Logging mode.
    pub mode: LoggingMode,
    /// Effective per-node MTBCE simulated.
    pub mtbce: Span,
    /// Mean slowdown vs baseline, percent; `None` = no forward progress.
    pub slowdown_pct: Option<f64>,
    /// Sample standard deviation across replicas, when ≥ 2 replicas ran.
    pub stddev_pct: Option<f64>,
    /// Baseline completion time, seconds.
    pub baseline_secs: f64,
    /// Mean CE events injected per replica.
    pub ce_events: f64,
    /// Ranks simulated.
    pub ranks: usize,
    /// Critical-path and detour-provenance summaries of the observed
    /// replicas, when the sweep ran with [`ScaleConfig::observe`]
    /// enabled.
    pub obs: Option<CellObs>,
}

/// All cells of one regenerated figure.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Figure identifier ("fig3" … "fig7").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Cells in sweep order.
    pub cells: Vec<Cell>,
}

impl FigureData {
    /// Distinct group labels in first-appearance order.
    pub fn groups(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for c in &self.cells {
            if !seen.contains(&c.group) {
                seen.push(c.group.clone());
            }
        }
        seen
    }

    /// Cells for one (group, mode) pair, keyed by app.
    pub fn series(&self, group: &str, mode: LoggingMode) -> BTreeMap<AppId, &Cell> {
        self.cells
            .iter()
            .filter(|c| c.group == group && c.mode == mode)
            .map(|c| (c.app, c))
            .collect()
    }

    /// Maximum finite slowdown in the figure.
    pub fn max_slowdown(&self) -> f64 {
        self.cells
            .iter()
            .filter_map(|c| c.slowdown_pct)
            .fold(0.0, f64::max)
    }
}

/// One cell request: `(group label, mode, per-node mtbce, sim nodes)`.
#[derive(Clone, Debug)]
struct CellSpec {
    group: String,
    mode: LoggingMode,
    mtbce: Span,
    nodes: usize,
}

/// Run a figure sweep as a list of self-contained cell jobs.
///
/// Two parallel stages, both executed under the config's thread count
/// (see [`ScaleConfig::scoped`]):
///
/// 1. every distinct `(app, node count)` scale builds its schedule,
///    **compiles it once** into an [`Arc`]-shared
///    [`CompiledSchedule`], and simulates the noise-free baseline;
/// 2. every `(app, spec)` cell runs its perturbed replicas against the
///    shared compiled schedule and baseline — workers clone the `Arc`,
///    not the schedule, and reuse per-thread run scratch across
///    replicas.
///
/// Cells are collected **in job-index order** (app-major, then spec
/// order), and each cell's RNG stream is derived from its stable
/// coordinates via [`point_seed`] — never from execution order — so the
/// output is byte-identical for any thread count.
fn run_figure(
    id: &str,
    title: &str,
    cfg: &ScaleConfig,
    scope_for: impl Fn(usize) -> Scope + Sync,
    specs: &[CellSpec],
) -> FigureData {
    // Capture the caller's request-trace context (if the serve daemon
    // installed one) before entering the pool scope: `cfg.scoped` may
    // hop to a pool thread, and the rayon cell jobs below run on
    // arbitrary workers. Each job re-installs the context so its spans
    // land in the request's trace. Observational only — cell results
    // are seeded from stable coordinates and byte-identical either way.
    let trace = cesim_obs::tracectx::current();
    let trace = trace.as_ref();
    let cells = cfg.scoped(|| {
        // Stage 1: distinct (app index, node count) scales.
        let mut scales: Vec<(usize, usize)> = Vec::new();
        for ai in 0..cfg.apps.len() {
            for spec in specs {
                if !scales.contains(&(ai, spec.nodes)) {
                    scales.push((ai, spec.nodes));
                }
            }
        }
        let built: Vec<(usize, Arc<CompiledSchedule>, cesim_model::Time)> = scales
            .par_iter()
            .map(|&(ai, nodes)| {
                let _trace_guard = trace.map(|t| t.install());
                let app = cfg.apps[ai];
                let ranks = natural_ranks(app, nodes);
                let sched = {
                    let _s = ProfSpan::enter("build");
                    cesim_workloads::build(app, ranks, &cfg.workload_cfg(ai as u64))
                };
                let cs = {
                    let _s = ProfSpan::enter("compile");
                    Arc::new(CompiledSchedule::compile(&sched))
                };
                let base = {
                    let _s = ProfSpan::enter("baseline");
                    simulate_compiled(&cs, &cesim_model::LogGopsParams::xc40(), &mut NoNoise)
                        .expect("workload schedules are deadlock-free")
                };
                (ranks, cs, base.finish)
            })
            .collect();
        let scale_index: HashMap<(usize, usize), usize> = scales
            .iter()
            .enumerate()
            .map(|(k, &key)| (key, k))
            .collect();

        // Stage 2: one job per (app, spec) cell, reassembled in job order.
        let jobs: Vec<(usize, usize)> = (0..cfg.apps.len())
            .flat_map(|ai| (0..specs.len()).map(move |si| (ai, si)))
            .collect();
        let total_jobs = jobs.len();
        let done = std::sync::atomic::AtomicUsize::new(0);
        // Cumulative engine-throughput counters across completed cells
        // (stderr reporting only — never part of the figure data).
        let events_done = std::sync::atomic::AtomicU64::new(0);
        let sim_ps_done = std::sync::atomic::AtomicU64::new(0);
        let sweep_start = std::time::Instant::now();

        // Sharded sweeps complete cells slowly (few big runs instead of
        // many small ones), so per-cell progress lines can go quiet for
        // minutes. Report window-based progress from the engine's global
        // shard counters instead: expected total simulated time is known
        // after stage 1 (Σ baseline × reps per job), so an ETA can be
        // derived from simulated-time throughput mid-run.
        let ticker_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let ticker = if cfg.shards > 1 && (cfg.progress || cfg.progress_eta) {
            let expected_ps: u64 = jobs
                .iter()
                .map(|&(ai, si)| {
                    let base = built[scale_index[&(ai, specs[si].nodes)]].2;
                    base.as_ps().saturating_mul(cfg.reps as u64)
                })
                .sum();
            let stop = Arc::clone(&ticker_stop);
            let id = id.to_string();
            let start = cesim_engine::shard_globals();
            Some(std::thread::spawn(move || loop {
                for _ in 0..20 {
                    if stop.load(std::sync::atomic::Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
                let g = cesim_engine::shard_globals();
                let sim_ps = g.sim_ps_advanced.saturating_sub(start.sim_ps_advanced);
                let windows = g.windows.saturating_sub(start.windows);
                let events = g.events.saturating_sub(start.events);
                let elapsed = sweep_start.elapsed().as_secs_f64();
                let sim_s = sim_ps as f64 / 1e12;
                let expected_s = expected_ps as f64 / 1e12;
                let pct = if expected_ps > 0 {
                    (sim_s / expected_s * 100.0).min(100.0)
                } else {
                    0.0
                };
                let eta = if sim_ps > 0 && expected_ps > sim_ps {
                    elapsed * (expected_ps - sim_ps) as f64 / sim_ps as f64
                } else {
                    0.0
                };
                eprintln!(
                    "[{id}] shard progress: {windows} windows, {events} events, \
                     {sim_s:.1}/{expected_s:.1} sim-s ({pct:.0}%, ETA {eta:.0}s)"
                );
            }))
        } else {
            None
        };

        let telem = cfg.shard_telemetry.as_deref();
        let cells: Vec<Cell> = jobs
            .par_iter()
            .map(|&(ai, si)| {
                let app = cfg.apps[ai];
                let spec = &specs[si];
                let _trace_guard = trace.map(|t| t.install());
                let _cell_span = trace.and_then(|_| {
                    cesim_obs::tracectx::begin_dyn(format!(
                        "cell {app} {} {}",
                        spec.group,
                        spec.mode.short_label()
                    ))
                });
                let (ranks, cs, baseline) = &built[scale_index[&(ai, spec.nodes)]];
                let exp = Experiment {
                    app,
                    nodes: spec.nodes,
                    mode: spec.mode,
                    mtbce: spec.mtbce,
                    scope: scope_for(*ranks),
                    reps: cfg.reps,
                    seed: point_seed(cfg.seed, id, ai, si),
                    params: cesim_model::LogGopsParams::xc40(),
                    workload: cfg.workload_cfg(ai as u64),
                    shards: cfg.shards,
                };
                let observe_replicas = if cfg.observe {
                    cfg.observe_replicas.max(1)
                } else {
                    0
                };
                let out = {
                    let _s = ProfSpan::enter("cell_run");
                    run_against_baseline_compiled_telem(
                        &exp,
                        *ranks,
                        cs,
                        *baseline,
                        observe_replicas,
                        telem,
                    )
                    .expect("workload schedules are deadlock-free")
                };
                let _agg = ProfSpan::enter("cell_aggregate");
                if cfg.progress || cfg.progress_eta {
                    use std::sync::atomic::Ordering::Relaxed;
                    let cell_events: u64 = out.runs.iter().map(|r| r.events).sum();
                    let cell_sim_ps: u64 = out.runs.iter().map(|r| r.finish.as_ps()).sum();
                    let events = events_done.fetch_add(cell_events, Relaxed) + cell_events;
                    let sim_ps = sim_ps_done.fetch_add(cell_sim_ps, Relaxed) + cell_sim_ps;
                    let elapsed = sweep_start.elapsed().as_secs_f64();
                    // Engine throughput over the sweep so far: events/sec
                    // of wall time, and simulated seconds per wall second.
                    let ev_rate = events as f64 / elapsed.max(1e-9);
                    let sim_rate = sim_ps as f64 / 1e12 / elapsed.max(1e-9);
                    if cfg.progress {
                        eprintln!(
                            "[{id}] {app} {} {}: {} [{ev_rate:.0} events/s, {sim_rate:.1} sim-s/s]",
                            spec.group,
                            spec.mode.short_label(),
                            out.mean_slowdown_pct()
                                .map(|s| format!("{s:.2}%"))
                                .unwrap_or_else(|| "no-progress".into())
                        );
                    }
                    if cfg.progress_eta {
                        let d = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                        let eta = elapsed / d as f64 * (total_jobs - d) as f64;
                        eprintln!(
                            "[{id}] {d}/{total_jobs} cells ({elapsed:.1}s elapsed, ETA {eta:.1}s, \
                             {ev_rate:.0} events/s, {sim_rate:.1} sim-s/s)"
                        );
                    }
                }
                Cell {
                    app,
                    group: spec.group.clone(),
                    mode: spec.mode,
                    mtbce: spec.mtbce,
                    slowdown_pct: out.mean_slowdown_pct(),
                    stddev_pct: out.slowdown_stddev_pct(),
                    baseline_secs: out.baseline.as_secs_f64(),
                    ce_events: out.mean_ce_events(),
                    ranks: *ranks,
                    obs: out.obs,
                }
            })
            .collect();
        ticker_stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(t) = ticker {
            let _ = t.join();
        }
        cells
    });
    FigureData {
        id: id.into(),
        title: title.into(),
        cells,
    }
}

/// The MTBCE sweep of Fig. 3 (single process experiencing CEs).
pub fn fig3_mtbce_points() -> Vec<Span> {
    vec![
        Span::from_ms(1),
        Span::from_ms(10),
        Span::from_ms(100),
        Span::from_ms(200),
        Span::from_secs(1),
        Span::from_secs(10),
        Span::from_secs(100),
    ]
}

/// **Fig. 3** — performance impact of *one process* experiencing CEs, as
/// a function of MTBCE, for the three logging overheads.
pub fn fig3(cfg: &ScaleConfig) -> FigureData {
    let mut specs = Vec::new();
    for mtbce in fig3_mtbce_points() {
        for mode in LoggingMode::all() {
            specs.push(CellSpec {
                group: format!("MTBCE={mtbce}"),
                mode,
                mtbce,
                nodes: cfg.nodes,
            });
        }
    }
    run_figure(
        "fig3",
        "Single-process CE impact vs MTBCE (Fig. 3)",
        cfg,
        |_ranks| Scope::SingleRank(Rank(0)),
        &specs,
    )
}

/// **Fig. 4** — CE impact on the existing systems Cielo, Trinity and
/// Summit (Table II rates).
pub fn fig4(cfg: &ScaleConfig) -> FigureData {
    let mut specs = Vec::new();
    for sys in SystemSpec::fig4_systems() {
        let paper_nodes = sys.simulated_nodes.unwrap() as usize;
        let nodes = cfg.nodes.min(paper_nodes);
        let mtbce = cfg.effective_mtbce(sys.mtbce_node(), nodes, paper_nodes);
        for mode in LoggingMode::all() {
            specs.push(CellSpec {
                group: sys.name.to_string(),
                mode,
                mtbce,
                nodes,
            });
        }
    }
    run_figure(
        "fig4",
        "CE impact on existing systems (Fig. 4)",
        cfg,
        |_| Scope::AllRanks,
        &specs,
    )
}

/// **Fig. 5** — CE impact on the five hypothetical exascale systems.
pub fn fig5(cfg: &ScaleConfig) -> FigureData {
    let mut specs = Vec::new();
    for sys in SystemSpec::fig5_systems() {
        let paper_nodes = sys.simulated_nodes.unwrap() as usize;
        let nodes = cfg.nodes.min(paper_nodes);
        let mtbce = cfg.effective_mtbce(sys.mtbce_node(), nodes, paper_nodes);
        for mode in LoggingMode::all() {
            specs.push(CellSpec {
                group: sys.name.to_string(),
                mode,
                mtbce,
                nodes,
            });
        }
    }
    run_figure(
        "fig5",
        "CE impact on exascale straw-man systems (Fig. 5)",
        cfg,
        |_| Scope::AllRanks,
        &specs,
    )
}

/// **Fig. 6** — extreme MTBCE study locating where software/OS reporting
/// starts to hurt (36 s / 3.6 s / ~1 s per node).
pub fn fig6(cfg: &ScaleConfig) -> FigureData {
    let paper_nodes = 16_384usize;
    let nodes = cfg.nodes.min(paper_nodes);
    let mut specs = Vec::new();
    for mtbce in [
        Span::from_secs(36),
        Span::from_secs_f64(3.6),
        Span::from_secs(1),
    ] {
        let eff = cfg.effective_mtbce(mtbce, nodes, paper_nodes);
        for mode in LoggingMode::all() {
            specs.push(CellSpec {
                group: format!("MTBCE={mtbce}"),
                mode,
                mtbce: eff,
                nodes,
            });
        }
    }
    run_figure(
        "fig6",
        "Extreme CE rates: where software reporting hurts (Fig. 6)",
        cfg,
        |_| Scope::AllRanks,
        &specs,
    )
}

/// The per-event duration sweep of Fig. 7.
pub fn fig7_duration_points() -> Vec<Span> {
    vec![
        Span::from_ns(150),
        Span::from_us(1),
        Span::from_us(10),
        Span::from_us(100),
        Span::from_us(775),
        Span::from_ms(7),
        Span::from_ms(133),
    ]
}

/// **Fig. 7** — reporting-duration sweep at `MTBCE = 720 s` and
/// `MTBCE = 0.2 s`, per-event cost from 150 ns to 133 ms.
pub fn fig7(cfg: &ScaleConfig) -> FigureData {
    let paper_nodes = 16_384usize;
    let nodes = cfg.nodes.min(paper_nodes);
    let mut specs = Vec::new();
    for mtbce in [Span::from_secs(720), Span::from_ms(200)] {
        let eff = cfg.effective_mtbce(mtbce, nodes, paper_nodes);
        for dur in fig7_duration_points() {
            specs.push(CellSpec {
                group: format!("MTBCE={mtbce} d={dur}"),
                mode: LoggingMode::Custom(dur),
                mtbce: eff,
                nodes,
            });
        }
    }
    run_figure(
        "fig7",
        "Per-event reporting-duration sweep (Fig. 7)",
        cfg,
        |_| Scope::AllRanks,
        &specs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleConfig {
        ScaleConfig {
            nodes: 16,
            reps: 1,
            steps_scale: 0.05,
            apps: vec![AppId::Lulesh, AppId::LammpsLj],
            ..ScaleConfig::default()
        }
    }

    #[test]
    fn effective_mtbce_scaling() {
        let cfg = ScaleConfig::default();
        let m = Span::from_secs(1_000);
        let eff = cfg.effective_mtbce(m, 256, 16_384);
        assert_eq!(eff, m.mul_f64(256.0 / 16_384.0));
        assert_eq!(cfg.effective_mtbce(m, 16_384, 16_384), m);
        let paper = ScaleConfig::paper();
        assert_eq!(paper.effective_mtbce(m, 256, 16_384), m);
    }

    #[test]
    fn fig3_structure() {
        let f = fig3(&tiny());
        // 7 MTBCE points × 3 modes × 2 apps.
        assert_eq!(f.cells.len(), 7 * 3 * 2);
        assert_eq!(f.groups().len(), 7);
        // Hardware-only is everywhere negligible.
        for c in f
            .cells
            .iter()
            .filter(|c| c.mode == LoggingMode::HardwareOnly)
        {
            if let Some(s) = c.slowdown_pct {
                assert!(s < 1.0, "{}: {s}%", c.group);
            }
        }
        // Firmware at 1 ms MTBCE is flagged as no-progress (ρ = 133).
        let fw_1ms = f
            .cells
            .iter()
            .find(|c| c.mode == LoggingMode::Firmware && c.group.contains("1.000ms"))
            .unwrap();
        assert_eq!(fw_1ms.slowdown_pct, None);
    }

    #[test]
    fn figure_csv_is_byte_identical_under_tracing() {
        // The serve daemon runs sweeps with a request trace installed;
        // tracing must be purely observational — same cells, same CSV
        // bytes — while still recording per-cell spans into the trace.
        let cfg = tiny();
        let plain = crate::report::figure_csv(&fig4(&cfg));
        let ctx = cesim_obs::tracectx::TraceCtx::new_root("POST /v1/sweep", None);
        let traced = {
            let _g = ctx.install();
            let _dispatch = cesim_obs::tracectx::begin("dispatch");
            crate::report::figure_csv(&fig4(&cfg))
        };
        assert_eq!(plain, traced, "tracing must not perturb figure CSVs");
        let fin = ctx.finish(200, false);
        assert!(
            fin.spans.iter().any(|s| s.name.starts_with("cell ")),
            "sweep cells must land in the trace: {:?}",
            fin.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fig4_is_negligible_even_tiny() {
        let f = fig4(&tiny());
        assert_eq!(f.cells.len(), 3 * 3 * 2);
        // Current systems: all overheads well under 10% (paper's claim).
        for c in &f.cells {
            let s = c.slowdown_pct.expect("no divergence on current systems");
            assert!(s < 10.0, "{} {} = {s}%", c.group, c.mode);
        }
    }

    #[test]
    fn fig5_structure_and_divergence_free() {
        let f = fig5(&tiny());
        // 5 systems x 3 modes x 2 apps.
        assert_eq!(f.cells.len(), 5 * 3 * 2);
        assert_eq!(f.groups().len(), 5);
        // Rate-preserving MTBCE at 16 nodes never collapses below the
        // firmware divergence bound for these systems.
        for c in &f.cells {
            assert!(c.slowdown_pct.is_some(), "{} {}", c.group, c.mode);
        }
    }

    #[test]
    fn fig6_flags_firmware_divergence_at_scaled_rates() {
        let f = fig6(&tiny());
        assert_eq!(f.cells.len(), 3 * 3 * 2);
        // At 16 nodes the rate-preserved 1 s row becomes ~1 ms/node:
        // firmware is flagged as no-progress, software survives.
        let fw_1s = f
            .cells
            .iter()
            .find(|c| c.mode == LoggingMode::Firmware && c.group.contains("MTBCE=1.000s"))
            .unwrap();
        assert_eq!(fw_1s.slowdown_pct, None);
        let sw_1s = f
            .cells
            .iter()
            .find(|c| c.mode == LoggingMode::Software && c.group.contains("MTBCE=1.000s"))
            .unwrap();
        assert!(sw_1s.slowdown_pct.is_some());
    }

    #[test]
    fn fig7_structure_covers_both_rates() {
        let f = fig7(&tiny());
        // 2 rates x 7 durations x 2 apps.
        assert_eq!(f.cells.len(), 2 * 7 * 2);
        assert_eq!(f.groups().len(), 14);
        // The heaviest duration at the fast rate diverges; the lightest
        // is negligible everywhere.
        let heavy = f
            .cells
            .iter()
            .find(|c| c.group.contains("MTBCE=200.000ms d=133.000ms"))
            .unwrap();
        assert_eq!(heavy.slowdown_pct, None);
        for c in f.cells.iter().filter(|c| c.group.ends_with("d=150.000ns")) {
            assert!(c.slowdown_pct.unwrap() < 1.0);
        }
    }

    #[test]
    fn fig7_points_span_150ns_to_133ms() {
        let p = fig7_duration_points();
        assert_eq!(*p.first().unwrap(), Span::from_ns(150));
        assert_eq!(*p.last().unwrap(), Span::from_ms(133));
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn figure_data_accessors() {
        let f = fig3(&tiny());
        let g = f.groups();
        let s = f.series(&g[0], LoggingMode::Software);
        assert_eq!(s.len(), 2);
        let _ = f.max_slowdown();
    }
}
