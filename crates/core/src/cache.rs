//! Cross-request caches for the serving layer.
//!
//! PR 3 split the engine into an immutable [`CompiledSchedule`] shared
//! via [`Arc`] and per-run scratch, which made compilation a per-process
//! cost. The serving daemon (`cesim-serve`) answers *many* requests per
//! process, so this module turns compile-once-per-process into
//! compile-once-per-(app, ranks, workload, params) across requests:
//!
//! * [`ScheduleCache`] — a bounded LRU of compiled schedules **plus
//!   their noise-free baselines** (the baseline is a deterministic
//!   function of the schedule and network parameters, so it is cached
//!   alongside and never re-simulated on a hit);
//! * [`ResponseCache`] — a bounded LRU of full response bodies keyed by
//!   the canonicalized request. Sound because every run is seeded and
//!   deterministic: the same request always produces the same bytes
//!   (see `tests` and DESIGN.md "Serving architecture").
//!
//! Both caches are thread-safe and export hit/miss counters that the
//! daemon surfaces on `/metrics`.

use cesim_engine::{simulate_compiled, CompiledSchedule, NoNoise, SimError};
use cesim_model::{LogGopsParams, Time};
use cesim_obs::telemetry::{flight_record, FlightKind, Span};
use cesim_workloads::{natural_ranks, AppId, WorkloadConfig};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// A small dependency-free LRU map.
///
/// Recency is tracked with a monotonic tick per entry; eviction scans
/// for the minimum tick. That scan is O(len), which is fine at the cache
/// sizes the daemon uses (tens to a few hundred entries) and keeps the
/// implementation obviously correct without an intrusive list.
#[derive(Debug)]
pub struct Lru<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, (V, u64)>,
}

impl<K: Eq + Hash + Clone, V: Clone> Lru<K, V> {
    /// An LRU holding at most `cap` entries. `cap == 0` disables the
    /// cache entirely (every lookup misses, every insert is dropped).
    pub fn new(cap: usize) -> Self {
        Lru {
            cap,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Look up `key`, bumping its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, t)| {
            *t = tick;
            v.clone()
        })
    }

    /// Insert `key → value`, evicting the least-recently-used entry when
    /// at capacity. Returns `true` when an entry was evicted to make
    /// room (callers surface this to the flight recorder).
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if self.cap == 0 {
            return false;
        }
        self.tick += 1;
        let mut evicted = false;
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                evicted = true;
            }
        }
        self.map.insert(key, (value, self.tick));
        evicted
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Configured capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

/// A compiled schedule plus everything per-request work shares: the
/// snapped rank count and the noise-free baseline finish time.
pub struct CompiledEntry {
    /// Ranks actually simulated (after [`natural_ranks`] snapping).
    pub ranks: usize,
    /// The immutable compiled schedule (shared, never copied).
    pub schedule: Arc<CompiledSchedule>,
    /// Noise-free baseline finish time for `params`.
    pub baseline: Time,
}

/// Thread-safe LRU of [`CompiledEntry`]s keyed by
/// `(app, ranks, workload knobs, network params)`.
///
/// The key is the `Debug` rendering of the exact inputs: every field of
/// [`WorkloadConfig`] and [`LogGopsParams`] is plain data whose `Debug`
/// form is injective (floats print in shortest-round-trip form, so two
/// distinct bit patterns never collide), which makes the string an exact
/// — not hashed — identity.
pub struct ScheduleCache {
    inner: Mutex<Lru<String, Arc<CompiledEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScheduleCache {
    /// A cache holding at most `cap` compiled schedules (`0` disables
    /// caching — every request recompiles; the serve loadtest uses this
    /// as its cold baseline).
    pub fn new(cap: usize) -> Self {
        ScheduleCache {
            inner: Mutex::new(Lru::new(cap)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The exact cache key for a request.
    fn key(app: AppId, ranks: usize, workload: &WorkloadConfig, params: &LogGopsParams) -> String {
        format!("{app:?}|{ranks}|{workload:?}|{params:?}")
    }

    /// Fetch the compiled schedule + baseline for `(app, nodes,
    /// workload, params)`, compiling and simulating the baseline on a
    /// miss. Compilation happens outside the lock: two racing requests
    /// for the same key may both compile (identical results; last insert
    /// wins), but neither blocks unrelated requests.
    pub fn get_or_compile(
        &self,
        app: AppId,
        nodes: usize,
        workload: &WorkloadConfig,
        params: &LogGopsParams,
    ) -> Result<Arc<CompiledEntry>, SimError> {
        let ranks = natural_ranks(app, nodes);
        let key = Self::key(app, ranks, workload, params);
        if let Some(hit) = self.inner.lock().expect("schedule cache lock").get(&key) {
            self.hits.fetch_add(1, Relaxed);
            return Ok(hit);
        }
        self.misses.fetch_add(1, Relaxed);
        let entry = {
            let _s = Span::enter("compile");
            let sched = cesim_workloads::build(app, ranks, workload);
            let cs = Arc::new(CompiledSchedule::compile(&sched));
            let base = simulate_compiled(&cs, params, &mut NoNoise)?;
            Arc::new(CompiledEntry {
                ranks,
                schedule: cs,
                baseline: base.finish,
            })
        };
        let mut guard = self.inner.lock().expect("schedule cache lock");
        let evicted = guard.insert(key, Arc::clone(&entry));
        let len = guard.len();
        drop(guard);
        if evicted {
            flight_record(FlightKind::CacheEvict, "schedule", len as u64, 0);
        }
        Ok(entry)
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Relaxed)
    }

    /// Lookups that compiled.
    pub fn misses(&self) -> u64 {
        self.misses.load(Relaxed)
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("schedule cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Thread-safe LRU of full response bodies keyed by the canonicalized
/// request (see [`cesim_json::canonicalize`]); the daemon prepends the
/// request path so the same body against different endpoints cannot
/// alias.
pub struct ResponseCache {
    inner: Mutex<Lru<String, Arc<String>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResponseCache {
    /// A cache holding at most `cap` responses (`0` disables caching).
    pub fn new(cap: usize) -> Self {
        ResponseCache {
            inner: Mutex::new(Lru::new(cap)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a canonical request key.
    pub fn get(&self, key: &str) -> Option<Arc<String>> {
        let hit = self
            .inner
            .lock()
            .expect("response cache lock")
            .get(&key.to_string());
        match hit {
            Some(v) => {
                self.hits.fetch_add(1, Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Relaxed);
                None
            }
        }
    }

    /// Store a response body under its canonical request key.
    pub fn put(&self, key: String, body: Arc<String>) {
        let mut guard = self.inner.lock().expect("response cache lock");
        let evicted = guard.insert(key, body);
        let len = guard.len();
        drop(guard);
        if evicted {
            flight_record(FlightKind::CacheEvict, "response", len as u64, 0);
        }
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Relaxed)
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("response cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert_eq!(lru.get(&1), Some(10)); // bump 1
        lru.insert(3, 30); // evicts 2
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_reinsert_updates_without_evicting() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(1, 11); // same key: update, no eviction
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&1), Some(11));
        assert_eq!(lru.get(&2), Some(20));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut lru: Lru<u32, u32> = Lru::new(0);
        lru.insert(1, 10);
        assert_eq!(lru.get(&1), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn schedule_cache_hits_after_first_compile() {
        let cache = ScheduleCache::new(4);
        let wl = WorkloadConfig::default().with_steps(2);
        let params = LogGopsParams::xc40();
        let a = cache
            .get_or_compile(AppId::MiniFe, 8, &wl, &params)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let b = cache
            .get_or_compile(AppId::MiniFe, 8, &wl, &params)
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a, &b), "hit returns the shared entry");
        assert_eq!(a.baseline, b.baseline);
        // A different workload knob is a different schedule.
        let wl3 = WorkloadConfig::default().with_steps(3);
        let c = cache
            .get_or_compile(AppId::MiniFe, 8, &wl3, &params)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn schedule_cache_snaps_ranks_before_keying() {
        // LULESH snaps node counts to cubes: 260 and 250 both simulate
        // 250 ranks and must share one entry.
        let cache = ScheduleCache::new(4);
        let wl = WorkloadConfig::default().with_steps(1);
        let params = LogGopsParams::xc40();
        let a = cache
            .get_or_compile(AppId::Lulesh, 260, &wl, &params)
            .unwrap();
        assert_eq!(a.ranks, 250);
        let b = cache
            .get_or_compile(AppId::Lulesh, 250, &wl, &params)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn schedule_cache_key_excludes_logging_mode_noise() {
        // The cache key is (app, ranks, workload, params); the logging
        // mode lives in the *noise model*, never in the schedule. Fleet
        // nodes running different logging modes must therefore share
        // one compiled entry — and running mode-specific noise against
        // the shared schedule must match a fresh compile per mode, so
        // the sharing loses nothing.
        use cesim_model::{LoggingMode, Span};
        use cesim_noise::{CeNoise, Scope};

        let wl = WorkloadConfig::default().with_steps(2);
        let params = LogGopsParams::xc40();
        let finish = |entry: &Arc<CompiledEntry>, mode: LoggingMode| {
            // MTBCE 500ms keeps even firmware's 133ms detour convergent
            // (utilization ~0.27 < 1), so the stretch loop terminates.
            let mut noise = CeNoise::new(
                entry.ranks,
                Span::from_ms(500),
                mode.per_event_cost(),
                Scope::AllRanks,
                11,
            );
            simulate_compiled(&entry.schedule, &params, &mut noise)
                .unwrap()
                .finish
        };

        let cache = ScheduleCache::new(4);
        let entry = cache
            .get_or_compile(AppId::MiniFe, 8, &wl, &params)
            .unwrap();
        let sw = finish(&entry, LoggingMode::Software);
        let fw = finish(&entry, LoggingMode::Firmware);
        assert!(fw > sw, "firmware detours cost more: {fw:?} vs {sw:?}");
        assert_eq!(
            (cache.hits(), cache.misses(), cache.len()),
            (0, 1, 1),
            "one compiled entry serves every logging mode"
        );

        let fresh = ScheduleCache::new(4);
        let e2 = fresh
            .get_or_compile(AppId::MiniFe, 8, &wl, &params)
            .unwrap();
        assert_eq!(sw, finish(&e2, LoggingMode::Software));
        assert_eq!(fw, finish(&e2, LoggingMode::Firmware));
    }

    #[test]
    fn response_cache_counts_hits_and_misses() {
        let cache = ResponseCache::new(2);
        assert!(cache.get("k1").is_none());
        cache.put("k1".into(), Arc::new("body".into()));
        assert_eq!(cache.get("k1").as_deref().map(|s| s.as_str()), Some("body"));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }
}
