//! Plain-text and CSV rendering of regenerated figures and tables.

use crate::figures::FigureData;
use cesim_model::LoggingMode;
use std::fmt::Write as _;

/// Render a padded ASCII table.
pub fn ascii_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut width = vec![0usize; cols];
    for (i, h) in headers.iter().enumerate() {
        width[i] = h.len();
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            width[i] = width[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let emit = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{c:<w$}", w = width[i]);
        }
        // Trim trailing spaces for clean diffs.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    emit(&mut out, headers);
    let sep: Vec<String> = width.iter().map(|&w| "-".repeat(w)).collect();
    emit(&mut out, &sep);
    for row in rows {
        emit(&mut out, row);
    }
    out
}

fn fmt_slowdown(s: Option<f64>) -> String {
    match s {
        Some(v) if v >= 100.0 => format!("{v:.0}%"),
        Some(v) => format!("{v:.2}%"),
        None => "no-progress".into(),
    }
}

/// Render a figure as one ASCII table per logging mode: rows = groups
/// (systems / rates / durations), columns = workloads — matching the
/// paper's grouped-bar layout.
pub fn render_figure(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ({}) ==", fig.title, fig.id);
    let apps: Vec<_> = {
        let mut seen = Vec::new();
        for c in &fig.cells {
            if !seen.contains(&c.app) {
                seen.push(c.app);
            }
        }
        seen
    };
    let modes: Vec<LoggingMode> = {
        let mut seen = Vec::new();
        for c in &fig.cells {
            if !seen.contains(&c.mode) {
                seen.push(c.mode);
            }
        }
        seen
    };
    for mode in modes {
        let _ = writeln!(out, "\n-- {mode} --");
        let mut headers = vec!["group".to_string()];
        headers.extend(apps.iter().map(|a| a.name().to_string()));
        let mut rows = Vec::new();
        for g in fig.groups() {
            let series = fig.series(&g, mode);
            if series.is_empty() {
                continue;
            }
            let mut row = vec![g.clone()];
            for app in &apps {
                row.push(
                    series
                        .get(app)
                        .map(|c| fmt_slowdown(c.slowdown_pct))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            rows.push(row);
        }
        out.push_str(&ascii_table(&headers, &rows));
    }
    out
}

/// Render a figure as log-scale ASCII bar charts (one block per group,
/// one bar per workload × mode), mirroring the paper's log-scale figures.
/// The scale spans 0.01%–10,000%; `∞` marks no-progress cells.
pub fn render_chart(fig: &FigureData) -> String {
    const WIDTH: usize = 48;
    const LO: f64 = 0.01; // percent
    const HI: f64 = 10_000.0;
    let bar = |s: Option<f64>| -> String {
        match s {
            None => format!("{} ∞ (no progress)", "#".repeat(WIDTH)),
            Some(v) => {
                let clamped = v.clamp(LO, HI);
                let frac = (clamped / LO).log10() / (HI / LO).log10();
                let n = (frac * WIDTH as f64).round() as usize;
                format!("{:<WIDTH$} {v:.2}%", "#".repeat(n))
            }
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== {} ({}) — log scale {LO}%..{HI}% ==",
        fig.title, fig.id
    );
    for g in fig.groups() {
        let _ = writeln!(out, "\n[{g}]");
        for mode in [
            LoggingMode::HardwareOnly,
            LoggingMode::Software,
            LoggingMode::Firmware,
        ] {
            let series = fig.series(&g, mode);
            if series.is_empty() {
                continue;
            }
            let _ = writeln!(out, "  {mode}:");
            for (app, cell) in series {
                let _ = writeln!(out, "    {:<13} |{}", app.name(), bar(cell.slowdown_pct));
            }
        }
        // Custom-duration sweeps (Fig. 7) have no fixed mode set.
        let customs: Vec<&crate::figures::Cell> = fig
            .cells
            .iter()
            .filter(|c| c.group == g && matches!(c.mode, LoggingMode::Custom(_)))
            .collect();
        if !customs.is_empty() {
            for cell in customs {
                let _ = writeln!(
                    out,
                    "    {:<13} |{}",
                    cell.app.name(),
                    bar(cell.slowdown_pct)
                );
            }
        }
    }
    out
}

/// Render a figure as CSV (one row per cell, full detail).
///
/// When the sweep ran with observation enabled (any cell carries a
/// [`crate::experiment::CellObs`]), fourteen observability columns are
/// appended:
///
/// * `cp_compute_s,cp_comm_s,cp_network_s,cp_detour_s,cp_blocked_s` —
///   critical-path makespan decomposition in seconds, **mean across the
///   observed replicas**;
/// * `cp_compute_sd,cp_comm_sd,cp_network_sd,cp_detour_sd,
///   cp_blocked_sd` — the matching sample standard deviations (0 when a
///   single replica was observed);
/// * `events_absorbed,events_propagated` — mean detours per observed
///   replica that stayed on their own rank (absorbed + partially
///   absorbed) vs. delayed other ranks or the makespan;
/// * `max_amplification` — the largest amplification factor (global
///   delay induced ÷ CPU time stolen) in any observed replica;
/// * `p99_amplification` — mean 99th-percentile amplification across
///   observed replicas.
///
/// Without observation the output is byte-identical to earlier versions.
pub fn figure_csv(fig: &FigureData) -> String {
    let observed = fig.cells.iter().any(|c| c.obs.is_some());
    let mut out = String::new();
    out.push_str(
        "figure,app,group,mode,mtbce_s,ranks,baseline_s,slowdown_pct,stddev_pct,ce_events",
    );
    if observed {
        out.push_str(",cp_compute_s,cp_comm_s,cp_network_s,cp_detour_s,cp_blocked_s");
        out.push_str(",cp_compute_sd,cp_comm_sd,cp_network_sd,cp_detour_sd,cp_blocked_sd");
        out.push_str(",events_absorbed,events_propagated,max_amplification,p99_amplification");
    }
    out.push('\n');
    for c in &fig.cells {
        let _ = write!(
            out,
            "{},{},{:?},{},{},{},{},{},{},{}",
            fig.id,
            c.app.name(),
            c.group,
            c.mode.short_label(),
            c.mtbce.as_secs_f64(),
            c.ranks,
            c.baseline_secs,
            c.slowdown_pct.map(|v| v.to_string()).unwrap_or_default(),
            c.stddev_pct.map(|v| v.to_string()).unwrap_or_default(),
            c.ce_events
        );
        if observed {
            match &c.obs {
                Some(o) => {
                    let cp = [
                        o.mean_sd(|r| r.attr.compute.as_secs_f64()),
                        o.mean_sd(|r| r.attr.comm_cpu.as_secs_f64()),
                        o.mean_sd(|r| r.attr.network.as_secs_f64()),
                        o.mean_sd(|r| r.attr.detour.as_secs_f64()),
                        o.mean_sd(|r| r.attr.blocked.as_secs_f64()),
                    ];
                    for (mean, _) in &cp {
                        let _ = write!(out, ",{mean}");
                    }
                    for (_, sd) in &cp {
                        let _ = write!(out, ",{sd}");
                    }
                    let _ = write!(
                        out,
                        ",{},{},{},{}",
                        o.mean_absorbed(),
                        o.mean_propagated(),
                        o.max_amplification(),
                        o.p99_amplification()
                    );
                }
                None => out.push_str(",,,,,,,,,,,,,,"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Cell;
    use cesim_model::Span;
    use cesim_workloads::AppId;

    fn sample_fig() -> FigureData {
        FigureData {
            id: "figX".into(),
            title: "Sample".into(),
            cells: vec![
                Cell {
                    app: AppId::Lulesh,
                    group: "sysA".into(),
                    mode: LoggingMode::Software,
                    mtbce: Span::from_secs(1),
                    slowdown_pct: Some(3.25),
                    stddev_pct: Some(0.5),
                    baseline_secs: 2.0,
                    ce_events: 10.0,
                    ranks: 16,
                    obs: None,
                },
                Cell {
                    app: AppId::Hpcg,
                    group: "sysA".into(),
                    mode: LoggingMode::Software,
                    mtbce: Span::from_secs(1),
                    slowdown_pct: None,
                    stddev_pct: None,
                    baseline_secs: 2.0,
                    ce_events: 0.0,
                    ranks: 16,
                    obs: None,
                },
                Cell {
                    app: AppId::Lulesh,
                    group: "sysA".into(),
                    mode: LoggingMode::Firmware,
                    mtbce: Span::from_secs(1),
                    slowdown_pct: Some(215.0),
                    stddev_pct: None,
                    baseline_secs: 2.0,
                    ce_events: 99.0,
                    ranks: 16,
                    obs: None,
                },
            ],
        }
    }

    #[test]
    fn ascii_table_alignment() {
        let t = ascii_table(
            &["a".into(), "bb".into()],
            &[vec!["xxx".into(), "y".into()], vec!["z".into(), "w".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("---"));
        assert!(!lines[2].ends_with(' '));
    }

    #[test]
    fn render_contains_all_sections() {
        let s = render_figure(&sample_fig());
        assert!(s.contains("figX"));
        assert!(s.contains("software"));
        assert!(s.contains("firmware"));
        assert!(s.contains("3.25%"));
        assert!(s.contains("215%"), "{s}");
        assert!(s.contains("no-progress"));
    }

    #[test]
    fn chart_renders_bars_and_infinity() {
        let fig = sample_fig();
        let chart = render_chart(&fig);
        assert!(chart.contains("log scale"));
        assert!(chart.contains("∞ (no progress)"));
        assert!(chart.contains("3.25%"));
        assert!(chart.contains("215.00%"));
        // Bars are monotone in slowdown: firmware 215% longer than sw 3.25%.
        let len = |pat: &str| {
            chart
                .lines()
                .find(|l| l.contains(pat))
                .map(|l| l.matches('#').count())
                .unwrap()
        };
        assert!(len("215.00%") > len("3.25%"));
    }

    #[test]
    fn csv_rows_match_cells() {
        let fig = sample_fig();
        let csv = figure_csv(&fig);
        assert_eq!(csv.lines().count(), fig.cells.len() + 1);
        assert!(csv.lines().nth(1).unwrap().contains("LULESH"));
        // Diverged cells leave the slowdown field empty.
        assert!(csv.lines().nth(2).unwrap().contains(",,"));
    }

    #[test]
    fn csv_obs_columns_appear_only_when_observed() {
        use crate::experiment::{CellObs, ReplicaObs};
        use cesim_obs::critical::Attribution;
        use cesim_obs::provenance::ProvenanceSummary;
        let mut fig = sample_fig();
        // Unobserved sweeps keep the legacy header byte-for-byte.
        let plain = figure_csv(&fig);
        assert!(plain.lines().next().unwrap().ends_with("ce_events"));
        fig.cells[0].obs = Some(CellObs {
            replicas: vec![ReplicaObs {
                rep: 0,
                attr: Attribution {
                    finish: Span::from_secs(2),
                    compute: Span::from_secs(1),
                    comm_cpu: Span::from_ms(500),
                    network: Span::from_ms(300),
                    detour: Span::from_ms(150),
                    blocked: Span::from_ms(50),
                    truncated: false,
                },
                prov: ProvenanceSummary {
                    events: 3,
                    absorbed: 1,
                    partially_absorbed: 1,
                    propagated: 1,
                    max_amplification: 2.0,
                    p99_amplification: 1.5,
                },
                events: 42,
                dropped: 0,
            }],
        });
        let csv = figure_csv(&fig);
        assert!(csv.lines().next().unwrap().ends_with("p99_amplification"));
        // Means are the single replica's values; stddevs collapse to 0;
        // absorbed counts partially-absorbed events too.
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .ends_with(",1,0.5,0.3,0.15,0.05,0,0,0,0,0,2,1,2,1.5"));
        // Cells without a summary get empty observability fields.
        assert!(csv.lines().nth(2).unwrap().ends_with(",,,,,,,,,,,,,,"));
    }

    #[test]
    fn csv_obs_multi_replica_means_and_stddevs() {
        use crate::experiment::{CellObs, ReplicaObs};
        use cesim_obs::critical::Attribution;
        use cesim_obs::provenance::ProvenanceSummary;
        let rep = |rep: u32, compute_s: u64, max_amp: f64| ReplicaObs {
            rep,
            attr: Attribution {
                finish: Span::from_secs(compute_s),
                compute: Span::from_secs(compute_s),
                ..Attribution::default()
            },
            prov: ProvenanceSummary {
                events: 4,
                absorbed: 2,
                partially_absorbed: 0,
                propagated: 2,
                max_amplification: max_amp,
                p99_amplification: max_amp,
            },
            events: 10,
            dropped: 0,
        };
        let mut fig = sample_fig();
        fig.cells[0].obs = Some(CellObs {
            replicas: vec![rep(0, 1, 3.0), rep(1, 3, 1.0)],
        });
        let csv = figure_csv(&fig);
        let row = csv.lines().nth(1).unwrap();
        // compute mean (1+3)/2 = 2, sample stddev = sqrt(2); absorbed
        // mean 2, propagated mean 2; max amplification is the max (3),
        // p99 the mean (2).
        let fields: Vec<&str> = row.split(',').collect();
        let f = |i: usize| fields[fields.len() - 14 + i].parse::<f64>().unwrap();
        assert_eq!(f(0), 2.0); // cp_compute_s mean
        assert!((f(5) - 2.0_f64.sqrt()).abs() < 1e-12); // cp_compute_sd
        assert_eq!(f(10), 2.0); // events_absorbed
        assert_eq!(f(11), 2.0); // events_propagated
        assert_eq!(f(12), 3.0); // max_amplification
        assert_eq!(f(13), 2.0); // p99_amplification
    }
}
